//! # sbox-leakage
//!
//! A full reproduction of *"Leakage Power Analysis in Different S-Box
//! Masking Protection Schemes"* (Bahrami, Ebrahimabadi, Danger, Guilley,
//! Karimi — DATE 2022) as a Rust workspace: gate-level netlists of seven
//! PRESENT S-box implementations, an event-driven timing/power simulator,
//! BTI/HCI aging models, and the Walsh–Hadamard spectral leakage analysis
//! that compares them.
//!
//! This crate is the facade: it re-exports the member crates under stable
//! names. See the workspace `README.md` for the architecture overview and
//! `EXPERIMENTS.md` for the paper-versus-measured results.
//!
//! # Example
//!
//! ```
//! use sbox_leakage::circuits::{SboxCircuit, Scheme};
//!
//! let isw = SboxCircuit::build(Scheme::Isw);
//! assert_eq!(isw.netlist().stats().total_gates, 57);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use acquisition;
pub use aging;
pub use campaign;
pub use gatesim;
pub use leakage_core as analysis;
pub use present_cipher as present;
pub use sbox_circuits as circuits;
pub use sbox_netlist as netlist;
pub use sca_attacks as attacks;
pub use sca_frontend as frontend;
pub use sca_repair as repair;
pub use sca_verify as verify;
