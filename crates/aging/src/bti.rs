//! Bias Temperature Instability: power-law stress with partial recovery.

use crate::AgingConditions;

/// Which device type the BTI instance affects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BtiKind {
    /// Negative BTI — PMOS transistors, stressed while conducting
    /// (gate output high in a CMOS stage).
    Nbti,
    /// Positive BTI — NMOS transistors, stressed while conducting.
    Pbti,
}

/// One phase of a stress/recovery schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressPhase {
    /// Phase duration in months.
    pub months: f64,
    /// Whether the transistor is under stress during the phase.
    pub stressed: bool,
}

/// A sequence of stress/recovery phases (paper Fig. 1's two scenarios are
/// both instances of this).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StressSchedule {
    phases: Vec<StressPhase>,
}

impl StressSchedule {
    /// Continuous stress for `months`.
    pub fn continuous(months: f64) -> Self {
        Self {
            phases: vec![StressPhase {
                months,
                stressed: true,
            }],
        }
    }

    /// Alternating stress/recovery phases of `period_months` each, starting
    /// stressed, for `cycles` full stress+recovery pairs.
    pub fn alternating(period_months: f64, cycles: usize) -> Self {
        let phases = (0..2 * cycles)
            .map(|i| StressPhase {
                months: period_months,
                stressed: i % 2 == 0,
            })
            .collect();
        Self { phases }
    }

    /// The phases in order.
    pub fn phases(&self) -> &[StressPhase] {
        &self.phases
    }

    /// Append a phase.
    pub fn push(&mut self, phase: StressPhase) {
        self.phases.push(phase);
    }

    /// Total scheduled duration in months.
    pub fn total_months(&self) -> f64 {
        self.phases.iter().map(|p| p.months).sum()
    }
}

/// Compact reaction–diffusion-inspired BTI model.
///
/// Under stress, `ΔVth = A · dutyᵐ · tⁿ` (long-term power law, `n ≈ 0.16`).
/// During recovery the *recoverable* fraction of the accumulated drift
/// decays exponentially while a *permanent* fraction remains — which is why
/// an alternating stress/recovery workload ends up with visibly less drift
/// than continuous stress (paper Fig. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct BtiModel {
    kind: BtiKind,
    /// Drift after 1 month of continuous stress at duty 1, in volts.
    prefactor_v: f64,
    /// Power-law time exponent `n`.
    time_exponent: f64,
    /// Duty-cycle exponent `m`.
    duty_exponent: f64,
    /// Fraction of newly accumulated drift that never recovers.
    permanent_fraction: f64,
    /// Time constant of the recoverable component's decay, months.
    recovery_tau_months: f64,
}

impl BtiModel {
    /// Instantiate for the given device kind at the given operating
    /// conditions (temperature and Vdd accelerate the drift).
    pub fn new(kind: BtiKind, conditions: &AgingConditions) -> Self {
        // Arrhenius-like acceleration, normalized to the paper's 85 °C /
        // 1.2 V operating point.
        let temp_accel = ((conditions.temperature_c - 85.0) / 60.0).exp();
        let vdd_accel = (conditions.vdd_v / 1.2).powi(3);
        // PBTI in high-k 45 nm metal-gate processes is a weaker effect
        // than NBTI.
        let base = match kind {
            BtiKind::Nbti => 0.012,
            BtiKind::Pbti => 0.007,
        };
        Self {
            kind,
            prefactor_v: base * temp_accel * vdd_accel,
            time_exponent: 0.16,
            duty_exponent: 0.3,
            permanent_fraction: 0.55,
            recovery_tau_months: 0.7,
        }
    }

    /// The device kind this model applies to.
    pub fn kind(&self) -> BtiKind {
        self.kind
    }

    /// Long-term drift in volts after `months` of operation at the given
    /// stress duty cycle (fraction of time the device is stressed).
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]` or `months` is negative.
    pub fn delta_vth_v(&self, duty: f64, months: f64) -> f64 {
        assert!((0.0..=1.0).contains(&duty), "duty must be in [0,1]");
        assert!(months >= 0.0);
        if duty == 0.0 || months == 0.0 {
            return 0.0;
        }
        self.prefactor_v * duty.powf(self.duty_exponent) * months.powf(self.time_exponent)
    }

    /// Walk an explicit stress/recovery schedule and return the drift (in
    /// volts) at the *end of every phase* — the trajectory plotted in the
    /// paper's Fig. 1.
    pub fn trajectory(&self, schedule: &StressSchedule) -> Vec<f64> {
        let mut permanent = 0.0f64;
        let mut recoverable = 0.0f64;
        let mut effective_stress_months = 0.0f64;
        let mut out = Vec::with_capacity(schedule.phases().len());
        for phase in schedule.phases() {
            if phase.stressed {
                let before = self.prefactor_v * effective_stress_months.powf(self.time_exponent);
                effective_stress_months += phase.months;
                let after = self.prefactor_v * effective_stress_months.powf(self.time_exponent);
                let delta = (after - before).max(0.0);
                permanent += self.permanent_fraction * delta;
                recoverable += (1.0 - self.permanent_fraction) * delta;
            } else {
                recoverable *= (-phase.months / self.recovery_tau_months).exp();
                // Relaxation also slows the next stress round: credit the
                // recovered charge back to the effective stress clock.
                let total = permanent + recoverable;
                effective_stress_months = (total / self.prefactor_v)
                    .max(0.0)
                    .powf(1.0 / self.time_exponent);
            }
            out.push(permanent + recoverable);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nbti() -> BtiModel {
        BtiModel::new(BtiKind::Nbti, &AgingConditions::default())
    }

    #[test]
    fn drift_grows_sublinearly() {
        let m = nbti();
        let v1 = m.delta_vth_v(1.0, 12.0);
        let v2 = m.delta_vth_v(1.0, 24.0);
        assert!(v2 > v1);
        assert!(v2 < 2.0 * v1, "power law must be sublinear");
    }

    #[test]
    fn higher_duty_means_more_drift() {
        let m = nbti();
        assert!(m.delta_vth_v(1.0, 12.0) > m.delta_vth_v(0.3, 12.0));
        assert_eq!(m.delta_vth_v(0.0, 12.0), 0.0);
    }

    #[test]
    fn pbti_is_weaker_than_nbti() {
        let c = AgingConditions::default();
        let n = BtiModel::new(BtiKind::Nbti, &c);
        let p = BtiModel::new(BtiKind::Pbti, &c);
        assert!(n.delta_vth_v(0.5, 24.0) > p.delta_vth_v(0.5, 24.0));
    }

    #[test]
    fn temperature_accelerates() {
        let hot = BtiModel::new(
            BtiKind::Nbti,
            &AgingConditions {
                temperature_c: 125.0,
                ..AgingConditions::default()
            },
        );
        assert!(hot.delta_vth_v(0.5, 12.0) > nbti().delta_vth_v(0.5, 12.0));
    }

    #[test]
    fn alternating_schedule_drifts_less_than_continuous() {
        // Paper Fig. 1: 6 months continuous vs stress/recovery every other
        // month.
        let m = nbti();
        let cont = m.trajectory(&StressSchedule::continuous(6.0));
        let alt = m.trajectory(&StressSchedule::alternating(1.0, 3));
        let final_cont = *cont.last().expect("non-empty");
        let final_alt = *alt.last().expect("non-empty");
        assert!(final_alt < final_cont, "{final_alt} !< {final_cont}");
        assert!(final_alt > 0.0, "permanent component remains");
    }

    #[test]
    fn recovery_phases_reduce_drift() {
        let m = nbti();
        let mut schedule = StressSchedule::continuous(1.0);
        schedule.push(StressPhase {
            months: 1.0,
            stressed: false,
        });
        let traj = m.trajectory(&schedule);
        assert!(traj[1] < traj[0]);
        assert!(traj[1] > m.permanent_fraction * traj[0] * 0.99);
    }

    #[test]
    fn trajectory_matches_closed_form_under_continuous_stress() {
        let m = nbti();
        let mut schedule = StressSchedule::default();
        for _ in 0..6 {
            schedule.push(StressPhase {
                months: 1.0,
                stressed: true,
            });
        }
        let traj = m.trajectory(&schedule);
        let closed = m.delta_vth_v(1.0, 6.0);
        assert!((traj[5] - closed).abs() / closed < 1e-9);
    }
}
