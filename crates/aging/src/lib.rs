//! Transistor aging models (BTI and HCI) and netlist derating.
//!
//! This crate replaces the paper's HSpice **MOSRA Level 3** reliability
//! analysis with compact empirical models of the same observables:
//!
//! * [`BtiModel`] — Bias Temperature Instability. A transistor under stress
//!   accumulates threshold-voltage drift following a power law in time
//!   (`ΔVth ∝ tⁿ`, `n ≈ 0.16`); removing the stress partially *recovers*
//!   the drift (paper Fig. 1). NBTI stresses PMOS devices while the gate
//!   output is high, PBTI stresses NMOS while it is low.
//! * [`HciModel`] — Hot Carrier Injection, driven by switching activity;
//!   it accumulates with the square root of the number of transitions and
//!   does not recover.
//! * [`AgedDevice`] — combines both models with a per-gate workload
//!   ([`gatesim::ActivityProfile`]) to produce the [`gatesim::Derating`]
//!   table for any age: higher `Vth` means longer delays
//!   (`delay ∝ Vdd/(Vdd−Vth)^α`) and weaker drive current, which is exactly
//!   how aging shrinks the power traces (and thus the exploitable leakage)
//!   in the paper's Figs. 7 and 8.
//!
//! # Example
//!
//! ```
//! use aging::{AgingConditions, BtiKind, BtiModel};
//!
//! let nbti = BtiModel::new(BtiKind::Nbti, &AgingConditions::default());
//! let six_months = nbti.delta_vth_v(0.5, 6.0);
//! let four_years = nbti.delta_vth_v(0.5, 48.0);
//! assert!(four_years > six_months);
//! // Fast-then-slow: the first 6 months drift more than months 42–48.
//! assert!(six_months > four_years - nbti.delta_vth_v(0.5, 42.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bti;
mod device;
mod hci;

pub use bti::{BtiKind, BtiModel, StressPhase, StressSchedule};
pub use device::{AgedDevice, AgingConditions};
pub use hci::HciModel;
