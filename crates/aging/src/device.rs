//! From per-gate stress to per-gate derating: the MOSRA-substitute pipeline.

use gatesim::{ActivityProfile, Derating};
use sbox_netlist::Netlist;

use crate::{BtiKind, BtiModel, HciModel};

/// Operating conditions shared by all aging models.
#[derive(Debug, Clone, PartialEq)]
pub struct AgingConditions {
    /// Supply voltage, volts.
    pub vdd_v: f64,
    /// Die temperature, °C.
    pub temperature_c: f64,
    /// Clock frequency, MHz (drives HCI transition counts).
    pub clock_mhz: f64,
    /// Nominal threshold voltage of the fresh process, volts.
    pub vth0_v: f64,
    /// Alpha-power-law exponent mapping overdrive to delay/current.
    pub alpha: f64,
}

impl Default for AgingConditions {
    /// The paper's operating point: 1.2 V, 85 °C, 500 MHz, 45 nm-like
    /// `Vth0` and velocity-saturation exponent.
    fn default() -> Self {
        Self {
            vdd_v: 1.2,
            temperature_c: 85.0,
            clock_mhz: 500.0,
            vth0_v: 0.45,
            alpha: 1.3,
        }
    }
}

/// Ages one netlist under one workload and hands out [`Derating`] tables
/// per age.
///
/// # Example
///
/// ```
/// use sbox_netlist::NetlistBuilder;
/// use gatesim::{ActivityProfile, SimConfig, Simulator};
/// use aging::{AgedDevice, AgingConditions};
///
/// # fn main() -> Result<(), sbox_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("inv");
/// let a = b.input("a");
/// let y = b.not(a);
/// b.output("y", y);
/// let nl = b.finish()?;
/// let profile = ActivityProfile::uniform(&nl);
/// let device = AgedDevice::new(&nl, profile, AgingConditions::default());
/// let aged = device.derating_at_months(48.0);
/// assert!(aged.delay_factor(0) > 1.0);
/// assert!(aged.current_factor(0) < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AgedDevice {
    profile: ActivityProfile,
    conditions: AgingConditions,
    nbti: BtiModel,
    pbti: BtiModel,
    hci: HciModel,
    gate_count: usize,
}

impl AgedDevice {
    /// Bind a netlist's workload profile to the aging models.
    ///
    /// # Panics
    ///
    /// Panics if the profile does not cover the netlist's gates.
    pub fn new(netlist: &Netlist, profile: ActivityProfile, conditions: AgingConditions) -> Self {
        assert_eq!(
            profile.len(),
            netlist.gates().len(),
            "profile does not match netlist"
        );
        Self {
            nbti: BtiModel::new(BtiKind::Nbti, &conditions),
            pbti: BtiModel::new(BtiKind::Pbti, &conditions),
            hci: HciModel::new(&conditions),
            profile,
            conditions,
            gate_count: netlist.gates().len(),
        }
    }

    /// The operating conditions in effect.
    pub fn conditions(&self) -> &AgingConditions {
        &self.conditions
    }

    /// Effective per-gate threshold drift (volts) at the given age: the
    /// average of the PMOS (NBTI) and NMOS (PBTI + HCI) network drifts,
    /// weighted by how long each network conducts.
    pub fn delta_vth_v(&self, gate: usize, months: f64) -> f64 {
        // While the output is high the PMOS network conducts (NBTI
        // stress); while low, the NMOS network conducts (PBTI stress).
        let p_high = self.profile.signal_probability(gate);
        let nbti = self.nbti.delta_vth_v(p_high, months);
        let pbti = self.pbti.delta_vth_v(1.0 - p_high, months);
        let hci = self.hci.delta_vth_v(self.profile.toggle_rate(gate), months);
        // Rising and falling edges are equally likely over a long
        // workload: both networks contribute half of the average edge.
        0.5 * nbti + 0.5 * (pbti + hci)
    }

    /// Derating table at the given age in months.
    ///
    /// Delay stretches as `((Vdd−Vth0)/(Vdd−Vth0−ΔVth))^α`; drive current
    /// shrinks by the inverse factor (alpha-power law).
    pub fn derating_at_months(&self, months: f64) -> Derating {
        let headroom = self.conditions.vdd_v - self.conditions.vth0_v;
        let mut delay = Vec::with_capacity(self.gate_count);
        let mut current = Vec::with_capacity(self.gate_count);
        for g in 0..self.gate_count {
            let dv = self.delta_vth_v(g, months).min(0.8 * headroom);
            let ratio = headroom / (headroom - dv);
            delay.push(ratio.powf(self.conditions.alpha));
            current.push(ratio.powf(-self.conditions.alpha));
        }
        Derating::from_factors(delay, current)
    }

    /// Derating tables along a timeline `0, step, 2·step, … ≤ end` months
    /// (the paper evaluates 2-month steps over 4 years).
    pub fn timeline(&self, step_months: f64, end_months: f64) -> Vec<(f64, Derating)> {
        assert!(step_months > 0.0);
        let mut out = Vec::new();
        let mut t = 0.0;
        while t <= end_months + 1e-9 {
            out.push((t, self.derating_at_months(t)));
            t += step_months;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_netlist::NetlistBuilder;

    fn toy() -> Netlist {
        let mut b = NetlistBuilder::new("toy");
        let a = b.input("a");
        let x = b.not(a);
        let y = b.not(x);
        b.output("y", y);
        b.finish().expect("valid")
    }

    #[test]
    fn aging_is_monotone_in_time() {
        let nl = toy();
        let dev = AgedDevice::new(
            &nl,
            ActivityProfile::uniform(&nl),
            AgingConditions::default(),
        );
        let mut last_delay = 1.0;
        let mut last_current = 1.0;
        for months in [0.0, 6.0, 12.0, 24.0, 48.0] {
            let d = dev.derating_at_months(months);
            assert!(d.delay_factor(0) >= last_delay);
            assert!(d.current_factor(0) <= last_current);
            last_delay = d.delay_factor(0);
            last_current = d.current_factor(0);
        }
    }

    #[test]
    fn fresh_device_is_identity() {
        let nl = toy();
        let dev = AgedDevice::new(
            &nl,
            ActivityProfile::uniform(&nl),
            AgingConditions::default(),
        );
        let d = dev.derating_at_months(0.0);
        assert_eq!(d.delay_factor(0), 1.0);
        assert_eq!(d.current_factor(0), 1.0);
    }

    #[test]
    fn four_year_degradation_is_single_digit_percent() {
        // The paper's Fig. 7 shows total leakage dropping ≈5–10 % over
        // 4 years; amplitude factors should land in the same ballpark.
        let nl = toy();
        let dev = AgedDevice::new(
            &nl,
            ActivityProfile::uniform(&nl),
            AgingConditions::default(),
        );
        let d = dev.derating_at_months(48.0);
        let cf = d.current_factor(0);
        assert!(cf < 0.99 && cf > 0.88, "current factor {cf}");
    }

    #[test]
    fn degradation_decelerates() {
        let nl = toy();
        let dev = AgedDevice::new(
            &nl,
            ActivityProfile::uniform(&nl),
            AgingConditions::default(),
        );
        let y1 = dev.delta_vth_v(0, 12.0);
        let y2 = dev.delta_vth_v(0, 24.0) - y1;
        let y4 = dev.delta_vth_v(0, 48.0) - dev.delta_vth_v(0, 36.0);
        assert!(y1 > y2 && y2 > y4, "drift per year must shrink");
    }

    #[test]
    fn timeline_has_two_month_steps() {
        let nl = toy();
        let dev = AgedDevice::new(
            &nl,
            ActivityProfile::uniform(&nl),
            AgingConditions::default(),
        );
        let tl = dev.timeline(2.0, 48.0);
        assert_eq!(tl.len(), 25);
        assert_eq!(tl[0].0, 0.0);
        assert_eq!(tl[24].0, 48.0);
    }
}
