//! Hot Carrier Injection: activity-driven, non-recovering drift.

use crate::AgingConditions;

/// Compact HCI model: carriers injected during output transitions shift
/// the NMOS threshold voltage with the square root of the accumulated
/// switching count; there is no recovery phase.
#[derive(Debug, Clone, PartialEq)]
pub struct HciModel {
    /// Volts of drift per √(transition).
    prefactor_v: f64,
    /// Clock frequency, Hz (transitions per cycle × f × t = total count).
    clock_hz: f64,
}

impl HciModel {
    /// Instantiate at the given operating conditions.
    pub fn new(conditions: &AgingConditions) -> Self {
        let temp_accel = ((conditions.temperature_c - 85.0) / 100.0).exp();
        let vdd_accel = (conditions.vdd_v / 1.2).powi(2);
        Self {
            prefactor_v: 1.1e-10 * temp_accel * vdd_accel,
            clock_hz: conditions.clock_mhz * 1e6,
        }
    }

    /// Drift in volts after `months` of operation with the given average
    /// output toggles per clock cycle.
    ///
    /// # Panics
    ///
    /// Panics if `toggle_rate` or `months` is negative.
    pub fn delta_vth_v(&self, toggle_rate: f64, months: f64) -> f64 {
        assert!(toggle_rate >= 0.0 && months >= 0.0);
        let seconds = months * 30.0 * 24.0 * 3600.0;
        let transitions = toggle_rate * self.clock_hz * seconds;
        self.prefactor_v * transitions.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_scales_with_sqrt_time() {
        let m = HciModel::new(&AgingConditions::default());
        let v1 = m.delta_vth_v(0.5, 12.0);
        let v4 = m.delta_vth_v(0.5, 48.0);
        assert!((v4 / v1 - 2.0).abs() < 1e-9, "√4 = 2");
    }

    #[test]
    fn idle_gates_do_not_age_by_hci() {
        let m = HciModel::new(&AgingConditions::default());
        assert_eq!(m.delta_vth_v(0.0, 48.0), 0.0);
    }

    #[test]
    fn four_year_drift_is_tens_of_millivolts() {
        let m = HciModel::new(&AgingConditions::default());
        let v = m.delta_vth_v(0.5, 48.0);
        assert!(v > 0.005 && v < 0.1, "drift {v} V out of plausible range");
    }
}
