//! PRESENT-80 and PRESENT-128 block ciphers.

use crate::sbox::{player, player_inv, sbox, sbox_layer, sbox_layer_inv};

/// Number of substitution–permutation rounds (a 32nd round key is used for
/// the final whitening).
pub const ROUNDS: usize = 31;

/// PRESENT with an 80-bit key.
///
/// # Example
///
/// ```
/// use present_cipher::Present80;
///
/// let key = [0xFFu8; 10];
/// let cipher = Present80::new(key);
/// assert_eq!(cipher.encrypt_block(0), 0xE72C_46C0_F594_5049);
/// ```
#[derive(Debug, Clone)]
pub struct Present80 {
    round_keys: [u64; ROUNDS + 1],
}

impl Present80 {
    /// Expand a key (big-endian byte order: `key[0]` holds bits 79..72).
    pub fn new(key: [u8; 10]) -> Self {
        const MASK80: u128 = (1u128 << 80) - 1;
        let mut k = 0u128;
        for &b in &key {
            k = (k << 8) | u128::from(b);
        }
        let mut round_keys = [0u64; ROUNDS + 1];
        for (round, rk) in round_keys.iter_mut().enumerate() {
            *rk = (k >> 16) as u64; // round key = leftmost 64 bits
            let round = round as u128 + 1;
            // Rotate the 80-bit register left by 61.
            k = ((k << 61) | (k >> 19)) & MASK80;
            // S-box on the top nibble (bits 79..76).
            let top = ((k >> 76) & 0xF) as u8;
            k = (k & !(0xFu128 << 76)) | (u128::from(sbox(top)) << 76);
            // XOR the round counter into bits 19..15.
            k ^= round << 15;
        }
        Self { round_keys }
    }

    /// The 32 round keys (`round_keys()[0]` = K1, whitening key last).
    pub fn round_keys(&self) -> &[u64; ROUNDS + 1] {
        &self.round_keys
    }

    /// Encrypt one 64-bit block.
    pub fn encrypt_block(&self, plaintext: u64) -> u64 {
        let mut state = plaintext;
        for rk in &self.round_keys[..ROUNDS] {
            state ^= rk;
            state = sbox_layer(state);
            state = player(state);
        }
        state ^ self.round_keys[ROUNDS]
    }

    /// Decrypt one 64-bit block.
    pub fn decrypt_block(&self, ciphertext: u64) -> u64 {
        let mut state = ciphertext ^ self.round_keys[ROUNDS];
        for rk in self.round_keys[..ROUNDS].iter().rev() {
            state = player_inv(state);
            state = sbox_layer_inv(state);
            state ^= rk;
        }
        state
    }
}

/// PRESENT with a 128-bit key.
///
/// # Example
///
/// ```
/// use present_cipher::Present128;
///
/// let cipher = Present128::new([0u8; 16]);
/// let ct = cipher.encrypt_block(0x0123_4567_89AB_CDEF);
/// assert_eq!(cipher.decrypt_block(ct), 0x0123_4567_89AB_CDEF);
/// ```
#[derive(Debug, Clone)]
pub struct Present128 {
    round_keys: [u64; ROUNDS + 1],
}

impl Present128 {
    /// Expand a key (big-endian byte order: `key[0]` holds bits 127..120).
    pub fn new(key: [u8; 16]) -> Self {
        let mut k = 0u128;
        for &b in &key {
            k = (k << 8) | u128::from(b);
        }
        let mut round_keys = [0u64; ROUNDS + 1];
        for (round, rk) in round_keys.iter_mut().enumerate() {
            *rk = (k >> 64) as u64;
            let round = round as u128 + 1;
            // Rotate left by 61.
            k = k.rotate_left(61);
            // S-box on the two top nibbles.
            let n1 = ((k >> 124) & 0xF) as u8;
            let n2 = ((k >> 120) & 0xF) as u8;
            k = (k & !(0xFF << 120))
                | (u128::from(sbox(n1)) << 124)
                | (u128::from(sbox(n2)) << 120);
            // XOR the round counter into bits 66..62.
            k ^= round << 62;
        }
        Self { round_keys }
    }

    /// The 32 round keys.
    pub fn round_keys(&self) -> &[u64; ROUNDS + 1] {
        &self.round_keys
    }

    /// Encrypt one 64-bit block.
    pub fn encrypt_block(&self, plaintext: u64) -> u64 {
        let mut state = plaintext;
        for rk in &self.round_keys[..ROUNDS] {
            state ^= rk;
            state = sbox_layer(state);
            state = player(state);
        }
        state ^ self.round_keys[ROUNDS]
    }

    /// Decrypt one 64-bit block.
    pub fn decrypt_block(&self, ciphertext: u64) -> u64 {
        let mut state = ciphertext ^ self.round_keys[ROUNDS];
        for rk in self.round_keys[..ROUNDS].iter().rev() {
            state = player_inv(state);
            state = sbox_layer_inv(state);
            state ^= rk;
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test vectors from Table 5 ("Test vectors") of the PRESENT paper.
    #[test]
    fn present80_published_vectors() {
        let cases: [([u8; 10], u64, u64); 4] = [
            ([0x00; 10], 0x0000_0000_0000_0000, 0x5579_C138_7B22_8445),
            ([0xFF; 10], 0x0000_0000_0000_0000, 0xE72C_46C0_F594_5049),
            ([0x00; 10], 0xFFFF_FFFF_FFFF_FFFF, 0xA112_FFC7_2F68_417B),
            ([0xFF; 10], 0xFFFF_FFFF_FFFF_FFFF, 0x3333_DCD3_2132_10D2),
        ];
        for (key, pt, ct) in cases {
            let cipher = Present80::new(key);
            assert_eq!(cipher.encrypt_block(pt), ct, "key={key:?} pt={pt:#x}");
            assert_eq!(cipher.decrypt_block(ct), pt);
        }
    }

    #[test]
    fn present80_round_trip_random() {
        let cipher = Present80::new([0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0, 0x11, 0x22]);
        let mut x = 0x0123_4567_89AB_CDEFu64;
        for _ in 0..100 {
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            assert_eq!(cipher.decrypt_block(cipher.encrypt_block(x)), x);
        }
    }

    #[test]
    fn present128_round_trip_random() {
        let cipher = Present128::new([
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD,
            0xEE, 0xFF,
        ]);
        let mut x = 0xDEAD_BEEF_0BAD_F00Du64;
        for _ in 0..100 {
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            assert_eq!(cipher.decrypt_block(cipher.encrypt_block(x)), x);
        }
    }

    #[test]
    fn first_round_key_is_key_top_bits() {
        let key = [0xAB, 0xCD, 0xEF, 0x01, 0x23, 0x45, 0x67, 0x89, 0x10, 0x32];
        let cipher = Present80::new(key);
        assert_eq!(cipher.round_keys()[0], 0xABCD_EF01_2345_6789);
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let c1 = Present80::new([0x00; 10]);
        let c2 = Present80::new([0x01; 10]);
        assert_ne!(c1.encrypt_block(42), c2.encrypt_block(42));
    }

    #[test]
    fn round_one_helper_matches_key_addition() {
        let cipher = Present80::new([0x0F; 10]);
        let nib = crate::round_one_sbox_input(0x0000_0000_0000_00FF, &cipher);
        let expect = 0x0000_0000_0000_00FF ^ cipher.round_keys()[0];
        for (i, &n) in nib.iter().enumerate() {
            assert_eq!(u64::from(n), (expect >> (4 * i)) & 0xF);
        }
    }
}
