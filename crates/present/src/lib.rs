//! Reference implementation of the PRESENT lightweight block cipher
//! (Bogdanov et al., CHES 2007; ISO/IEC 29192-2:2012).
//!
//! PRESENT is a 64-bit substitution–permutation network with 31 rounds and
//! an 80- or 128-bit key. Every round applies `addRoundKey`, a nibble-wise
//! 4-bit S-box layer, and a bit permutation `pLayer`.
//!
//! This crate is the cryptographic substrate of the leakage study: the
//! side-channel experiments target the **round-1 add-round-key + S-box**
//! datapath ([`round_one_sbox_input`]), and the CPA baseline needs the exact
//! S-box ([`SBOX`]) for its key hypotheses.
//!
//! # Example
//!
//! ```
//! use present_cipher::Present80;
//!
//! let cipher = Present80::new([0u8; 10]);
//! let ct = cipher.encrypt_block(0);
//! assert_eq!(ct, 0x5579_C138_7B22_8445); // test vector from the paper
//! assert_eq!(cipher.decrypt_block(ct), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cipher;
mod sbox;

pub use cipher::{Present128, Present80, ROUNDS};
pub use sbox::{player, player_inv, sbox, sbox_inv, sbox_layer, sbox_layer_inv, SBOX, SBOX_INV};

/// The 16 round-1 S-box input nibbles for a plaintext/key pair: nibble `i`
/// of `plaintext ^ K1`.
///
/// This is exactly the intermediate value the paper's traces expose (the
/// "add-round-key and S-Box operations in the first round"), and the value
/// a CPA attacker hypothesizes.
///
/// # Example
///
/// ```
/// use present_cipher::{round_one_sbox_input, Present80};
///
/// let cipher = Present80::new([0x55; 10]);
/// let nibbles = round_one_sbox_input(0x0123_4567_89AB_CDEF, &cipher);
/// assert_eq!(nibbles.len(), 16);
/// assert!(nibbles.iter().all(|&n| n < 16));
/// ```
pub fn round_one_sbox_input(plaintext: u64, cipher: &Present80) -> [u8; 16] {
    let state = plaintext ^ cipher.round_keys()[0];
    let mut out = [0u8; 16];
    for (i, n) in out.iter_mut().enumerate() {
        *n = ((state >> (4 * i)) & 0xF) as u8;
    }
    out
}
