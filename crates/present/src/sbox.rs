//! The PRESENT S-box, its inverse, and the round layers.

/// The PRESENT 4-bit S-box.
pub const SBOX: [u8; 16] = [
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
];

/// The inverse PRESENT S-box.
pub const SBOX_INV: [u8; 16] = [
    0x5, 0xE, 0xF, 0x8, 0xC, 0x1, 0x2, 0xD, 0xB, 0x4, 0x6, 0x3, 0x0, 0x7, 0x9, 0xA,
];

/// Apply the S-box to a nibble.
///
/// # Panics
///
/// Panics if `x >= 16`.
#[inline]
pub fn sbox(x: u8) -> u8 {
    SBOX[usize::from(x)]
}

/// Apply the inverse S-box to a nibble.
///
/// # Panics
///
/// Panics if `x >= 16`.
#[inline]
pub fn sbox_inv(x: u8) -> u8 {
    SBOX_INV[usize::from(x)]
}

/// Apply the S-box to all 16 nibbles of the state.
pub fn sbox_layer(state: u64) -> u64 {
    nibble_map(state, &SBOX)
}

/// Apply the inverse S-box to all 16 nibbles of the state.
pub fn sbox_layer_inv(state: u64) -> u64 {
    nibble_map(state, &SBOX_INV)
}

fn nibble_map(state: u64, table: &[u8; 16]) -> u64 {
    let mut out = 0u64;
    for i in 0..16 {
        let n = (state >> (4 * i)) & 0xF;
        out |= u64::from(table[n as usize]) << (4 * i);
    }
    out
}

/// The PRESENT bit permutation: input bit `i` moves to output position
/// `16·i mod 63` (bit 63 is fixed).
pub fn player(state: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..63 {
        out |= ((state >> i) & 1) << (i * 16 % 63);
    }
    out | (state & (1 << 63))
}

/// The inverse of [`player`].
pub fn player_inv(state: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..63 {
        out |= ((state >> (i * 16 % 63)) & 1) << i;
    }
    out | (state & (1 << 63))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_is_a_permutation_and_inverse_matches() {
        let mut seen = [false; 16];
        for x in 0..16u8 {
            let y = sbox(x);
            assert!(!seen[usize::from(y)]);
            seen[usize::from(y)] = true;
            assert_eq!(sbox_inv(y), x);
        }
    }

    #[test]
    fn sbox_has_no_fixed_points_on_low_values() {
        // Design property from the PRESENT paper: S(x) known values.
        assert_eq!(sbox(0x0), 0xC);
        assert_eq!(sbox(0xF), 0x2);
    }

    #[test]
    fn player_round_trips() {
        for s in [0u64, u64::MAX, 0x0123_4567_89AB_CDEF, 0xDEAD_BEEF_F00D_CAFE] {
            assert_eq!(player_inv(player(s)), s);
            assert_eq!(player(player_inv(s)), s);
        }
    }

    #[test]
    fn player_is_the_published_table() {
        // P(0)=0, P(1)=16, P(2)=32, P(3)=48, P(4)=1 … P(63)=63 (paper Table 3).
        assert_eq!(player(1 << 1), 1 << 16);
        assert_eq!(player(1 << 2), 1 << 32);
        assert_eq!(player(1 << 4), 1 << 1);
        assert_eq!(player(1 << 62), 1 << 47);
        assert_eq!(player(1 << 63), 1 << 63);
    }

    #[test]
    fn sbox_layer_round_trips() {
        for s in [0u64, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(sbox_layer_inv(sbox_layer(s)), s);
        }
    }
}
