//! The pre-optimization capture path, frozen as the measured baseline.
//!
//! This is a faithful copy of the capture hot path as it stood before
//! the `CaptureSession` rework: a `BinaryHeap` event queue, every
//! scratch buffer allocated per call, per-net `loads()` vectors chased
//! through the netlist, and the `.take(last).skip(first)` waveform
//! indexing that walked the whole sample buffer per event. It is built
//! purely on `gatesim`'s public API (`gate_delay_ps`, `gate_energy_fj`,
//! `config`, the netlist accessors), so it stays compilable while the
//! production engine evolves.
//!
//! Two jobs:
//!
//! 1. the **baseline leg** of the capture benchmarks and of
//!    `capture_bench` (which writes `BENCH_capture.json`);
//! 2. a **bit-identity oracle**: `legacy_capture_with_rng_stats` must
//!    match `Simulator::capture_with_rng_stats` exactly, proving the
//!    bucket-queue engine changed the cost, not the physics.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gatesim::{CaptureStats, PulseShape, SamplingConfig, Simulator, SwitchEvent, TransitionRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sbox_netlist::GateId;

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    time_ps: f64,
    seq: u64,
    gate: GateId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time_ps
            .total_cmp(&other.time_ps)
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The original `Simulator::transition`: heap-queued events, all scratch
/// allocated per call.
pub fn legacy_transition(
    sim: &Simulator<'_>,
    initial: &[bool],
    final_inputs: &[bool],
) -> TransitionRecord {
    let netlist = sim.netlist();
    assert_eq!(final_inputs.len(), netlist.num_inputs());
    let mut values = netlist.evaluate_nets(initial);

    let mut pending: Vec<Option<(f64, bool, u64)>> = vec![None; netlist.gates().len()];
    let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut events: Vec<SwitchEvent> = Vec::new();

    let mut touched: Vec<GateId> = Vec::new();
    for (&net, &v) in netlist.inputs().iter().zip(final_inputs) {
        if values[net.index()] != v {
            values[net.index()] = v;
            touched.extend(netlist.net(net).loads());
        }
    }
    touched.sort();
    touched.dedup();
    for g in touched {
        schedule(
            sim,
            g,
            0.0,
            &values,
            &mut pending,
            &mut heap,
            &mut seq,
            &mut events,
        );
    }

    let mut last_switch = vec![f64::NEG_INFINITY; netlist.gates().len()];
    while let Some(Reverse(entry)) = heap.pop() {
        let gid = entry.gate;
        let Some((t, v, s)) = pending[gid.index()] else {
            continue; // cancelled
        };
        if s != entry.seq {
            continue; // superseded
        }
        pending[gid.index()] = None;
        let out_net = netlist.gate(gid).output();
        values[out_net.index()] = v;
        let swing_ps = 3.0 * sim.gate_delay_ps(gid);
        let elapsed = t - last_switch[gid.index()];
        let swing_fraction = (elapsed / swing_ps).min(1.0);
        last_switch[gid.index()] = t;
        events.push(SwitchEvent {
            gate: gid,
            time_ps: t,
            rising: v,
            energy_fj: sim.gate_energy_fj(gid) * swing_fraction,
            absorbed: false,
        });
        for &load in netlist.net(out_net).loads() {
            schedule(
                sim,
                load,
                t,
                &values,
                &mut pending,
                &mut heap,
                &mut seq,
                &mut events,
            );
        }
    }

    events.sort_by(|a, b| a.time_ps.total_cmp(&b.time_ps));
    TransitionRecord {
        events,
        settled: values,
    }
}

#[allow(clippy::too_many_arguments)]
fn schedule(
    sim: &Simulator<'_>,
    g: GateId,
    t_now: f64,
    values: &[bool],
    pending: &mut [Option<(f64, bool, u64)>],
    heap: &mut BinaryHeap<Reverse<HeapEntry>>,
    seq: &mut u64,
    events: &mut Vec<SwitchEvent>,
) {
    let gate = sim.netlist().gate(g);
    let mut pins = [false; 4];
    for (slot, net) in pins.iter_mut().zip(gate.inputs()) {
        *slot = values[net.index()];
    }
    let new_v = gate.cell().evaluate(&pins[..gate.inputs().len()]);
    let cur = values[gate.output().index()];
    match pending[g.index()] {
        Some((_, vp, _)) if vp == new_v => {}
        Some((tp, _, _)) => {
            pending[g.index()] = None;
            if sim.config().absorbed_energy_fraction > 0.0 {
                events.push(SwitchEvent {
                    gate: g,
                    time_ps: tp,
                    rising: !cur,
                    energy_fj: sim.gate_energy_fj(g) * sim.config().absorbed_energy_fraction,
                    absorbed: true,
                });
            }
            if new_v != cur {
                push_event(sim, g, t_now, new_v, pending, heap, seq);
            }
        }
        None => {
            if new_v != cur {
                push_event(sim, g, t_now, new_v, pending, heap, seq);
            }
        }
    }
}

fn push_event(
    sim: &Simulator<'_>,
    g: GateId,
    t_now: f64,
    value: bool,
    pending: &mut [Option<(f64, bool, u64)>],
    heap: &mut BinaryHeap<Reverse<HeapEntry>>,
    seq: &mut u64,
) {
    *seq += 1;
    let t = t_now + sim.gate_delay_ps(g);
    pending[g.index()] = Some((t, value, *seq));
    heap.push(Reverse(HeapEntry {
        time_ps: t,
        seq: *seq,
        gate: g,
    }));
}

/// The original `sample_waveform`: a fresh buffer per call and iterator
/// `.take(last).skip(first)` indexing that enumerates every bin before
/// `first` for every event.
pub fn legacy_sample_waveform(
    events: &[SwitchEvent],
    sampling: &SamplingConfig,
    pulse_width_factor: f64,
    gate_delay_ps: impl Fn(GateId) -> f64,
    shape: PulseShape,
) -> Vec<f64> {
    let dt = sampling.period_ps();
    let mut samples = vec![0.0f64; sampling.samples];
    for e in events {
        let width = (pulse_width_factor * gate_delay_ps(e.gate)).max(1e-3);
        let start = e.time_ps;
        let end = start + width;
        let first = ((start / dt).floor().max(0.0)) as usize;
        let last = ((end / dt).ceil() as usize).min(sampling.samples);
        for (k, slot) in samples
            .iter_mut()
            .enumerate()
            .take(last)
            .skip(first.min(sampling.samples))
        {
            let bin_lo = k as f64 * dt;
            let bin_hi = bin_lo + dt;
            let xa = ((bin_lo - start) / width).clamp(0.0, 1.0);
            let xb = ((bin_hi - start) / width).clamp(0.0, 1.0);
            let frac = pulse_cdf(shape, xb) - pulse_cdf(shape, xa);
            if frac > 0.0 {
                *slot += e.energy_fj * frac / dt;
            }
        }
    }
    samples
}

fn pulse_cdf(shape: PulseShape, x: f64) -> f64 {
    match shape {
        PulseShape::Rectangular => x,
        PulseShape::Triangular => {
            if x < 0.5 {
                2.0 * x * x
            } else {
                1.0 - 2.0 * (1.0 - x) * (1.0 - x)
            }
        }
    }
}

/// Box–Muller standard normal, bit-identical to the simulator's private
/// `gaussian` (same algorithm, same draws).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// The original `Simulator::capture_with_rng_stats`: transition, render,
/// add noise — one fresh allocation per stage.
pub fn legacy_capture_with_rng_stats<R: Rng>(
    sim: &Simulator<'_>,
    initial: &[bool],
    final_inputs: &[bool],
    sampling: &SamplingConfig,
    rng: &mut R,
) -> (Vec<f64>, CaptureStats) {
    let record = legacy_transition(sim, initial, final_inputs);
    let mut samples = legacy_sample_waveform(
        &record.events,
        sampling,
        sim.config().pulse_width_factor,
        |g| sim.gate_delay_ps(g),
        PulseShape::Triangular,
    );
    if sim.config().noise_mw > 0.0 {
        for s in &mut samples {
            *s += sim.config().noise_mw * gaussian(rng);
        }
    }
    (samples, CaptureStats::from(&record))
}

/// The original `Simulator::capture`, including its stimulus-derived
/// noise seeding.
pub fn legacy_capture(
    sim: &Simulator<'_>,
    initial: &[bool],
    final_inputs: &[bool],
    sampling: &SamplingConfig,
) -> Vec<f64> {
    let mut noise_seed = sim.config().seed ^ 0x9e37_79b9_7f4a_7c15;
    for (i, &b) in initial.iter().chain(final_inputs).enumerate() {
        if b {
            noise_seed = noise_seed.rotate_left(7).wrapping_add(0x100 + i as u64);
        }
    }
    let mut rng = SmallRng::seed_from_u64(noise_seed);
    legacy_capture_with_rng_stats(sim, initial, final_inputs, sampling, &mut rng).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use gatesim::SimConfig;
    use sbox_circuits::{SboxCircuit, Scheme};

    /// The oracle: on the real ISW netlist, with process variation and
    /// noise on, the frozen pre-rework path and the session engine agree
    /// bit for bit — traces, stats, and the stimulus-seeded noise path.
    #[test]
    fn legacy_and_session_engines_are_bit_identical_on_isw() {
        let circuit = SboxCircuit::build(Scheme::Isw);
        let cfg = SimConfig {
            process_sigma: 0.08,
            noise_mw: 0.02,
            ..SimConfig::default()
        };
        let sim = Simulator::new(circuit.netlist(), &cfg);
        let sampling = SamplingConfig::default();
        let mut session = sim.session();
        let mut rng = SmallRng::seed_from_u64(0xB00);
        for step in 0u64..16 {
            let initial = circuit.encoding().encode((step % 16) as u8, &mut rng);
            let final_inputs = circuit
                .encoding()
                .encode(((step * 5 + 3) % 16) as u8, &mut rng);
            let mut r_old = SmallRng::seed_from_u64(step);
            let mut r_new = SmallRng::seed_from_u64(step);
            let (t_old, s_old) =
                legacy_capture_with_rng_stats(&sim, &initial, &final_inputs, &sampling, &mut r_old);
            let (t_new, s_new) =
                session.capture_with_rng_stats(&initial, &final_inputs, &sampling, &mut r_new);
            assert_eq!(t_old, t_new, "trace mismatch at step {step}");
            assert_eq!(s_old, s_new, "stats mismatch at step {step}");
            assert_eq!(
                legacy_capture(&sim, &initial, &final_inputs, &sampling),
                sim.capture(&initial, &final_inputs, &sampling),
                "stimulus-seeded noise path diverged at step {step}"
            );
        }
    }

    #[test]
    fn legacy_transition_matches_production_on_every_scheme() {
        for scheme in Scheme::ALL {
            let circuit = SboxCircuit::build(scheme);
            let sim = Simulator::new(circuit.netlist(), &SimConfig::default());
            let mut rng = SmallRng::seed_from_u64(42);
            let initial = circuit.encoding().encode(0, &mut rng);
            let final_inputs = circuit.encoding().encode(9, &mut rng);
            let old = legacy_transition(&sim, &initial, &final_inputs);
            let new = sim.transition(&initial, &final_inputs);
            assert_eq!(old.events, new.events, "{scheme:?}");
            assert_eq!(old.settled, new.settled, "{scheme:?}");
        }
    }
}
