//! Criterion benchmark harness for the sbox-leakage workspace.
//!
//! The benches measure the cost of every pipeline stage: the
//! Walsh–Hadamard transform, netlist generation/synthesis, event-driven
//! simulation per scheme, trace acquisition, aging evaluation and CPA.
//! Run with `cargo bench --workspace`.
//!
//! [`legacy`] freezes the pre-`CaptureSession` capture path (heap
//! queue, per-call allocation, full-buffer waveform indexing) so the
//! optimization can be measured against the code it replaced; the
//! `capture_bench` binary runs that comparison and writes
//! `BENCH_capture.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod legacy;
