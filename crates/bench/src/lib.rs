//! Criterion benchmark harness for the sbox-leakage workspace.
//!
//! The benches measure the cost of every pipeline stage: the
//! Walsh–Hadamard transform, netlist generation/synthesis, event-driven
//! simulation per scheme, trace acquisition, aging evaluation and CPA.
//! Run with `cargo bench --workspace`.
