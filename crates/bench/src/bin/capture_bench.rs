//! Measured capture-throughput comparison → `BENCH_capture.json`.
//!
//! Runs the same single-threaded trace schedule (the acquisition
//! protocol's classified schedule on the ISW netlist) through four
//! capture paths and reports traces/sec and events/sec for each:
//!
//! * `legacy` — the frozen pre-rework engine (`BinaryHeap` queue,
//!   per-call scratch allocation, full-buffer waveform indexing);
//! * `alloc_per_capture` — today's allocating entry point
//!   (`Simulator::capture_with_rng_stats`, a temporary session per call);
//! * `session_reuse` — one [`gatesim::CaptureSession`] reused across the
//!   whole schedule, as the campaign executor holds per worker;
//! * `session_capture_into` — the same session rendering into one
//!   reused sample buffer (no per-trace allocation at all);
//! * `streaming_fold_exact` / `streaming_fold_welford` — the
//!   `session_capture_into` path with each trace folded straight into a
//!   [`leakage_core::SpectrumStream`] online accumulator (the campaign's
//!   bounded-memory analysis mode), so the delta over
//!   `session_capture_into` is the pure cost of the fold;
//! * `bitsliced_batch` — the levelized [`gatesim::BitslicedSession`]
//!   capturing the schedule in [`gatesim::LANES`]-trace batches, 64
//!   traces per machine word. The whole batch is simulated on the first
//!   per-trace call of each pass and per-trace stats are served from it,
//!   so the pass wall-clock (and therefore the throughput ratio against
//!   `session_capture_into`) is directly comparable.
//!
//! All capture paths produce bit-identical traces (asserted here on the
//! first pass and in `sca_bench::legacy`'s tests), so the ratios are
//! pure engine cost; the streaming legs additionally assert, once per
//! pass, that the folded spectrum matches the batch analysis. Usage:
//!
//! ```text
//! cargo run --release -p sca-bench --bin capture_bench [--quick] [--out PATH]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use acquisition::{classified_schedule, trace_seed, ProtocolConfig, Stimulus, NUM_CLASSES};
use gatesim::{CaptureStats, LaneStimulus, SamplingConfig, Simulator, LANES};
use leakage_core::{ClassifiedTraces, LeakageSpectrum, SpectrumStream, SumMode};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sbox_circuits::{SboxCircuit, Scheme};
use sca_bench::legacy::legacy_capture_with_rng_stats;

struct Leg {
    name: &'static str,
    seconds: f64,
    traces: usize,
    events: usize,
}

impl Leg {
    fn traces_per_sec(&self) -> f64 {
        self.traces as f64 / self.seconds
    }

    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.seconds
    }
}

/// A capture path under measurement: (stimulus, noise seed) → stats.
type CaptureFn<'s> = Box<dyn FnMut(&Stimulus, u64) -> CaptureStats + 's>;

/// One capture path under measurement.
struct Runner<'s> {
    name: &'static str,
    capture: CaptureFn<'s>,
}

/// Time every runner over the schedule, `passes` times each,
/// round-robin (leg A pass 1, leg B pass 1, …, leg A pass 2, …) so CPU
/// warm-up and frequency drift hit all legs equally instead of biasing
/// whichever leg runs first.
fn measure(schedule: &[(Stimulus, u64)], passes: usize, mut runners: Vec<Runner<'_>>) -> Vec<Leg> {
    // Warmup pass per leg: fault in allocations and caches.
    for r in &mut runners {
        let mut events = 0usize;
        for (s, seed) in schedule {
            events += (r.capture)(s, *seed).events;
        }
        let _ = events;
    }

    let mut seconds = vec![0.0f64; runners.len()];
    let mut events = vec![0usize; runners.len()];
    for _ in 0..passes {
        for (i, r) in runners.iter_mut().enumerate() {
            let start = Instant::now();
            for (s, seed) in schedule {
                events[i] += (r.capture)(s, *seed).events;
            }
            seconds[i] += start.elapsed().as_secs_f64();
        }
    }
    runners
        .iter()
        .enumerate()
        .map(|(i, r)| Leg {
            name: r.name,
            seconds: seconds[i],
            traces: passes * schedule.len(),
            events: events[i],
        })
        .collect()
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_capture.json".into());

    let protocol = ProtocolConfig {
        traces_per_class: if quick { 4 } else { 64 },
        ..ProtocolConfig::default()
    };
    let passes = if quick { 1 } else { 16 };
    let circuit = SboxCircuit::build(Scheme::Isw);
    let sim = Simulator::new(circuit.netlist(), &protocol.sim);
    let sampling: SamplingConfig = protocol.sampling;
    let schedule: Vec<(Stimulus, u64)> = classified_schedule(&circuit, &protocol)
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, trace_seed(protocol.seed, i as u64)))
        .collect();
    eprintln!(
        "capture_bench: {} gates, {} traces/pass x {passes} passes{}",
        circuit.netlist().gates().len(),
        schedule.len(),
        if quick { " (quick)" } else { "" },
    );

    // Sanity: all four paths agree on the first stimulus before timing.
    {
        let (s, seed) = &schedule[0];
        let mut r = SmallRng::seed_from_u64(*seed);
        let reference =
            legacy_capture_with_rng_stats(&sim, &s.initial, &s.final_inputs, &sampling, &mut r).0;
        let mut session = sim.session();
        let mut r = SmallRng::seed_from_u64(*seed);
        let via_session = session
            .capture_with_rng_stats(&s.initial, &s.final_inputs, &sampling, &mut r)
            .0;
        assert_eq!(reference, via_session, "legacy and session paths diverge");
    }

    // Batch-analysis reference for the streaming legs' sanity check:
    // the exact fold must reproduce this spectrum bitwise once per pass.
    let batch_tlp = {
        let mut session = sim.session();
        let mut buf = Vec::new();
        let mut set = ClassifiedTraces::new(NUM_CLASSES, sampling.samples);
        for (s, seed) in &schedule {
            let mut rng = SmallRng::seed_from_u64(*seed);
            session.capture_into(&s.initial, &s.final_inputs, &sampling, &mut rng, &mut buf);
            set.push(usize::from(s.label), buf.clone());
        }
        LeakageSpectrum::from_class_means(&set.class_means()).total_leakage_power()
    };

    let schedule_len = schedule.len() as u64;
    let mut session_a = sim.session();
    let mut session_b = sim.session();
    let mut buf = Vec::new();

    // One runner per summation mode: capture into a reused buffer, fold
    // into the online accumulator, and check the finished spectrum
    // against the batch analysis each time a full pass has been folded.
    let streaming_runner = |mode: SumMode, name: &'static str| {
        let mut session = sim.session();
        let mut buf = Vec::new();
        let mut stream = SpectrumStream::new(NUM_CLASSES, sampling.samples, mode);
        Runner {
            name,
            capture: Box::new(move |s: &Stimulus, seed: u64| {
                let mut rng = SmallRng::seed_from_u64(seed);
                let stats = session.capture_into(
                    &s.initial,
                    &s.final_inputs,
                    &sampling,
                    &mut rng,
                    &mut buf,
                );
                stream.fold(usize::from(s.label), &buf);
                if stream.folded() == schedule_len {
                    let done = std::mem::replace(
                        &mut stream,
                        SpectrumStream::new(NUM_CLASSES, sampling.samples, mode),
                    );
                    let tlp = done.finish().spectrum().total_leakage_power();
                    match mode {
                        SumMode::Exact => assert_eq!(
                            tlp, batch_tlp,
                            "exact streamed fold diverged from batch analysis"
                        ),
                        SumMode::Welford => assert!(
                            ((tlp - batch_tlp) / batch_tlp).abs() <= 1e-9,
                            "welford streamed fold drifted past tolerance: {tlp} vs {batch_tlp}"
                        ),
                    }
                }
                stats
            }),
        }
    };
    // The bit-sliced leg batches LANES stimuli per engine pass; the
    // per-trace Runner contract is kept by simulating the whole
    // schedule on the first call of a pass and serving each trace's
    // stats from the batch. Sanity: the batch traces are bit-identical
    // to the scalar session path (the full equivalence matrix lives in
    // the gatesim/campaign test suites).
    let bitsliced_runner = {
        let mut session = sim
            .bitsliced_session()
            .expect("ISW netlist is bitslice-supported");
        {
            let mut scalar = sim.session();
            let mut buf = Vec::new();
            let (s, seed) = &schedule[0];
            let lane = LaneStimulus {
                initial: &s.initial,
                final_inputs: &s.final_inputs,
                noise_seed: *seed,
            };
            let (traces, _) = session.capture_batch(std::slice::from_ref(&lane), &sampling);
            let batch_trace = traces[0].clone();
            let mut rng = SmallRng::seed_from_u64(*seed);
            scalar.capture_into(&s.initial, &s.final_inputs, &sampling, &mut rng, &mut buf);
            assert_eq!(batch_trace, buf, "bitsliced and scalar paths diverge");
        }
        let schedule_ref: &[(Stimulus, u64)] = &schedule;
        let mut stats: Vec<CaptureStats> = Vec::new();
        let mut at = 0usize;
        Runner {
            name: "bitsliced_batch",
            capture: Box::new(move |_s, _seed| {
                if at == 0 {
                    stats.clear();
                    for chunk in schedule_ref.chunks(LANES) {
                        let lanes: Vec<LaneStimulus> = chunk
                            .iter()
                            .map(|(s, seed)| LaneStimulus {
                                initial: &s.initial,
                                final_inputs: &s.final_inputs,
                                noise_seed: *seed,
                            })
                            .collect();
                        let (_, batch_stats) = session.capture_batch(&lanes, &sampling);
                        stats.extend_from_slice(batch_stats);
                    }
                }
                let out = stats[at];
                at = (at + 1) % schedule_ref.len();
                out
            }),
        }
    };
    let legs = measure(
        &schedule,
        passes,
        vec![
            Runner {
                name: "legacy",
                capture: Box::new(|s, seed| {
                    let mut rng = SmallRng::seed_from_u64(seed);
                    legacy_capture_with_rng_stats(
                        &sim,
                        &s.initial,
                        &s.final_inputs,
                        &sampling,
                        &mut rng,
                    )
                    .1
                }),
            },
            Runner {
                name: "alloc_per_capture",
                capture: Box::new(|s, seed| {
                    let mut rng = SmallRng::seed_from_u64(seed);
                    sim.capture_with_rng_stats(&s.initial, &s.final_inputs, &sampling, &mut rng)
                        .1
                }),
            },
            Runner {
                name: "session_reuse",
                capture: Box::new(move |s, seed| {
                    let mut rng = SmallRng::seed_from_u64(seed);
                    session_a
                        .capture_with_rng_stats(&s.initial, &s.final_inputs, &sampling, &mut rng)
                        .1
                }),
            },
            Runner {
                name: "session_capture_into",
                capture: Box::new(move |s, seed| {
                    let mut rng = SmallRng::seed_from_u64(seed);
                    session_b.capture_into(
                        &s.initial,
                        &s.final_inputs,
                        &sampling,
                        &mut rng,
                        &mut buf,
                    )
                }),
            },
            streaming_runner(SumMode::Exact, "streaming_fold_exact"),
            streaming_runner(SumMode::Welford, "streaming_fold_welford"),
            bitsliced_runner,
        ],
    );
    for leg in &legs {
        eprintln!(
            "  {:<22} {:>9.0} traces/s  {:>11.0} events/s  ({:.3}s)",
            leg.name,
            leg.traces_per_sec(),
            leg.events_per_sec(),
            leg.seconds,
        );
    }
    let vs_legacy = legs[2].traces_per_sec() / legs[0].traces_per_sec();
    let vs_alloc = legs[2].traces_per_sec() / legs[1].traces_per_sec();
    eprintln!("  session_reuse speedup: {vs_legacy:.2}x vs legacy, {vs_alloc:.2}x vs alloc");
    let stream_exact_vs_batch = legs[4].traces_per_sec() / legs[3].traces_per_sec();
    let stream_welford_vs_batch = legs[5].traces_per_sec() / legs[3].traces_per_sec();
    eprintln!(
        "  streaming fold throughput vs session_capture_into: \
         {stream_exact_vs_batch:.3}x exact, {stream_welford_vs_batch:.3}x welford"
    );
    let bitsliced_vs_session_into = legs[6].traces_per_sec() / legs[3].traces_per_sec();
    eprintln!("  bitsliced_batch speedup: {bitsliced_vs_session_into:.2}x vs session_capture_into");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"capture_throughput\",");
    let _ = writeln!(json, "  \"netlist\": \"isw\",");
    let _ = writeln!(json, "  \"gates\": {},", circuit.netlist().gates().len());
    let _ = writeln!(json, "  \"samples_per_trace\": {},", sampling.samples);
    let _ = writeln!(json, "  \"traces_per_pass\": {},", schedule.len());
    let _ = writeln!(json, "  \"passes\": {passes},");
    let _ = writeln!(json, "  \"threads\": 1,");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"legs\": [\n");
    for (i, leg) in legs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"seconds\": {}, \"traces\": {}, \"events\": {}, \"traces_per_sec\": {}, \"events_per_sec\": {}}}{}",
            leg.name,
            json_f64(leg.seconds),
            leg.traces,
            leg.events,
            json_f64(leg.traces_per_sec()),
            json_f64(leg.events_per_sec()),
            if i + 1 < legs.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"speedup_session_vs_legacy\": {},",
        json_f64(vs_legacy)
    );
    let _ = writeln!(
        json,
        "  \"speedup_session_vs_alloc\": {},",
        json_f64(vs_alloc)
    );
    let _ = writeln!(
        json,
        "  \"throughput_streaming_exact_vs_batch\": {},",
        json_f64(stream_exact_vs_batch)
    );
    let _ = writeln!(
        json,
        "  \"throughput_streaming_welford_vs_batch\": {},",
        json_f64(stream_welford_vs_batch)
    );
    let _ = writeln!(
        json,
        "  \"speedup_bitsliced_vs_session_into\": {}",
        json_f64(bitsliced_vs_session_into)
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_capture.json");
    eprintln!("wrote {out_path}");
}
