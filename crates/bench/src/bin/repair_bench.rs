//! Measured incremental-vs-from-scratch re-analysis throughput for the
//! repair loop → `BENCH_repair.json`.
//!
//! The repair searcher's inner loop re-verifies one patched netlist per
//! candidate. This bench builds the TI subject's [`sca_verify::Baseline`]
//! once, generates the searcher's real first-round candidate patches,
//! and times two legs over the same candidates:
//!
//! * `full_reanalysis` — [`sca_verify::analyze_subject`], the
//!   from-scratch path that re-derives every gate statistic;
//! * `incremental_reanalysis` — [`sca_verify::Baseline::reanalyze`],
//!   the cone-scoped path that recomputes only statistics downstream of
//!   the edit.
//!
//! Every candidate's incremental report is asserted byte-identical to
//! its from-scratch report before anything is timed, so the ratio is
//! pure cost, not approximation — and the run fails unless the
//! incremental path is at least [`SPEEDUP_FLOOR`]× faster. Usage:
//!
//! ```text
//! cargo run --release -p sca-bench --bin repair_bench [--quick] [--out PATH]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use sbox_circuits::{SboxCircuit, Scheme};
use sca_repair::patch::generate;
use sca_verify::{analyze_subject, report, Baseline, Subject};

/// Minimum accepted `full / incremental` wall-clock ratio. The repair
/// loop's viability rests on cone-scoped re-analysis being an order
/// cheaper than re-deriving the whole netlist; 5× is the floor the
/// roadmap pins, measured on the 922-gate TI subject.
const SPEEDUP_FLOOR: f64 = 5.0;

struct Leg {
    name: String,
    seconds: f64,
    reanalyses: usize,
}

impl Leg {
    fn per_sec(&self) -> f64 {
        self.reanalyses as f64 / self.seconds
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_repair.json".into());
    let passes = if quick { 2 } else { 8 };

    let subject = Subject::of_circuit(&SboxCircuit::build(Scheme::Ti));
    let baseline = Baseline::new(subject.clone());
    let base_analysis = baseline.base_analysis();
    let generated = generate(baseline.subject(), &base_analysis);
    let candidates: Vec<Subject> = generated.patches.into_iter().map(|p| p.subject).collect();
    assert!(
        !candidates.is_empty(),
        "TI must yield first-round repair candidates"
    );
    eprintln!(
        "repair_bench: {} gates, {} candidate patches, {passes} passes/leg{}",
        subject.netlist().gates().len(),
        candidates.len(),
        if quick { " (quick)" } else { "" },
    );

    // Sanity: on every candidate the cone-scoped path must reproduce the
    // from-scratch report byte-for-byte before anything is timed.
    let mut dirty_gates = 0usize;
    let mut total_gates = 0usize;
    for cand in &candidates {
        let fresh = analyze_subject(cand);
        let (incr, effort) = baseline.reanalyze(cand);
        assert_eq!(
            report::json(&fresh),
            report::json(&incr),
            "incremental report diverged from from-scratch"
        );
        dirty_gates += effort.dirty_gates;
        total_gates += effort.total_gates;
    }

    let mut legs = [
        Leg {
            name: "full_reanalysis".into(),
            seconds: 0.0,
            reanalyses: passes * candidates.len(),
        },
        Leg {
            name: "incremental_reanalysis".into(),
            seconds: 0.0,
            reanalyses: passes * candidates.len(),
        },
    ];
    // Round-robin so warm-up and frequency drift hit both legs equally.
    for _ in 0..passes {
        let start = Instant::now();
        for cand in &candidates {
            std::hint::black_box(analyze_subject(cand));
        }
        legs[0].seconds += start.elapsed().as_secs_f64();

        let start = Instant::now();
        for cand in &candidates {
            std::hint::black_box(baseline.reanalyze(cand));
        }
        legs[1].seconds += start.elapsed().as_secs_f64();
    }

    for leg in &legs {
        eprintln!(
            "  {:<24} {:>10.1} reanalyses/s  ({:.3}s)",
            leg.name,
            leg.per_sec(),
            leg.seconds,
        );
    }
    let speedup = legs[0].seconds / legs[1].seconds;
    eprintln!("  incremental speedup {speedup:.1}x (dirty {dirty_gates}/{total_gates} gate stats)");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"repair_reanalysis\",");
    let _ = writeln!(json, "  \"netlist\": \"ti\",");
    let _ = writeln!(json, "  \"gates\": {},", subject.netlist().gates().len());
    let _ = writeln!(json, "  \"candidates\": {},", candidates.len());
    let _ = writeln!(json, "  \"passes\": {passes},");
    let _ = writeln!(json, "  \"dirty_gate_stats\": {dirty_gates},");
    let _ = writeln!(json, "  \"total_gate_stats\": {total_gates},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"legs\": [\n");
    for (i, leg) in legs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"seconds\": {}, \"reanalyses\": {}, \"reanalyses_per_sec\": {}}}{}",
            leg.name,
            json_f64(leg.seconds),
            leg.reanalyses,
            json_f64(leg.per_sec()),
            if i + 1 < legs.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"speedup\": {}", json_f64(speedup));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_repair.json");
    eprintln!("wrote {out_path}");

    assert!(
        speedup >= SPEEDUP_FLOOR,
        "incremental re-analysis speedup {speedup:.1}x fell below the {SPEEDUP_FLOOR}x floor"
    );
}
