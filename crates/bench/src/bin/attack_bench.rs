//! Measured attack-fold throughput comparison → `BENCH_attack.json`.
//!
//! Acquires one real CPA dataset (the unprotected LUT netlist), then
//! times every distinguisher through two scoring paths over the
//! in-memory traces, so the numbers are pure distinguisher cost with no
//! capture in the loop:
//!
//! * `batch_<d>` — [`sca_attacks::attack_batch`], the two-pass exact
//!   reference that holds the whole trace matrix;
//! * `stream_<d>` — [`sca_attacks::AttackStream`], the campaign's
//!   bounded-memory chunk-tree fold, one trace at a time.
//!
//! The streamed scores are asserted bitwise-equal to the batch scores
//! once per leg before timing, so the ratio is cost, not approximation.
//! Usage:
//!
//! ```text
//! cargo run --release -p sca-bench --bin attack_bench [--quick] [--out PATH]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use acquisition::{acquire_cpa, ProtocolConfig};
use leakage_core::SumMode;
use sbox_circuits::{SboxCircuit, Scheme};
use sca_attacks::{attack_batch, AttackStream, Distinguisher, LeakageModel};

struct Leg {
    name: String,
    seconds: f64,
    traces: usize,
}

impl Leg {
    fn traces_per_sec(&self) -> f64 {
        self.traces as f64 / self.seconds
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_attack.json".into());

    let traces = if quick { 128 } else { 1024 };
    let passes = if quick { 2 } else { 16 };
    let protocol = ProtocolConfig::default();
    let circuit = SboxCircuit::build(Scheme::Lut);
    let data = acquire_cpa(&circuit, &protocol, 0xB, traces);
    let samples = protocol.sampling.samples;
    eprintln!(
        "attack_bench: {traces} traces x {samples} samples, {passes} passes/leg{}",
        if quick { " (quick)" } else { "" },
    );

    let distinguishers = [
        Distinguisher::Cpa(LeakageModel::OutputTransition),
        Distinguisher::Dpa { bit: 0 },
        Distinguisher::Mlpa,
    ];

    // Sanity per distinguisher: the streamed fold reproduces the batch
    // scores bit-for-bit before anything is timed.
    for d in distinguishers {
        let batch = attack_batch(&data.plaintexts, &data.traces, d).scores();
        let mut stream = AttackStream::new(d, samples, SumMode::Exact);
        for (&p, t) in data.plaintexts.iter().zip(&data.traces) {
            stream.fold(p, t);
        }
        let streamed = stream.finish().scores();
        for g in 0..16 {
            assert_eq!(
                batch.scores[g].to_bits(),
                streamed.scores[g].to_bits(),
                "{} streamed fold diverged from batch at guess {g}",
                d.label()
            );
        }
    }

    // Round-robin over the legs so warm-up and frequency drift hit all
    // of them equally.
    let mut legs: Vec<Leg> = distinguishers
        .iter()
        .flat_map(|d| {
            [
                Leg {
                    name: format!("batch_{}", d.label()),
                    seconds: 0.0,
                    traces: passes * traces,
                },
                Leg {
                    name: format!("stream_{}", d.label()),
                    seconds: 0.0,
                    traces: passes * traces,
                },
            ]
        })
        .collect();
    for _ in 0..passes {
        for (i, d) in distinguishers.iter().enumerate() {
            let start = Instant::now();
            let r = attack_batch(&data.plaintexts, &data.traces, *d);
            legs[2 * i].seconds += start.elapsed().as_secs_f64();
            std::hint::black_box(r.scores());

            let start = Instant::now();
            let mut stream = AttackStream::new(*d, samples, SumMode::Exact);
            for (&p, t) in data.plaintexts.iter().zip(&data.traces) {
                stream.fold(p, t);
            }
            legs[2 * i + 1].seconds += start.elapsed().as_secs_f64();
            std::hint::black_box(stream.finish().scores());
        }
    }

    for leg in &legs {
        eprintln!(
            "  {:<22} {:>10.0} traces/s  ({:.3}s)",
            leg.name,
            leg.traces_per_sec(),
            leg.seconds,
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"attack_throughput\",");
    let _ = writeln!(json, "  \"netlist\": \"lut\",");
    let _ = writeln!(json, "  \"samples_per_trace\": {samples},");
    let _ = writeln!(json, "  \"traces_per_pass\": {traces},");
    let _ = writeln!(json, "  \"passes\": {passes},");
    let _ = writeln!(json, "  \"threads\": 1,");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"legs\": [\n");
    for (i, leg) in legs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"seconds\": {}, \"traces\": {}, \"traces_per_sec\": {}}}{}",
            leg.name,
            json_f64(leg.seconds),
            leg.traces,
            json_f64(leg.traces_per_sec()),
            if i + 1 < legs.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_attack.json");
    eprintln!("wrote {out_path}");
}
