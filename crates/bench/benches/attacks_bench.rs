//! CPA attack throughput and the PRESENT cipher reference speed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use present_cipher::Present80;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sca_attacks::{cpa_attack, LeakageModel};

fn bench_cpa(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(4);
    let plaintexts: Vec<u8> = (0..512).map(|_| rng.gen_range(0..16)).collect();
    let traces: Vec<Vec<f64>> = plaintexts
        .iter()
        .map(|&p| {
            (0..100)
                .map(|t| f64::from(present_cipher::sbox(p ^ 0xB).count_ones()) * (t as f64 / 100.0))
                .collect()
        })
        .collect();
    c.bench_function("cpa/512traces_100samples", |b| {
        b.iter(|| cpa_attack(&plaintexts, &traces, LeakageModel::HammingWeight))
    });
}

fn bench_present(c: &mut Criterion) {
    let cipher = Present80::new([0x5A; 10]);
    c.bench_function("present/encrypt_block", |b| {
        b.iter(|| cipher.encrypt_block(black_box(0x0123_4567_89AB_CDEF)))
    });
    c.bench_function("present/key_schedule", |b| {
        b.iter(|| Present80::new(black_box([0x5A; 10])))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_cpa, bench_present
}
criterion_main!(benches);
