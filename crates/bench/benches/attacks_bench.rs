//! CPA attack throughput and the PRESENT cipher reference speed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leakage_core::SumMode;
use present_cipher::Present80;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sca_attacks::{cpa_attack, AttackStream, Distinguisher, LeakageModel};

fn bench_cpa(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(4);
    let plaintexts: Vec<u8> = (0..512).map(|_| rng.gen_range(0..16)).collect();
    let traces: Vec<Vec<f64>> = plaintexts
        .iter()
        .map(|&p| {
            (0..100)
                .map(|t| f64::from(present_cipher::sbox(p ^ 0xB).count_ones()) * (t as f64 / 100.0))
                .collect()
        })
        .collect();
    c.bench_function("cpa/512traces_100samples", |b| {
        b.iter(|| cpa_attack(&plaintexts, &traces, LeakageModel::HammingWeight))
    });
    // Streaming fold throughput per distinguisher: the campaign's
    // bounded-memory path over the same dataset, one trace at a time.
    for d in [
        Distinguisher::Cpa(LeakageModel::HammingWeight),
        Distinguisher::Dpa { bit: 0 },
        Distinguisher::Mlpa,
    ] {
        c.bench_function(&format!("stream/{}_512traces_100samples", d.label()), |b| {
            b.iter(|| {
                let mut stream = AttackStream::new(d, 100, SumMode::Exact);
                for (&p, t) in plaintexts.iter().zip(&traces) {
                    stream.fold(p, t);
                }
                stream.finish().scores()
            })
        });
    }
}

fn bench_present(c: &mut Criterion) {
    let cipher = Present80::new([0x5A; 10]);
    c.bench_function("present/encrypt_block", |b| {
        b.iter(|| cipher.encrypt_block(black_box(0x0123_4567_89AB_CDEF)))
    });
    c.bench_function("present/key_schedule", |b| {
        b.iter(|| Present80::new(black_box([0x5A; 10])))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_cpa, bench_present
}
criterion_main!(benches);
