//! Walsh–Hadamard transform and spectral-metric throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leakage_core::{spectrum_of, ClassifiedTraces, LeakageSpectrum};

fn bench_wht(c: &mut Criterion) {
    let f16: Vec<f64> = (0..16).map(|x| (x as f64).sin()).collect();
    c.bench_function("wht/spectrum_16", |b| {
        b.iter(|| spectrum_of(black_box(&f16)))
    });
    let f1024: Vec<f64> = (0..1024).map(|x| (x as f64).cos()).collect();
    c.bench_function("wht/spectrum_1024", |b| {
        b.iter(|| spectrum_of(black_box(&f1024)))
    });
}

fn bench_spectrum_pipeline(c: &mut Criterion) {
    // 1024 traces × 100 samples, the paper's protocol size.
    let mut set = ClassifiedTraces::new(16, 100);
    for i in 0..1024usize {
        let trace: Vec<f64> = (0..100).map(|t| ((i * t) as f64).sin()).collect();
        set.push(i % 16, trace);
    }
    c.bench_function("spectrum/class_means_1024x100", |b| {
        b.iter(|| set.class_means())
    });
    let means = set.class_means();
    c.bench_function("spectrum/project_16x100", |b| {
        b.iter(|| LeakageSpectrum::from_class_means(black_box(&means)))
    });
    let spectrum = LeakageSpectrum::from_class_means(&means);
    c.bench_function("spectrum/total_leakage", |b| {
        b.iter(|| spectrum.total_leakage_power())
    });
}

criterion_group!(benches, bench_wht, bench_spectrum_pipeline);
criterion_main!(benches);
