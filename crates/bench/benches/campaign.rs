//! Campaign-engine throughput: traces/second through the sharded
//! executor at 1/2/4/8 workers, and the cold-acquire versus warm-cache
//! cost of a full campaign cell.

use std::path::{Path, PathBuf};

use campaign::{CacheMode, Campaign, CampaignConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sbox_circuits::Scheme;

fn small_protocol() -> acquisition::ProtocolConfig {
    acquisition::ProtocolConfig {
        traces_per_class: 4,
        ..acquisition::ProtocolConfig::default()
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sbox-leakage-bench-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn campaign_in(dir: &Path, workers: usize, cache: CacheMode) -> Campaign {
    Campaign::new(CampaignConfig {
        protocol: small_protocol(),
        workers,
        cache,
        store_dir: dir.join("traces"),
        log_path: dir.join("runs.jsonl"),
        ..CampaignConfig::default()
    })
}

/// Cold acquisition (cache off, every iteration simulates): scaling of
/// the sharded executor with worker count.
fn bench_workers(c: &mut Criterion) {
    let traces = small_protocol().traces_per_class as u64 * 16;
    let mut group = c.benchmark_group("campaign/acquire_cold");
    group.sample_size(10);
    group.throughput(Throughput::Elements(traces));
    for workers in [1usize, 2, 4, 8] {
        let dir = scratch(&format!("cold{workers}"));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{workers}workers")),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut campaign = campaign_in(&dir, workers, CacheMode::Off);
                    campaign.acquire(Scheme::Isw)
                })
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Warm cache (store primed once): each iteration is a fresh campaign
/// that serves the same cell from disk without simulating.
fn bench_warm_cache(c: &mut Criterion) {
    let traces = small_protocol().traces_per_class as u64 * 16;
    let dir = scratch("warm");
    campaign_in(&dir, 1, CacheMode::ReadWrite).acquire(Scheme::Isw);

    let mut group = c.benchmark_group("campaign/acquire_warm");
    group.sample_size(10);
    group.throughput(Throughput::Elements(traces));
    group.bench_function("store_hit", |b| {
        b.iter(|| {
            let mut campaign = campaign_in(&dir, 1, CacheMode::ReadWrite);
            let outcome = campaign.acquire(Scheme::Isw);
            assert!(outcome.cache_hit);
            outcome
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_workers, bench_warm_cache
}
criterion_main!(benches);
