//! Campaign-engine throughput: traces/second through the sharded
//! executor at 1/2/4/8 workers, the cold-acquire versus warm-cache cost
//! of a full campaign cell, and the overhead of the fault-tolerance
//! machinery (panic isolation + retry) when faults actually fire.

use std::path::{Path, PathBuf};

use campaign::{CacheMode, Campaign, CampaignConfig, FaultPlan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sbox_circuits::Scheme;

fn small_protocol() -> acquisition::ProtocolConfig {
    acquisition::ProtocolConfig {
        traces_per_class: 4,
        ..acquisition::ProtocolConfig::default()
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sbox-leakage-bench-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn campaign_in(dir: &Path, workers: usize, cache: CacheMode) -> Campaign {
    Campaign::new(CampaignConfig {
        protocol: small_protocol(),
        workers,
        cache,
        store_dir: dir.join("traces"),
        log_path: dir.join("runs.jsonl"),
        ..CampaignConfig::default()
    })
}

/// Cold acquisition (cache off, every iteration simulates): scaling of
/// the sharded executor with worker count.
fn bench_workers(c: &mut Criterion) {
    let traces = small_protocol().traces_per_class as u64 * 16;
    let mut group = c.benchmark_group("campaign/acquire_cold");
    group.sample_size(10);
    group.throughput(Throughput::Elements(traces));
    for workers in [1usize, 2, 4, 8] {
        let dir = scratch(&format!("cold{workers}"));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{workers}workers")),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut campaign = campaign_in(&dir, workers, CacheMode::Off);
                    campaign.acquire(Scheme::Isw)
                })
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Warm cache (store primed once): each iteration is a fresh campaign
/// that serves the same cell from disk without simulating.
fn bench_warm_cache(c: &mut Criterion) {
    let traces = small_protocol().traces_per_class as u64 * 16;
    let dir = scratch("warm");
    campaign_in(&dir, 1, CacheMode::ReadWrite).acquire(Scheme::Isw);

    let mut group = c.benchmark_group("campaign/acquire_warm");
    group.sample_size(10);
    group.throughput(Throughput::Elements(traces));
    group.bench_function("store_hit", |b| {
        b.iter(|| {
            let mut campaign = campaign_in(&dir, 1, CacheMode::ReadWrite);
            let outcome = campaign.acquire(Scheme::Isw);
            assert!(outcome.cache_hit);
            outcome
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fault-recovery overhead: the same cold acquisition with a 10%
/// transient panic rate — every tenth trace unwinds once and is retried
/// — versus the catch-unwind wrapper alone (no faults). The gap between
/// this and `acquire_cold/4workers` is the price of recovery.
fn bench_fault_recovery(c: &mut Criterion) {
    let traces = small_protocol().traces_per_class as u64 * 16;
    let mut group = c.benchmark_group("campaign/acquire_faulted");
    group.sample_size(10);
    group.throughput(Throughput::Elements(traces));
    for (name, faults) in [
        ("no_faults", FaultPlan::none()),
        ("retry_10pct", FaultPlan::none().with_panic_rate(7, 0.1)),
    ] {
        let dir = scratch(&format!("faulted-{name}"));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut campaign = Campaign::new(CampaignConfig {
                    protocol: small_protocol(),
                    workers: 4,
                    cache: CacheMode::Off,
                    store_dir: dir.join("traces"),
                    log_path: dir.join("runs.jsonl"),
                    faults: faults.clone(),
                    ..CampaignConfig::default()
                });
                campaign.acquire(Scheme::Isw)
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// The executor's inner loop in isolation: one shard's worth of
/// scheduled stimuli captured via the one-shot allocating
/// `capture_stimulus` versus the reused per-worker `CaptureSession`
/// (what the executor actually holds for its whole shard). Same
/// schedule, same seeds, bit-identical traces — the gap is pure
/// allocation and queue overhead.
fn bench_shard_capture_paths(c: &mut Criterion) {
    use acquisition::{
        capture_stimulus, capture_stimulus_session, classified_schedule, trace_seed,
    };
    use gatesim::Simulator;

    let protocol = small_protocol();
    let circuit = sbox_circuits::SboxCircuit::build(Scheme::Isw);
    let sim = Simulator::new(circuit.netlist(), &protocol.sim);
    let schedule = classified_schedule(&circuit, &protocol);
    let traces = schedule.len() as u64;

    let mut group = c.benchmark_group("campaign/shard_capture");
    group.sample_size(10);
    group.throughput(Throughput::Elements(traces));
    group.bench_function("alloc_per_trace", |b| {
        b.iter(|| {
            schedule
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    capture_stimulus(
                        &sim,
                        s,
                        &protocol.sampling,
                        trace_seed(protocol.seed, i as u64),
                    )
                    .1
                })
                .fold(0usize, |acc, stats| acc + stats.events)
        })
    });
    let mut session = sim.session();
    group.bench_function("session_per_worker", |b| {
        b.iter(|| {
            schedule
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    capture_stimulus_session(
                        &mut session,
                        s,
                        &protocol.sampling,
                        trace_seed(protocol.seed, i as u64),
                    )
                    .1
                })
                .fold(0usize, |acc, stats| acc + stats.events)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_workers, bench_warm_cache, bench_fault_recovery, bench_shard_capture_paths
}
criterion_main!(benches);
