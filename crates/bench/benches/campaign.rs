//! Campaign-engine throughput: traces/second through the sharded
//! executor at 1/2/4/8 workers, the cold-acquire versus warm-cache cost
//! of a full campaign cell, and the overhead of the fault-tolerance
//! machinery (panic isolation + retry) when faults actually fire.

use std::path::{Path, PathBuf};

use campaign::{CacheMode, Campaign, CampaignConfig, FaultPlan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sbox_circuits::Scheme;

fn small_protocol() -> acquisition::ProtocolConfig {
    acquisition::ProtocolConfig {
        traces_per_class: 4,
        ..acquisition::ProtocolConfig::default()
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sbox-leakage-bench-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn campaign_in(dir: &Path, workers: usize, cache: CacheMode) -> Campaign {
    Campaign::new(CampaignConfig {
        protocol: small_protocol(),
        workers,
        cache,
        store_dir: dir.join("traces"),
        log_path: dir.join("runs.jsonl"),
        ..CampaignConfig::default()
    })
}

/// Cold acquisition (cache off, every iteration simulates): scaling of
/// the sharded executor with worker count.
fn bench_workers(c: &mut Criterion) {
    let traces = small_protocol().traces_per_class as u64 * 16;
    let mut group = c.benchmark_group("campaign/acquire_cold");
    group.sample_size(10);
    group.throughput(Throughput::Elements(traces));
    for workers in [1usize, 2, 4, 8] {
        let dir = scratch(&format!("cold{workers}"));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{workers}workers")),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut campaign = campaign_in(&dir, workers, CacheMode::Off);
                    campaign.acquire(Scheme::Isw)
                })
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Warm cache (store primed once): each iteration is a fresh campaign
/// that serves the same cell from disk without simulating.
fn bench_warm_cache(c: &mut Criterion) {
    let traces = small_protocol().traces_per_class as u64 * 16;
    let dir = scratch("warm");
    campaign_in(&dir, 1, CacheMode::ReadWrite).acquire(Scheme::Isw);

    let mut group = c.benchmark_group("campaign/acquire_warm");
    group.sample_size(10);
    group.throughput(Throughput::Elements(traces));
    group.bench_function("store_hit", |b| {
        b.iter(|| {
            let mut campaign = campaign_in(&dir, 1, CacheMode::ReadWrite);
            let outcome = campaign.acquire(Scheme::Isw);
            assert!(outcome.cache_hit);
            outcome
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fault-recovery overhead: the same cold acquisition with a 10%
/// transient panic rate — every tenth trace unwinds once and is retried
/// — versus the catch-unwind wrapper alone (no faults). The gap between
/// this and `acquire_cold/4workers` is the price of recovery.
fn bench_fault_recovery(c: &mut Criterion) {
    let traces = small_protocol().traces_per_class as u64 * 16;
    let mut group = c.benchmark_group("campaign/acquire_faulted");
    group.sample_size(10);
    group.throughput(Throughput::Elements(traces));
    for (name, faults) in [
        ("no_faults", FaultPlan::none()),
        ("retry_10pct", FaultPlan::none().with_panic_rate(7, 0.1)),
    ] {
        let dir = scratch(&format!("faulted-{name}"));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut campaign = Campaign::new(CampaignConfig {
                    protocol: small_protocol(),
                    workers: 4,
                    cache: CacheMode::Off,
                    store_dir: dir.join("traces"),
                    log_path: dir.join("runs.jsonl"),
                    faults: faults.clone(),
                    ..CampaignConfig::default()
                });
                campaign.acquire(Scheme::Isw)
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_workers, bench_warm_cache, bench_fault_recovery
}
criterion_main!(benches);
