//! Netlist generation / synthesis cost per scheme (Table I column cost),
//! plus functional-evaluation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbox_circuits::{SboxCircuit, Scheme};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist/build");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| b.iter(|| SboxCircuit::build(scheme)),
        );
    }
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist/evaluate");
    for scheme in [Scheme::Lut, Scheme::Glut, Scheme::Ti] {
        let circuit = SboxCircuit::build(scheme);
        let inputs = vec![false; circuit.netlist().num_inputs()];
        group.bench_with_input(BenchmarkId::from_parameter(scheme.label()), &(), |b, ()| {
            b.iter(|| circuit.netlist().evaluate(&inputs))
        });
    }
    group.finish();

    c.bench_function("netlist/stats_ti", |b| {
        let circuit = SboxCircuit::build(Scheme::Ti);
        b.iter(|| circuit.netlist().stats())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_generation, bench_evaluation
}
criterion_main!(benches);
