//! Event-driven simulation throughput per scheme, plus power-model
//! ablations (pulse shape, process-variation σ) and the capture-path
//! shootout: frozen pre-rework engine vs. allocating `Simulator` calls
//! vs. a reused `CaptureSession`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gatesim::{sample_waveform, PulseShape, SamplingConfig, SimConfig, Simulator};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sbox_circuits::{SboxCircuit, Scheme};
use sca_bench::legacy::legacy_capture_with_rng_stats;

fn bench_transitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/transition");
    for scheme in Scheme::ALL {
        let circuit = SboxCircuit::build(scheme);
        let sim = Simulator::new(circuit.netlist(), &SimConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let initial = circuit.encoding().encode(0, &mut rng);
        let final_inputs = circuit.encoding().encode(9, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(scheme.label()), &(), |b, ()| {
            b.iter(|| sim.transition(&initial, &final_inputs))
        });
    }
    group.finish();
}

fn bench_capture_and_ablation(c: &mut Criterion) {
    let circuit = SboxCircuit::build(Scheme::Isw);
    let sim = Simulator::new(circuit.netlist(), &SimConfig::default());
    let mut rng = SmallRng::seed_from_u64(2);
    let initial = circuit.encoding().encode(0, &mut rng);
    let final_inputs = circuit.encoding().encode(5, &mut rng);
    let sampling = SamplingConfig::default();
    c.bench_function("simulator/capture_isw", |b| {
        b.iter(|| sim.capture(&initial, &final_inputs, &sampling))
    });

    // Ablation: waveform rendering cost by pulse shape.
    let record = sim.transition(&initial, &final_inputs);
    let mut group = c.benchmark_group("simulator/pulse_shape");
    for shape in [PulseShape::Triangular, PulseShape::Rectangular] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{shape:?}")),
            &shape,
            |b, &shape| {
                b.iter(|| {
                    sample_waveform(
                        &record.events,
                        &sampling,
                        1.5,
                        |g| sim.gate_delay_ps(g),
                        shape,
                    )
                })
            },
        );
    }
    group.finish();

    // Ablation: simulator construction under process-variation sweep.
    let mut group = c.benchmark_group("simulator/process_sigma");
    for sigma in [0.0, 0.05, 0.15] {
        let cfg = SimConfig {
            process_sigma: sigma,
            ..SimConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{sigma}")),
            &cfg,
            |b, cfg| b.iter(|| Simulator::new(circuit.netlist(), cfg)),
        );
    }
    group.finish();
}

/// The tentpole comparison on the ISW netlist: the frozen pre-rework
/// path (`legacy`, heap queue + per-call allocation), the still-public
/// allocating entry point (`alloc_per_capture`, which now runs on a
/// temporary session), a session reused across iterations
/// (`session_reuse`), and the fully allocation-free `capture_into` leg.
/// All four produce bit-identical traces — see
/// `sca_bench::legacy::tests`.
fn bench_capture_paths(c: &mut Criterion) {
    let circuit = SboxCircuit::build(Scheme::Isw);
    let sim = Simulator::new(circuit.netlist(), &SimConfig::default());
    let mut rng = SmallRng::seed_from_u64(3);
    let initial = circuit.encoding().encode(0, &mut rng);
    let final_inputs = circuit.encoding().encode(5, &mut rng);
    let sampling = SamplingConfig::default();

    let mut group = c.benchmark_group("simulator/capture_path_isw");
    group.bench_function("legacy", |b| {
        b.iter(|| {
            let mut noise = SmallRng::seed_from_u64(11);
            legacy_capture_with_rng_stats(&sim, &initial, &final_inputs, &sampling, &mut noise)
        })
    });
    group.bench_function("alloc_per_capture", |b| {
        b.iter(|| {
            let mut noise = SmallRng::seed_from_u64(11);
            sim.capture_with_rng_stats(&initial, &final_inputs, &sampling, &mut noise)
        })
    });
    let mut session = sim.session();
    group.bench_function("session_reuse", |b| {
        b.iter(|| {
            let mut noise = SmallRng::seed_from_u64(11);
            session.capture_with_rng_stats(&initial, &final_inputs, &sampling, &mut noise)
        })
    });
    let mut buf = Vec::new();
    group.bench_function("session_capture_into", |b| {
        b.iter(|| {
            let mut noise = SmallRng::seed_from_u64(11);
            session.capture_into(&initial, &final_inputs, &sampling, &mut noise, &mut buf)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_transitions, bench_capture_and_ablation, bench_capture_paths
}
criterion_main!(benches);
