//! Event-driven simulation throughput per scheme, plus power-model
//! ablations (pulse shape, process-variation σ).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gatesim::{sample_waveform, PulseShape, SamplingConfig, SimConfig, Simulator};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sbox_circuits::{SboxCircuit, Scheme};

fn bench_transitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/transition");
    for scheme in Scheme::ALL {
        let circuit = SboxCircuit::build(scheme);
        let sim = Simulator::new(circuit.netlist(), &SimConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        let initial = circuit.encoding().encode(0, &mut rng);
        let final_inputs = circuit.encoding().encode(9, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(scheme.label()), &(), |b, ()| {
            b.iter(|| sim.transition(&initial, &final_inputs))
        });
    }
    group.finish();
}

fn bench_capture_and_ablation(c: &mut Criterion) {
    let circuit = SboxCircuit::build(Scheme::Isw);
    let sim = Simulator::new(circuit.netlist(), &SimConfig::default());
    let mut rng = SmallRng::seed_from_u64(2);
    let initial = circuit.encoding().encode(0, &mut rng);
    let final_inputs = circuit.encoding().encode(5, &mut rng);
    let sampling = SamplingConfig::default();
    c.bench_function("simulator/capture_isw", |b| {
        b.iter(|| sim.capture(&initial, &final_inputs, &sampling))
    });

    // Ablation: waveform rendering cost by pulse shape.
    let record = sim.transition(&initial, &final_inputs);
    let mut group = c.benchmark_group("simulator/pulse_shape");
    for shape in [PulseShape::Triangular, PulseShape::Rectangular] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{shape:?}")),
            &shape,
            |b, &shape| {
                b.iter(|| {
                    sample_waveform(
                        &record.events,
                        &sampling,
                        1.5,
                        |g| sim.gate_delay_ps(g),
                        shape,
                    )
                })
            },
        );
    }
    group.finish();

    // Ablation: simulator construction under process-variation sweep.
    let mut group = c.benchmark_group("simulator/process_sigma");
    for sigma in [0.0, 0.05, 0.15] {
        let cfg = SimConfig {
            process_sigma: sigma,
            ..SimConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{sigma}")),
            &cfg,
            |b, cfg| b.iter(|| Simulator::new(circuit.netlist(), cfg)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_transitions, bench_capture_and_ablation
}
criterion_main!(benches);
