//! Trace-acquisition and aging-pipeline cost — the per-figure experiment
//! budget (Figs. 2–8 all stand on these loops).

use acquisition::{acquire, LeakageStudy, ProtocolConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbox_circuits::{SboxCircuit, Scheme};

fn small_protocol() -> ProtocolConfig {
    ProtocolConfig {
        traces_per_class: 4,
        ..ProtocolConfig::default()
    }
}

fn bench_acquisition(c: &mut Criterion) {
    let mut group = c.benchmark_group("acquire/64traces");
    group.sample_size(10);
    for scheme in [Scheme::Opt, Scheme::Rsm, Scheme::Isw, Scheme::Ti] {
        let circuit = SboxCircuit::build(scheme);
        let config = small_protocol();
        group.bench_with_input(BenchmarkId::from_parameter(scheme.label()), &(), |b, ()| {
            b.iter(|| acquire(&circuit, &config))
        });
    }
    group.finish();
}

fn bench_aging_pipeline(c: &mut Criterion) {
    let study = LeakageStudy::new(small_protocol());
    let circuit = SboxCircuit::build(Scheme::Opt);
    c.bench_function("aging/profile_and_model", |b| {
        b.iter(|| study.aged_device(&circuit))
    });
    let device = study.aged_device(&circuit);
    c.bench_function("aging/derating_at_48mo", |b| {
        b.iter(|| device.derating_at_months(48.0))
    });
    c.bench_function("aging/timeline_2mo_steps", |b| {
        b.iter(|| device.timeline(2.0, 48.0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_acquisition, bench_aging_pipeline
}
criterion_main!(benches);
