//! Theorem 1 of the paper: *a random Boolean splitting of any order leaks
//! the least-significant bit of the Hamming weight.*
//!
//! For a sensitive bit `x` split into `d+1` shares `x₀ ⊕ … ⊕ x_d = x`, the
//! Hamming-weight leakage `w_H(x₀,…,x_d)` satisfies
//! `LSB(w_H) = x₀ ⊕ … ⊕ x_d = x` — the parity of an additive leakage
//! discloses the unmasked bit regardless of the masking order. This module
//! verifies the identity exhaustively and measures the induced correlation
//! on randomized sharings.

use rand::Rng;

/// Exhaustively check `LSB(w_H(shares)) = ⊕ shares` for every sharing of
/// `d+1` shares. Returns the number of sharings checked.
///
/// # Panics
///
/// Panics if `d + 1 > 20` (the enumeration would be too large) — and, by
/// design, if the theorem were ever violated.
pub fn verify_exhaustively(d: usize) -> usize {
    let shares = d + 1;
    assert!(shares <= 20);
    let mut checked = 0;
    for word in 0u32..(1 << shares) {
        let hw = word.count_ones();
        let parity = (word.count_ones() & 1) as u8;
        let lsb_hw = (hw & 1) as u8;
        assert_eq!(lsb_hw, parity, "Theorem 1 violated for sharing {word:b}");
        checked += 1;
    }
    checked
}

/// Monte-Carlo estimate of the correlation between the unmasked bit `x`
/// and `LSB(w_H)` over `trials` random sharings of order `d`.
/// By Theorem 1 this is exactly 1.
pub fn lsb_parity_correlation<R: Rng>(d: usize, trials: usize, rng: &mut R) -> f64 {
    assert!(trials > 0);
    let mut agree = 0usize;
    for _ in 0..trials {
        let x: u8 = rng.gen_range(0..2);
        // Random sharing: d random shares, last share fixes the XOR.
        let mut acc = 0u8;
        let mut hw = 0u32;
        for _ in 0..d {
            let s: u8 = rng.gen_range(0..2);
            acc ^= s;
            hw += u32::from(s);
        }
        let last = acc ^ x;
        hw += u32::from(last);
        if (hw & 1) as u8 == x {
            agree += 1;
        }
    }
    // agreement rate → correlation for balanced binary variables.
    2.0 * (agree as f64 / trials as f64) - 1.0
}

/// The parity-free counterexample: the *square* of a centred Hamming-weight
/// leakage does **not** reveal `x` — confirming that Theorem 1 is about the
/// parity structure, not any generic function of `w_H`. Returns the
/// empirical correlation (≈ 0 for `d ≥ 1`).
pub fn squared_hw_correlation<R: Rng>(d: usize, trials: usize, rng: &mut R) -> f64 {
    assert!(trials > 0 && d >= 1);
    let shares = d + 1;
    let mut xs = Vec::with_capacity(trials);
    let mut ls = Vec::with_capacity(trials);
    for _ in 0..trials {
        let x: u8 = rng.gen_range(0..2);
        let mut acc = 0u8;
        let mut hw = 0i32;
        for _ in 0..d {
            let s: u8 = rng.gen_range(0..2);
            acc ^= s;
            hw += i32::from(s);
        }
        let last = acc ^ x;
        hw += i32::from(last);
        let centred = hw as f64 - shares as f64 / 2.0;
        xs.push(f64::from(x));
        ls.push(centred * centred);
    }
    crate::stats::pearson(&xs, &ls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn theorem_holds_for_orders_one_to_eight() {
        for d in 1..=8 {
            assert_eq!(verify_exhaustively(d), 1 << (d + 1));
        }
    }

    #[test]
    fn monte_carlo_correlation_is_one() {
        let mut rng = SmallRng::seed_from_u64(1);
        for d in [1, 2, 3, 7] {
            let c = lsb_parity_correlation(d, 2000, &mut rng);
            assert_eq!(c, 1.0, "d={d}");
        }
    }

    #[test]
    fn squared_leakage_does_not_disclose() {
        let mut rng = SmallRng::seed_from_u64(2);
        let c = squared_hw_correlation(3, 50_000, &mut rng);
        assert!(c.abs() < 0.03, "correlation {c}");
    }
}
