//! The per-sample spectral decomposition and the paper's leakage metrics.

use crate::wht::spectrum_of;

/// The Walsh–Hadamard coefficients `a_u(T)` of a classified trace set, plus
/// the leakage-power metrics defined on them (paper §V.B):
///
/// * `LeakagePower(T) = Σ_{u=1}^{2ⁿ−1} a_u(T)²`
/// * `TotalLeakagePower = Σ_T LeakagePower(T)`
/// * single-bit vs multi-bit split by the Hamming weight of `u`.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageSpectrum {
    n_bits: usize,
    samples: usize,
    /// `coeffs[u][t]` = a_u at sample t.
    coeffs: Vec<Vec<f64>>,
}

impl LeakageSpectrum {
    /// Project per-class mean traces (`2ⁿ × samples`) onto the orthonormal
    /// Walsh–Hadamard basis, sample by sample.
    ///
    /// # Panics
    ///
    /// Panics if the number of classes is not a power of two, or the rows
    /// have unequal lengths.
    pub fn from_class_means(class_means: &[Vec<f64>]) -> Self {
        let num_classes = class_means.len();
        assert!(
            num_classes.is_power_of_two() && num_classes > 1,
            "need a power-of-two class count"
        );
        let n_bits = num_classes.trailing_zeros() as usize;
        let samples = class_means[0].len();
        assert!(
            class_means.iter().all(|m| m.len() == samples),
            "ragged class means"
        );
        let mut coeffs = vec![vec![0.0f64; samples]; num_classes];
        let mut column = vec![0.0f64; num_classes];
        for t in 0..samples {
            for (c, mean) in class_means.iter().enumerate() {
                column[c] = mean[t];
            }
            let a = spectrum_of(&column);
            for (u, &coef) in a.iter().enumerate() {
                coeffs[u][t] = coef;
            }
        }
        Self {
            n_bits,
            samples,
            coeffs,
        }
    }

    /// Number of unmasked input bits `n`.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Samples per trace.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of leakage sources including `u = 0` (the waveform average).
    pub fn num_sources(&self) -> usize {
        self.coeffs.len()
    }

    /// The coefficient `a_u(T)`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `t` is out of range.
    pub fn coefficient(&self, u: usize, t: usize) -> f64 {
        self.coeffs[u][t]
    }

    /// The waveform of one leakage source over all samples.
    pub fn source_waveform(&self, u: usize) -> &[f64] {
        &self.coeffs[u]
    }

    /// `LeakagePower(T) = Σ_{u≠0} a_u(T)²`.
    pub fn leakage_power(&self, t: usize) -> f64 {
        self.coeffs[1..].iter().map(|row| row[t] * row[t]).sum()
    }

    /// `LeakagePower(T)` for every sample — the curves of the paper's
    /// Figs. 6 and 8.
    pub fn leakage_power_series(&self) -> Vec<f64> {
        (0..self.samples).map(|t| self.leakage_power(t)).collect()
    }

    /// `TotalLeakagePower = Σ_T Σ_{u≠0} a_u(T)²` — the bars of Fig. 7.
    pub fn total_leakage_power(&self) -> f64 {
        (0..self.samples).map(|t| self.leakage_power(t)).sum()
    }

    /// Total leakage restricted to single-bit sources (`w_H(u) = 1`) —
    /// the "solidly filled" sub-bars of Fig. 7.
    pub fn total_single_bit(&self) -> f64 {
        self.total_filtered(|u| u.count_ones() == 1)
    }

    /// Total leakage restricted to multi-bit (glitch-type) sources
    /// (`w_H(u) > 1`) — the unfilled sub-bars of Fig. 7.
    pub fn total_multi_bit(&self) -> f64 {
        self.total_filtered(|u| u.count_ones() > 1)
    }

    /// Fraction of the total leakage carried by single-bit sources (the
    /// ≈14 % vs ≈0.5 % statistic of §V.B.2). Returns 0 when nothing leaks.
    pub fn single_bit_ratio(&self) -> f64 {
        let total = self.total_leakage_power();
        if total == 0.0 {
            0.0
        } else {
            self.total_single_bit() / total
        }
    }

    /// Total (window-summed) squared coefficient of one source `u`.
    pub fn source_total(&self, u: usize) -> f64 {
        self.coeffs[u].iter().map(|a| a * a).sum()
    }

    /// The sources ordered by descending window-summed energy, excluding
    /// `u = 0` — "which bit interactions leak most".
    pub fn dominant_sources(&self) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = (1..self.num_sources())
            .map(|u| (u, self.source_total(u)))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }

    fn total_filtered(&self, keep: impl Fn(u32) -> bool) -> f64 {
        self.coeffs
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(u, _)| keep(*u as u32))
            .map(|(_, row)| row.iter().map(|a| a * a).sum::<f64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Class means whose sample 0 is constant and sample 1 equals bit 0 of
    /// the class index.
    fn toy_means() -> Vec<Vec<f64>> {
        (0..16usize).map(|c| vec![5.0, (c & 1) as f64]).collect()
    }

    #[test]
    fn constant_sample_has_zero_leakage() {
        let s = LeakageSpectrum::from_class_means(&toy_means());
        assert!(s.leakage_power(0).abs() < 1e-20);
    }

    #[test]
    fn single_bit_leak_lands_on_the_right_source() {
        let s = LeakageSpectrum::from_class_means(&toy_means());
        // f(t)=t₀ has spectrum concentrated on u=0 and u=1.
        assert!(s.coefficient(1, 1).abs() > 0.1);
        for u in 2..16 {
            assert!(s.coefficient(u, 1).abs() < 1e-12, "u={u}");
        }
        assert!(s.total_single_bit() > 0.0);
        assert_eq!(s.total_multi_bit(), 0.0);
        assert!((s.single_bit_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pairwise_interaction_is_multi_bit() {
        // f(t) = t₁·t₂ (an AND glitch condition).
        let means: Vec<Vec<f64>> = (0..16usize)
            .map(|c| vec![(((c >> 1) & (c >> 2)) & 1) as f64])
            .collect();
        let s = LeakageSpectrum::from_class_means(&means);
        assert!(s.total_multi_bit() > 0.0);
        // AND of two bits projects on u ∈ {0, 2, 4, 6}: single-bit parts
        // exist (u=2, u=4), but the u=6 interaction term must be present.
        assert!(s.source_total(6) > 0.0);
    }

    #[test]
    fn parseval_total_equals_class_variance() {
        // Σ_{u≠0} a_u² = Σ_t f(t)² − (Σ_t f(t))²/2ⁿ… with orthonormal
        // scaling: Σ_u a_u² = Σ_t f², and a_0 = mean·2^{n/2}.
        let means: Vec<Vec<f64>> = (0..16usize).map(|c| vec![c as f64]).collect();
        let s = LeakageSpectrum::from_class_means(&means);
        let f: Vec<f64> = (0..16).map(|c| c as f64).collect();
        let total_sq: f64 = f.iter().map(|x| x * x).sum();
        let mean: f64 = f.iter().sum::<f64>() / 16.0;
        let variance_times_n = total_sq - 16.0 * mean * mean;
        assert!((s.total_leakage_power() - variance_times_n).abs() < 1e-9);
    }

    #[test]
    fn dominant_sources_are_sorted() {
        let s = LeakageSpectrum::from_class_means(&toy_means());
        let dom = s.dominant_sources();
        assert_eq!(dom.len(), 15);
        assert_eq!(dom[0].0, 1);
        for w in dom.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two_classes() {
        let _ = LeakageSpectrum::from_class_means(&vec![vec![0.0]; 3]);
    }
}
