//! Class-labelled trace storage and mean estimation.

use crate::stats::ExactSum;

/// Power traces grouped by the unmasked final value ("class") they were
/// captured under, following the paper's protocol of 16 balanced classes.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifiedTraces {
    num_classes: usize,
    samples: usize,
    traces: Vec<(usize, Vec<f64>)>,
}

impl ClassifiedTraces {
    /// Create an empty set for traces of `samples` points in
    /// `num_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(num_classes: usize, samples: usize) -> Self {
        assert!(num_classes > 0 && samples > 0);
        Self {
            num_classes,
            samples,
            traces: Vec::new(),
        }
    }

    /// Add one trace under its class label, keeping acquisition order
    /// (convergence studies slice prefixes of that order).
    ///
    /// # Panics
    ///
    /// Panics if the class is out of range or the trace has the wrong
    /// length.
    pub fn push(&mut self, class: usize, trace: Vec<f64>) {
        assert!(class < self.num_classes, "class {class} out of range");
        assert_eq!(trace.len(), self.samples, "trace length mismatch");
        self.traces.push((class, trace));
    }

    /// Number of traces stored.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether no traces are stored.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Samples per trace.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Traces in acquisition order as `(class, trace)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f64])> {
        self.traces.iter().map(|(c, t)| (*c, t.as_slice()))
    }

    /// How many traces each class holds.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for (c, _) in &self.traces {
            counts[*c] += 1;
        }
        counts
    }

    /// Per-class mean traces (`num_classes × samples`), using all stored
    /// traces. Classes with no traces yield all-zero means.
    pub fn class_means(&self) -> Vec<Vec<f64>> {
        self.class_means_of_first(self.traces.len())
    }

    /// Per-class mean traces computed from only the first `n` traces in
    /// acquisition order — the estimator the paper's Fig. 3 sweeps.
    ///
    /// Sums are accumulated exactly ([`ExactSum`]) and rounded once, so
    /// each mean is the correctly rounded quotient of the true sum — the
    /// same value the streaming accumulators in [`crate::online`] produce
    /// in exact mode, regardless of fold order or sharding. That shared
    /// rounding is what lets the conformance suite compare batch and
    /// streaming spectra bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn class_means_of_first(&self, n: usize) -> Vec<Vec<f64>> {
        assert!(n <= self.traces.len());
        let mut sums = vec![vec![ExactSum::new(); self.samples]; self.num_classes];
        let mut counts = vec![0usize; self.num_classes];
        for (c, t) in &self.traces[..n] {
            counts[*c] += 1;
            for (s, v) in sums[*c].iter_mut().zip(t) {
                s.add(*v);
            }
        }
        sums.iter()
            .zip(&counts)
            .map(|(row, &count)| {
                row.iter()
                    .map(|s| {
                        if count > 0 {
                            s.value() / count as f64
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// The grand mean trace over every stored trace (exact summation,
    /// like [`class_means`](Self::class_means)).
    pub fn grand_mean(&self) -> Vec<f64> {
        if self.traces.is_empty() {
            return vec![0.0f64; self.samples];
        }
        let mut sums = vec![ExactSum::new(); self.samples];
        for (_, t) in &self.traces {
            for (m, v) in sums.iter_mut().zip(t) {
                m.add(*v);
            }
        }
        let n = self.traces.len() as f64;
        sums.iter().map(|s| s.value() / n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_average_per_class() {
        let mut set = ClassifiedTraces::new(2, 3);
        set.push(0, vec![1.0, 0.0, 2.0]);
        set.push(0, vec![3.0, 0.0, 4.0]);
        set.push(1, vec![10.0, 10.0, 10.0]);
        let means = set.class_means();
        assert_eq!(means[0], vec![2.0, 0.0, 3.0]);
        assert_eq!(means[1], vec![10.0, 10.0, 10.0]);
        assert_eq!(set.class_counts(), vec![2, 1]);
    }

    #[test]
    fn prefix_means_use_only_early_traces() {
        let mut set = ClassifiedTraces::new(1, 1);
        set.push(0, vec![1.0]);
        set.push(0, vec![100.0]);
        assert_eq!(set.class_means_of_first(1)[0], vec![1.0]);
        assert_eq!(set.class_means_of_first(2)[0], vec![50.5]);
    }

    #[test]
    fn empty_class_is_zero() {
        let mut set = ClassifiedTraces::new(3, 2);
        set.push(1, vec![4.0, 4.0]);
        let means = set.class_means();
        assert_eq!(means[0], vec![0.0, 0.0]);
        assert_eq!(means[2], vec![0.0, 0.0]);
    }

    #[test]
    fn grand_mean_pools_everything() {
        let mut set = ClassifiedTraces::new(2, 1);
        set.push(0, vec![2.0]);
        set.push(1, vec![4.0]);
        assert_eq!(set.grand_mean(), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "class")]
    fn rejects_out_of_range_class() {
        let mut set = ClassifiedTraces::new(2, 1);
        set.push(2, vec![0.0]);
    }

    #[test]
    fn means_survive_adversarial_ordering() {
        // Large/small cancellation that naive left-to-right summation
        // gets wrong: 1e16 + 1 collapses to 1e16, so the two unit
        // contributions vanish and the naive mean is 0.25 instead of 0.5.
        let mut set = ClassifiedTraces::new(1, 1);
        for v in [1e16, 1.0, -1e16, 1.0] {
            set.push(0, vec![v]);
        }
        assert_eq!(set.class_means()[0], vec![0.5]);
        assert_eq!(set.grand_mean(), vec![0.5]);
    }
}
