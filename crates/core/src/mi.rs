//! Histogram-based mutual information between trace samples and the
//! class label — the information-theoretic upper bound on what any
//! first-order attack can extract from one sample.

use crate::ClassifiedTraces;

/// Per-sample mutual information `I(X_T; class)` in bits, estimated with
/// an equal-width histogram of `bins` cells per sample.
///
/// # Panics
///
/// Panics if `set` is empty or `bins < 2`.
///
/// # Example
///
/// ```
/// use leakage_core::{mi::mutual_information, ClassifiedTraces};
///
/// let mut set = ClassifiedTraces::new(2, 1);
/// for _ in 0..64 {
///     set.push(0, vec![0.0]);
///     set.push(1, vec![1.0]);
/// }
/// let mi = mutual_information(&set, 4);
/// assert!((mi[0] - 1.0).abs() < 1e-9); // one full bit
/// ```
pub fn mutual_information(set: &ClassifiedTraces, bins: usize) -> Vec<f64> {
    assert!(!set.is_empty());
    assert!(bins >= 2);
    let samples = set.samples();
    let num_classes = set.num_classes();
    let n = set.len() as f64;
    (0..samples)
        .map(|s| {
            let values: Vec<(usize, f64)> = set.iter().map(|(c, t)| (c, t[s])).collect();
            let lo = values.iter().map(|&(_, x)| x).fold(f64::INFINITY, f64::min);
            let hi = values
                .iter()
                .map(|&(_, x)| x)
                .fold(f64::NEG_INFINITY, f64::max);
            if hi <= lo {
                return 0.0; // constant sample carries no information
            }
            let width = (hi - lo) / bins as f64;
            let mut joint = vec![vec![0f64; bins]; num_classes];
            for &(c, x) in &values {
                let b = (((x - lo) / width) as usize).min(bins - 1);
                joint[c][b] += 1.0;
            }
            let mut mi = 0.0;
            for (c, row) in joint.iter().enumerate() {
                let p_c: f64 = set.class_counts()[c] as f64 / n;
                for (b, &count) in row.iter().enumerate() {
                    if count == 0.0 {
                        continue;
                    }
                    let p_xc = count / n;
                    let p_x: f64 = joint.iter().map(|r| r[b]).sum::<f64>() / n;
                    mi += p_xc * (p_xc / (p_x * p_c)).log2();
                }
            }
            mi.max(0.0)
        })
        .collect()
}

/// The maximum per-sample MI over the window — a scalar "extractable
/// information" figure for a trace set.
pub fn peak_mutual_information(set: &ClassifiedTraces, bins: usize) -> f64 {
    mutual_information(set, bins)
        .into_iter()
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn deterministic_class_sample_carries_log2_classes_bits() {
        let mut set = ClassifiedTraces::new(4, 1);
        for c in 0..4usize {
            for _ in 0..32 {
                set.push(c, vec![c as f64]);
            }
        }
        let mi = mutual_information(&set, 8);
        assert!((mi[0] - 2.0).abs() < 1e-9, "mi {}", mi[0]);
    }

    #[test]
    fn independent_sample_carries_nothing() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut set = ClassifiedTraces::new(4, 1);
        for i in 0..4096usize {
            set.push(i % 4, vec![rng.gen::<f64>()]);
        }
        let mi = mutual_information(&set, 4);
        assert!(mi[0] < 0.01, "mi {}", mi[0]);
    }

    #[test]
    fn constant_sample_is_zero() {
        let mut set = ClassifiedTraces::new(2, 2);
        set.push(0, vec![5.0, 0.0]);
        set.push(1, vec![5.0, 1.0]);
        let mi = mutual_information(&set, 4);
        assert_eq!(mi[0], 0.0);
        assert!(mi[1] > 0.9);
        assert!((peak_mutual_information(&set, 4) - mi[1]).abs() < 1e-12);
    }

    #[test]
    fn partial_leakage_sits_between_zero_and_full() {
        // Class bit + strong noise → 0 < MI < 1.
        let mut rng = SmallRng::seed_from_u64(13);
        let mut set = ClassifiedTraces::new(2, 1);
        for i in 0..8192usize {
            let c = i % 2;
            set.push(c, vec![c as f64 + 3.0 * rng.gen::<f64>()]);
        }
        let mi = mutual_information(&set, 16);
        assert!(mi[0] > 0.02 && mi[0] < 0.9, "mi {}", mi[0]);
    }
}
