//! Walsh–Hadamard spectral leakage analysis — the core contribution of
//! *"Leakage Power Analysis in Different S-Box Masking Protection Schemes"*
//! (Bahrami et al., DATE 2022).
//!
//! The methodology projects per-class mean power traces onto the
//! orthonormal Fourier basis over `F₂ⁿ`:
//!
//! * `ψ_u(t) = 2^{−n/2} · (−1)^{u·t}` — [`psi`], computed in bulk by the
//!   fast [`wht`] transform;
//! * `a_u(T) = 2^{−n/2} Σ_t f_T(t) (−1)^{u·t}` — the spectral coefficient of
//!   leakage source `u` at sample time `T` ([`LeakageSpectrum`]);
//! * `LeakagePower(T) = Σ_{u≠0} a_u(T)²` and its sum over the window,
//!   split into **single-bit** sources (`w_H(u) = 1`, classic demasking)
//!   and **multi-bit** sources (`w_H(u) > 1`, glitch-type bit
//!   interactions).
//!
//! The crate also ships the supporting statistics used around the paper:
//! class-mean estimation ([`ClassifiedTraces`]), coefficient convergence
//! versus trace count ([`convergence`], paper Fig. 3), the Theorem-1
//! LSB-parity analysis ([`theorem1`]), and Welch's t-test
//! ([`ttest`], the conventional TVLA tool the spectral method refines).
//!
//! # Example
//!
//! ```
//! use leakage_core::{ClassifiedTraces, LeakageSpectrum};
//!
//! // Two-sample traces for a 2-bit (4-class) toy target whose power at
//! // sample 1 equals the unmasked value — a gross first-order leak.
//! let mut set = ClassifiedTraces::new(4, 2);
//! for class in 0..4usize {
//!     set.push(class, vec![1.0, class as f64]);
//! }
//! let spectrum = LeakageSpectrum::from_class_means(&set.class_means());
//! assert_eq!(spectrum.leakage_power(0), 0.0); // constant sample: no leak
//! assert!(spectrum.leakage_power(1) > 0.0);   // value-dependent sample
//! assert!(spectrum.total_single_bit() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
mod classes;
pub mod comoment;
pub mod convergence;
pub mod metrics;
pub mod mi;
pub mod online;
mod spectrum;
pub mod stats;
pub mod theorem1;
pub mod ttest;
pub mod wht;

pub use classes::ClassifiedTraces;
pub use comoment::CoMomentAccumulator;
pub use online::{ClassAccumulator, Merge, SpectrumAccumulator, SpectrumStream, SumMode};
pub use spectrum::LeakageSpectrum;
pub use wht::{psi, spectrum_of, walsh_hadamard};
