//! Classical side-channel evaluation metrics that complement the
//! Walsh–Hadamard decomposition: SNR, NICV, and the confusion coefficient
//! of Fei et al. (the paper's citation [18]) that makes the S-box "the
//! most leaking function in symmetric cryptography".

use crate::ClassifiedTraces;

/// Per-sample signal-to-noise ratio: variance of the class means over the
/// mean of the within-class variances (Mangard's SNR).
///
/// Samples where no trace varies at all yield an SNR of 0.
///
/// # Panics
///
/// Panics if `set` is empty.
pub fn snr(set: &ClassifiedTraces) -> Vec<f64> {
    assert!(!set.is_empty());
    let samples = set.samples();
    let num_classes = set.num_classes();
    let means = set.class_means();
    let counts = set.class_counts();
    let mut within = vec![vec![0.0f64; samples]; num_classes];
    for (class, trace) in set.iter() {
        for (s, &x) in trace.iter().enumerate() {
            let d = x - means[class][s];
            within[class][s] += d * d;
        }
    }
    (0..samples)
        .map(|s| {
            let grand: f64 = (0..num_classes)
                .map(|c| means[c][s] * counts[c] as f64)
                .sum::<f64>()
                / set.len() as f64;
            let signal: f64 = (0..num_classes)
                .map(|c| {
                    let d = means[c][s] - grand;
                    counts[c] as f64 * d * d
                })
                .sum::<f64>()
                / set.len() as f64;
            let noise: f64 = (0..num_classes).map(|c| within[c][s]).sum::<f64>() / set.len() as f64;
            if noise == 0.0 {
                // Noise-free: either a constant sample (no signal) or a
                // perfectly class-determined one (infinite SNR).
                if signal == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                signal / noise
            }
        })
        .collect()
}

/// Per-sample Normalized Inter-Class Variance:
/// `Var(E[X|class]) / Var(X)` ∈ [0, 1]. NICV = 1 means the sample is fully
/// explained by the class; 0 means it carries no class information.
///
/// # Panics
///
/// Panics if `set` is empty.
pub fn nicv(set: &ClassifiedTraces) -> Vec<f64> {
    assert!(!set.is_empty());
    let samples = set.samples();
    let means = set.class_means();
    let counts = set.class_counts();
    let n = set.len() as f64;
    (0..samples)
        .map(|s| {
            let grand: f64 = set.iter().map(|(_, t)| t[s]).sum::<f64>() / n;
            let total_var: f64 = set
                .iter()
                .map(|(_, t)| {
                    let d = t[s] - grand;
                    d * d
                })
                .sum::<f64>()
                / n;
            if total_var == 0.0 {
                return 0.0;
            }
            let between: f64 = means
                .iter()
                .zip(&counts)
                .map(|(m, &c)| {
                    let d = m[s] - grand;
                    c as f64 * d * d
                })
                .sum::<f64>()
                / n;
            between / total_var
        })
        .collect()
}

/// The confusion coefficient `κ(k_a, k_b)` of Fei–Ding–Lao–Zhang for a
/// single-bit leakage of an S-box: the probability, over uniform
/// plaintexts, that the predicted bit differs between two key guesses.
///
/// A contrasted confusion-coefficient spectrum is what makes an S-box a
/// rewarding CPA target (paper §IV).
///
/// # Panics
///
/// Panics if a key is not a nibble or `bit >= 4`.
pub fn confusion_coefficient(sbox: &[u8; 16], key_a: u8, key_b: u8, bit: usize) -> f64 {
    assert!(key_a < 16 && key_b < 16 && bit < 4);
    let differing = (0..16u8)
        .filter(|&p| {
            let va = (sbox[usize::from(p ^ key_a)] >> bit) & 1;
            let vb = (sbox[usize::from(p ^ key_b)] >> bit) & 1;
            va != vb
        })
        .count();
    differing as f64 / 16.0
}

/// The full confusion matrix for one output bit (16 × 16, symmetric,
/// zero diagonal).
pub fn confusion_matrix(sbox: &[u8; 16], bit: usize) -> Vec<Vec<f64>> {
    (0..16u8)
        .map(|a| {
            (0..16u8)
                .map(|b| confusion_coefficient(sbox, a, b, bit))
                .collect()
        })
        .collect()
}

/// Mean and variance of the off-diagonal confusion coefficients — the
/// "contrast" statistic: higher variance ⇒ easier key distinguishing.
pub fn confusion_contrast(sbox: &[u8; 16], bit: usize) -> (f64, f64) {
    let matrix = confusion_matrix(sbox, bit);
    let off: Vec<f64> = (0..16)
        .flat_map(|a| (0..16).filter(move |&b| a != b).map(move |b| (a, b)))
        .map(|(a, b)| matrix[a][b])
        .collect();
    let mean = off.iter().sum::<f64>() / off.len() as f64;
    let var = off.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / off.len() as f64;
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PRESENT_SBOX: [u8; 16] = [
        0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
    ];

    fn toy_set() -> ClassifiedTraces {
        // Sample 0: class-determined; sample 1: pure noise-like alternation.
        let mut set = ClassifiedTraces::new(4, 2);
        for class in 0..4usize {
            for rep in 0..4usize {
                set.push(class, vec![class as f64, (rep % 2) as f64]);
            }
        }
        set
    }

    #[test]
    fn snr_separates_signal_from_noise_samples() {
        let s = snr(&toy_set());
        assert!(s[0] > 100.0, "deterministic class sample: SNR {}", s[0]);
        assert!(s[1] < 1e-9, "class-independent sample: SNR {}", s[1]);
    }

    #[test]
    fn nicv_is_bounded_and_ordered_like_snr() {
        let v = nicv(&toy_set());
        assert!(v.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        assert!(v[0] > 0.99);
        assert!(v[1] < 1e-9);
    }

    #[test]
    fn confusion_is_symmetric_with_zero_diagonal() {
        for bit in 0..4 {
            let m = confusion_matrix(&PRESENT_SBOX, bit);
            for (a, row) in m.iter().enumerate() {
                assert_eq!(row[a], 0.0);
                for (b, &v) in row.iter().enumerate() {
                    assert_eq!(v, m[b][a]);
                }
            }
        }
    }

    #[test]
    fn present_sbox_has_contrasted_confusion() {
        // The paper calls the PRESENT S-box's confusion "contrasted":
        // nonzero variance of the off-diagonal coefficients around ~0.5.
        for bit in 0..4 {
            let (mean, var) = confusion_contrast(&PRESENT_SBOX, bit);
            assert!((0.3..0.7).contains(&mean), "bit {bit}: mean {mean}");
            assert!(var > 0.0, "bit {bit}: flat confusion");
        }
    }

    #[test]
    fn identity_sbox_is_less_contrasted_than_present() {
        let identity: [u8; 16] = std::array::from_fn(|i| i as u8);
        let (_, var_id) = confusion_contrast(&identity, 0);
        let (_, var_present) = confusion_contrast(&PRESENT_SBOX, 0);
        assert!(var_present <= var_id,
            "a cryptographically strong S-box flattens the worst-case confusion: {var_present} vs {var_id}");
    }
}
