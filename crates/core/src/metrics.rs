//! Classical side-channel evaluation metrics that complement the
//! Walsh–Hadamard decomposition: SNR, NICV, and the confusion coefficient
//! of Fei et al. (the paper's citation [18]) that makes the S-box "the
//! most leaking function in symmetric cryptography".

use crate::stats::CompensatedSum;
use crate::ClassifiedTraces;

/// Per-sample signal-to-noise ratio: variance of the class means over the
/// mean of the within-class variances (Mangard's SNR).
///
/// Class means come from the exact batch estimator
/// ([`ClassifiedTraces::class_means`]) and the within-class squared
/// deviations are accumulated with compensated summation, so a handful
/// of large-magnitude samples cannot silently cancel the contribution of
/// the small ones (see the `metrics_survive_adversarial_ordering` test).
///
/// Samples where no trace varies at all yield an SNR of 0.
///
/// # Panics
///
/// Panics if `set` is empty.
pub fn snr(set: &ClassifiedTraces) -> Vec<f64> {
    assert!(!set.is_empty());
    let samples = set.samples();
    let num_classes = set.num_classes();
    let means = set.class_means();
    let counts = set.class_counts();
    let mut within = vec![vec![CompensatedSum::new(); samples]; num_classes];
    for (class, trace) in set.iter() {
        for (s, &x) in trace.iter().enumerate() {
            let d = x - means[class][s];
            within[class][s].add(d * d);
        }
    }
    (0..samples)
        .map(|s| {
            let mut grand = CompensatedSum::new();
            for c in 0..num_classes {
                grand.add(means[c][s] * counts[c] as f64);
            }
            let grand = grand.value() / set.len() as f64;
            let mut signal = CompensatedSum::new();
            for c in 0..num_classes {
                let d = means[c][s] - grand;
                signal.add(counts[c] as f64 * d * d);
            }
            let signal = signal.value() / set.len() as f64;
            let mut noise = CompensatedSum::new();
            for class in within.iter().take(num_classes) {
                noise.add(class[s].value());
            }
            let noise = noise.value() / set.len() as f64;
            if noise == 0.0 {
                // Noise-free: either a constant sample (no signal) or a
                // perfectly class-determined one (infinite SNR).
                if signal == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                signal / noise
            }
        })
        .collect()
}

/// Per-sample Normalized Inter-Class Variance:
/// `Var(E[X|class]) / Var(X)` ∈ [0, 1]. NICV = 1 means the sample is fully
/// explained by the class; 0 means it carries no class information.
///
/// Like [`snr`], all single-pass sums run through the shared compensated
/// helper so adversarial sample orderings do not corrupt the variances.
///
/// # Panics
///
/// Panics if `set` is empty.
pub fn nicv(set: &ClassifiedTraces) -> Vec<f64> {
    assert!(!set.is_empty());
    let samples = set.samples();
    let means = set.class_means();
    let counts = set.class_counts();
    let grand_means = set.grand_mean();
    let n = set.len() as f64;
    (0..samples)
        .map(|s| {
            let grand = grand_means[s];
            let mut total = CompensatedSum::new();
            for (_, t) in set.iter() {
                let d = t[s] - grand;
                total.add(d * d);
            }
            let total_var = total.value() / n;
            if total_var == 0.0 {
                return 0.0;
            }
            let mut between = CompensatedSum::new();
            for (m, &c) in means.iter().zip(&counts) {
                let d = m[s] - grand;
                between.add(c as f64 * d * d);
            }
            between.value() / n / total_var
        })
        .collect()
}

/// The confusion coefficient `κ(k_a, k_b)` of Fei–Ding–Lao–Zhang for a
/// single-bit leakage of an S-box: the probability, over uniform
/// plaintexts, that the predicted bit differs between two key guesses.
///
/// A contrasted confusion-coefficient spectrum is what makes an S-box a
/// rewarding CPA target (paper §IV).
///
/// # Panics
///
/// Panics if a key is not a nibble or `bit >= 4`.
pub fn confusion_coefficient(sbox: &[u8; 16], key_a: u8, key_b: u8, bit: usize) -> f64 {
    assert!(key_a < 16 && key_b < 16 && bit < 4);
    let differing = (0..16u8)
        .filter(|&p| {
            let va = (sbox[usize::from(p ^ key_a)] >> bit) & 1;
            let vb = (sbox[usize::from(p ^ key_b)] >> bit) & 1;
            va != vb
        })
        .count();
    differing as f64 / 16.0
}

/// The full confusion matrix for one output bit (16 × 16, symmetric,
/// zero diagonal).
pub fn confusion_matrix(sbox: &[u8; 16], bit: usize) -> Vec<Vec<f64>> {
    (0..16u8)
        .map(|a| {
            (0..16u8)
                .map(|b| confusion_coefficient(sbox, a, b, bit))
                .collect()
        })
        .collect()
}

/// Mean and variance of the off-diagonal confusion coefficients — the
/// "contrast" statistic: higher variance ⇒ easier key distinguishing.
pub fn confusion_contrast(sbox: &[u8; 16], bit: usize) -> (f64, f64) {
    let matrix = confusion_matrix(sbox, bit);
    let off: Vec<f64> = (0..16)
        .flat_map(|a| (0..16).filter(move |&b| a != b).map(move |b| (a, b)))
        .map(|(a, b)| matrix[a][b])
        .collect();
    let mean = off.iter().sum::<f64>() / off.len() as f64;
    let var = off.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / off.len() as f64;
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PRESENT_SBOX: [u8; 16] = [
        0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
    ];

    fn toy_set() -> ClassifiedTraces {
        // Sample 0: class-determined; sample 1: pure noise-like alternation.
        let mut set = ClassifiedTraces::new(4, 2);
        for class in 0..4usize {
            for rep in 0..4usize {
                set.push(class, vec![class as f64, (rep % 2) as f64]);
            }
        }
        set
    }

    #[test]
    fn snr_separates_signal_from_noise_samples() {
        let s = snr(&toy_set());
        assert!(s[0] > 100.0, "deterministic class sample: SNR {}", s[0]);
        assert!(s[1] < 1e-9, "class-independent sample: SNR {}", s[1]);
    }

    #[test]
    fn nicv_is_bounded_and_ordered_like_snr() {
        let v = nicv(&toy_set());
        assert!(v.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        assert!(v[0] > 0.99);
        assert!(v[1] < 1e-9);
    }

    #[test]
    fn metrics_survive_adversarial_ordering() {
        // Two classes, one sample. Class 0 hides its unit-scale signal
        // behind ±1e16 pairs ordered so a naive running sum absorbs and
        // loses the unit-scale values; class 1 is unit-scale only. Naive
        // class means/variances get class 0 wrong, dragging SNR and NICV
        // with them. The compensated pipeline must match an exact
        // two-pass reference computed with ExactSum.
        let mut set = ClassifiedTraces::new(2, 1);
        let class0 = [1e16, 3.0, -1e16, -1.0, 1e16, 1.0, -1e16, -1.0];
        let class1 = [2.0, -2.0, 4.0, 0.0, 3.0, -1.0, 2.0, 0.0];
        for v in class0 {
            set.push(0, vec![v]);
        }
        for v in class1 {
            set.push(1, vec![v]);
        }

        // Exact two-pass reference, entirely in ExactSum arithmetic.
        let exact_mean = |xs: &[f64]| {
            let mut s = crate::stats::ExactSum::new();
            for &x in xs {
                s.add(x);
            }
            s.value() / xs.len() as f64
        };
        let m0 = exact_mean(&class0);
        let m1 = exact_mean(&class1);
        assert_eq!(m0, 0.25); // 2.0 / 8 — naive order-sensitive sum gives 0.125
        let exact_sq = |xs: &[f64], m: f64| {
            let mut s = crate::stats::ExactSum::new();
            for &x in xs {
                s.add((x - m) * (x - m));
            }
            s.value()
        };
        let n = (class0.len() + class1.len()) as f64;
        let grand = (m0 * class0.len() as f64 + m1 * class1.len() as f64) / n;
        let noise = (exact_sq(&class0, m0) + exact_sq(&class1, m1)) / n;
        let signal = (class0.len() as f64 * (m0 - grand) * (m0 - grand)
            + class1.len() as f64 * (m1 - grand) * (m1 - grand))
            / n;

        let got_snr = snr(&set)[0];
        let want_snr = signal / noise;
        assert!(
            (got_snr - want_snr).abs() <= 1e-12 * want_snr.abs(),
            "snr {got_snr} vs exact {want_snr}"
        );

        let got_nicv = nicv(&set)[0];
        let total = {
            let all: Vec<f64> = class0.iter().chain(&class1).copied().collect();
            exact_sq(&all, grand) / n
        };
        let want_nicv = signal / total;
        assert!(
            (got_nicv - want_nicv).abs() <= 1e-12 * want_nicv.abs(),
            "nicv {got_nicv} vs exact {want_nicv}"
        );
        assert!((0.0..=1.0).contains(&got_nicv));
    }

    #[test]
    fn confusion_is_symmetric_with_zero_diagonal() {
        for bit in 0..4 {
            let m = confusion_matrix(&PRESENT_SBOX, bit);
            for (a, row) in m.iter().enumerate() {
                assert_eq!(row[a], 0.0);
                for (b, &v) in row.iter().enumerate() {
                    assert_eq!(v, m[b][a]);
                }
            }
        }
    }

    #[test]
    fn present_sbox_has_contrasted_confusion() {
        // The paper calls the PRESENT S-box's confusion "contrasted":
        // nonzero variance of the off-diagonal coefficients around ~0.5.
        for bit in 0..4 {
            let (mean, var) = confusion_contrast(&PRESENT_SBOX, bit);
            assert!((0.3..0.7).contains(&mean), "bit {bit}: mean {mean}");
            assert!(var > 0.0, "bit {bit}: flat confusion");
        }
    }

    #[test]
    fn identity_sbox_is_less_contrasted_than_present() {
        let identity: [u8; 16] = std::array::from_fn(|i| i as u8);
        let (_, var_id) = confusion_contrast(&identity, 0);
        let (_, var_present) = confusion_contrast(&PRESENT_SBOX, 0);
        assert!(var_present <= var_id,
            "a cryptographically strong S-box flattens the worst-case confusion: {var_present} vs {var_id}");
    }
}
