//! Stable content checksums (FNV-1a, 64-bit) shared by the durability
//! layer: campaign cache keys, `SCTR` store records, and `SCKP`
//! checkpoint frames all use the same hash.
//!
//! Not cryptographic — it only needs to be stable across runs and
//! platforms (unlike `std::hash::DefaultHasher`, whose output is
//! explicitly unspecified between releases) so that store files written
//! by one build are found — and verified — by the next.

/// Incremental FNV-1a/64 hasher over explicitly-framed fields.
#[derive(Debug, Clone)]
pub struct Digest {
    state: u64,
}

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self {
            state: OFFSET_BASIS,
        }
    }

    /// Absorb raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
        self
    }

    /// Absorb a `u64` (little-endian framing).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorb an `f64` by bit pattern (`-0.0` and `0.0` hash differently;
    /// campaign configs use literal constants, so that is acceptable).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Absorb a string, length-prefixed so field boundaries cannot alias.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot digest over a byte slice (used for store checksums).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.bytes(bytes);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a/64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn framing_prevents_field_aliasing() {
        let mut a = Digest::new();
        a.str("ab").str("c");
        let mut b = Digest::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn floats_hash_by_bit_pattern() {
        let mut a = Digest::new();
        a.f64(1.5);
        let mut b = Digest::new();
        b.f64(1.5);
        let mut c = Digest::new();
        c.f64(1.5000001);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), c.finish());
    }
}
