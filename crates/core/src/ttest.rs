//! Welch's t-test (TVLA) — the conventional leakage-assessment tool the
//! paper's spectral method complements.
//!
//! The fixed-vs-random Test Vector Leakage Assessment computes, per sample,
//! `t = (μ_A − μ_B) / √(s²_A/n_A + s²_B/n_B)`; |t| > 4.5 is the usual
//! "leaks" threshold.

use crate::stats::{mean, sample_variance};

/// The customary TVLA pass/fail threshold on |t|.
pub const TVLA_THRESHOLD: f64 = 4.5;

/// Per-sample Welch t statistics between two groups of traces.
///
/// Returns 0.0 at samples where both groups have zero variance (nothing to
/// distinguish).
///
/// # Panics
///
/// Panics if either group is empty or trace lengths are inconsistent.
///
/// # Example
///
/// ```
/// use leakage_core::ttest::{welch_t, TVLA_THRESHOLD};
///
/// let fixed: Vec<Vec<f64>> = (0..50).map(|i| vec![1.0 + 0.001 * i as f64]).collect();
/// let random: Vec<Vec<f64>> = (0..50).map(|i| vec![3.0 - 0.001 * i as f64]).collect();
/// let t = welch_t(&fixed, &random);
/// assert!(t[0].abs() > TVLA_THRESHOLD);
/// ```
pub fn welch_t(group_a: &[Vec<f64>], group_b: &[Vec<f64>]) -> Vec<f64> {
    assert!(!group_a.is_empty() && !group_b.is_empty());
    let samples = group_a[0].len();
    assert!(
        group_a.iter().chain(group_b).all(|t| t.len() == samples),
        "inconsistent trace lengths"
    );
    let na = group_a.len() as f64;
    let nb = group_b.len() as f64;
    (0..samples)
        .map(|s| {
            let xa: Vec<f64> = group_a.iter().map(|t| t[s]).collect();
            let xb: Vec<f64> = group_b.iter().map(|t| t[s]).collect();
            let denom = (sample_variance(&xa) / na + sample_variance(&xb) / nb).sqrt();
            if denom == 0.0 {
                0.0
            } else {
                (mean(&xa) - mean(&xb)) / denom
            }
        })
        .collect()
}

/// Per-sample Welch t statistics from two streaming accumulators
/// instead of materialized trace groups.
///
/// This is the online counterpart of [`welch_t`]: fold each group into a
/// [`ClassAccumulator`](crate::online::ClassAccumulator) (one trace at a
/// time, constant memory) and compute the identical statistic from the
/// accumulated moments. Uses the unbiased sample variance
/// `M2 / (n − 1)`, matching the batch path.
///
/// # Panics
///
/// Panics if either group holds fewer than two traces or the sample
/// counts differ.
pub fn welch_t_from_moments(
    group_a: &crate::online::ClassAccumulator,
    group_b: &crate::online::ClassAccumulator,
) -> Vec<f64> {
    assert!(
        group_a.count() >= 2 && group_b.count() >= 2,
        "each group needs at least two traces"
    );
    assert_eq!(
        group_a.samples(),
        group_b.samples(),
        "inconsistent trace lengths"
    );
    let na = group_a.count() as f64;
    let nb = group_b.count() as f64;
    // ClassAccumulator::variance is the population variance (M2 / n);
    // rescale to the unbiased estimator the batch path uses.
    let (ma, va) = (group_a.mean(), group_a.variance());
    let (mb, vb) = (group_b.mean(), group_b.variance());
    ma.iter()
        .zip(&va)
        .zip(mb.iter().zip(&vb))
        .map(|((&mean_a, &var_a), (&mean_b, &var_b))| {
            let sa = var_a * na / (na - 1.0);
            let sb = var_b * nb / (nb - 1.0);
            let denom = (sa / na + sb / nb).sqrt();
            if denom == 0.0 {
                0.0
            } else {
                (mean_a - mean_b) / denom
            }
        })
        .collect()
}

/// The largest |t| across samples — the single TVLA verdict number.
pub fn max_abs_t(t_series: &[f64]) -> f64 {
    t_series.iter().fold(0.0, |m, t| m.max(t.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn noisy_group(rng: &mut SmallRng, n: usize, mean: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| vec![mean + rng.gen::<f64>() - 0.5])
            .collect()
    }

    #[test]
    fn identical_distributions_pass() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = noisy_group(&mut rng, 200, 1.0);
        let b = noisy_group(&mut rng, 200, 1.0);
        let t = welch_t(&a, &b);
        assert!(max_abs_t(&t) < TVLA_THRESHOLD, "t = {:?}", t);
    }

    #[test]
    fn shifted_distributions_fail() {
        let mut rng = SmallRng::seed_from_u64(4);
        let a = noisy_group(&mut rng, 200, 1.0);
        let b = noisy_group(&mut rng, 200, 1.5);
        assert!(max_abs_t(&welch_t(&a, &b)) > TVLA_THRESHOLD);
    }

    #[test]
    fn zero_variance_yields_zero_t() {
        let a = vec![vec![2.0]; 10];
        let b = vec![vec![2.0]; 10];
        assert_eq!(welch_t(&a, &b), vec![0.0]);
    }

    #[test]
    fn moments_path_matches_batch() {
        use crate::online::{ClassAccumulator, SumMode};
        let mut rng = SmallRng::seed_from_u64(6);
        let a = noisy_group(&mut rng, 80, 0.0);
        let b = noisy_group(&mut rng, 120, 0.4);
        let batch = welch_t(&a, &b);
        for mode in [SumMode::Welford, SumMode::Exact] {
            let mut acc_a = ClassAccumulator::new(1, mode);
            let mut acc_b = ClassAccumulator::new(1, mode);
            for t in &a {
                acc_a.fold(t);
            }
            for t in &b {
                acc_b.fold(t);
            }
            let online = welch_t_from_moments(&acc_a, &acc_b);
            assert_eq!(online.len(), batch.len());
            assert!((online[0] - batch[0]).abs() < 1e-9, "mode {mode:?}");
        }
    }

    #[test]
    fn t_is_antisymmetric() {
        let mut rng = SmallRng::seed_from_u64(5);
        let a = noisy_group(&mut rng, 50, 0.0);
        let b = noisy_group(&mut rng, 50, 1.0);
        let tab = welch_t(&a, &b);
        let tba = welch_t(&b, &a);
        assert!((tab[0] + tba[0]).abs() < 1e-12);
    }
}
