//! Welch's t-test (TVLA) — the conventional leakage-assessment tool the
//! paper's spectral method complements.
//!
//! The fixed-vs-random Test Vector Leakage Assessment computes, per sample,
//! `t = (μ_A − μ_B) / √(s²_A/n_A + s²_B/n_B)`; |t| > 4.5 is the usual
//! "leaks" threshold.

use crate::stats::{mean, sample_variance};

/// The customary TVLA pass/fail threshold on |t|.
pub const TVLA_THRESHOLD: f64 = 4.5;

/// Per-sample Welch t statistics between two groups of traces.
///
/// Returns 0.0 at samples where both groups have zero variance (nothing to
/// distinguish).
///
/// # Panics
///
/// Panics if either group is empty or trace lengths are inconsistent.
///
/// # Example
///
/// ```
/// use leakage_core::ttest::{welch_t, TVLA_THRESHOLD};
///
/// let fixed: Vec<Vec<f64>> = (0..50).map(|i| vec![1.0 + 0.001 * i as f64]).collect();
/// let random: Vec<Vec<f64>> = (0..50).map(|i| vec![3.0 - 0.001 * i as f64]).collect();
/// let t = welch_t(&fixed, &random);
/// assert!(t[0].abs() > TVLA_THRESHOLD);
/// ```
pub fn welch_t(group_a: &[Vec<f64>], group_b: &[Vec<f64>]) -> Vec<f64> {
    assert!(!group_a.is_empty() && !group_b.is_empty());
    let samples = group_a[0].len();
    assert!(
        group_a.iter().chain(group_b).all(|t| t.len() == samples),
        "inconsistent trace lengths"
    );
    let na = group_a.len() as f64;
    let nb = group_b.len() as f64;
    (0..samples)
        .map(|s| {
            let xa: Vec<f64> = group_a.iter().map(|t| t[s]).collect();
            let xb: Vec<f64> = group_b.iter().map(|t| t[s]).collect();
            let denom = (sample_variance(&xa) / na + sample_variance(&xb) / nb).sqrt();
            if denom == 0.0 {
                0.0
            } else {
                (mean(&xa) - mean(&xb)) / denom
            }
        })
        .collect()
}

/// The largest |t| across samples — the single TVLA verdict number.
pub fn max_abs_t(t_series: &[f64]) -> f64 {
    t_series.iter().fold(0.0, |m, t| m.max(t.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn noisy_group(rng: &mut SmallRng, n: usize, mean: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| vec![mean + rng.gen::<f64>() - 0.5])
            .collect()
    }

    #[test]
    fn identical_distributions_pass() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = noisy_group(&mut rng, 200, 1.0);
        let b = noisy_group(&mut rng, 200, 1.0);
        let t = welch_t(&a, &b);
        assert!(max_abs_t(&t) < TVLA_THRESHOLD, "t = {:?}", t);
    }

    #[test]
    fn shifted_distributions_fail() {
        let mut rng = SmallRng::seed_from_u64(4);
        let a = noisy_group(&mut rng, 200, 1.0);
        let b = noisy_group(&mut rng, 200, 1.5);
        assert!(max_abs_t(&welch_t(&a, &b)) > TVLA_THRESHOLD);
    }

    #[test]
    fn zero_variance_yields_zero_t() {
        let a = vec![vec![2.0]; 10];
        let b = vec![vec![2.0]; 10];
        assert_eq!(welch_t(&a, &b), vec![0.0]);
    }

    #[test]
    fn t_is_antisymmetric() {
        let mut rng = SmallRng::seed_from_u64(5);
        let a = noisy_group(&mut rng, 50, 0.0);
        let b = noisy_group(&mut rng, 50, 1.0);
        let tab = welch_t(&a, &b);
        let tba = welch_t(&b, &a);
        assert!((tab[0] + tba[0]).abs() < 1e-12);
    }
}
