//! Mergeable online co-moment state: per-channel × per-sample cross
//! statistics between hypothesis values and trace samples.
//!
//! This is the statistical core of the streaming attack engine. A CPA,
//! DPA, or MLPA distinguisher turns each trace's plaintext into a vector
//! of *hypothesis channels* (one per key guess × model component); this
//! accumulator folds each `(hypothesis, trace)` pair once and maintains
//! everything needed to extract Pearson correlations and
//! difference-of-means for every `(channel, sample)` cell afterwards:
//!
//! * marginal trace moments (`Σx`, `Σx²` per sample),
//! * marginal hypothesis moments (`Σh`, `Σh²` per channel),
//! * cross moments (`Σhx` per channel × sample).
//!
//! Both summation modes of the spectral pipeline are supported with the
//! same contracts ([`SumMode`]): `Exact` carries Shewchuk exact sums, so
//! every extracted statistic is invariant under *any* fold order or
//! merge grouping — streaming attack results are bit-identical to the
//! batch reference. `Welford` keeps running means, centered second
//! moments, and centered co-moments (Chan's parallel merge), which is
//! ~2× cheaper per fold and bit-stable across worker counts only via
//! the fixed [`TreeReducer`](crate::online::TreeReducer) shape.
//!
//! Memory is `O(channels × samples)` regardless of trace count.
//!
//! # Example
//!
//! ```
//! use leakage_core::comoment::CoMomentAccumulator;
//! use leakage_core::online::SumMode;
//!
//! // One channel whose hypothesis is perfectly correlated with sample 0.
//! let mut acc = CoMomentAccumulator::new(1, 2, SumMode::Exact);
//! for (h, x) in [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)] {
//!     acc.fold(&[h], &[x, 7.0]);
//! }
//! assert!((acc.pearson(0, 0) - 1.0).abs() < 1e-12);
//! assert_eq!(acc.pearson(0, 1), 0.0); // constant sample: undefined → 0
//! ```

use crate::online::{Merge, SumMode};
use crate::stats::ExactSum;

/// Per-mode moment state. Cross moments are stored row-major:
/// `channel × samples + sample`.
#[derive(Debug, Clone)]
enum CoMoments {
    Welford {
        /// Running mean per sample.
        mean_x: Vec<f64>,
        /// Centered second moment per sample.
        m2_x: Vec<f64>,
        /// Running mean per channel.
        mean_h: Vec<f64>,
        /// Centered second moment per channel.
        m2_h: Vec<f64>,
        /// Centered co-moment `Σ (h−h̄)(x−x̄)` per channel × sample.
        c_hx: Vec<f64>,
    },
    Exact {
        /// Exact `Σx` per sample.
        sum_x: Vec<ExactSum>,
        /// Exact `Σx²` per sample.
        sumsq_x: Vec<ExactSum>,
        /// Exact `Σh` per channel.
        sum_h: Vec<ExactSum>,
        /// Exact `Σh²` per channel.
        sumsq_h: Vec<ExactSum>,
        /// Exact `Σhx` per channel × sample.
        sum_hx: Vec<ExactSum>,
    },
}

/// Count and co-moments between `channels` hypothesis streams and
/// `samples` trace points.
///
/// Folding is `O(channels × samples)` per trace; state is
/// `O(channels × samples)`.
#[derive(Debug, Clone)]
pub struct CoMomentAccumulator {
    channels: usize,
    samples: usize,
    count: u64,
    depth: usize,
    moments: CoMoments,
}

impl CoMomentAccumulator {
    /// Empty accumulator for `channels` hypothesis channels over
    /// `samples`-point traces.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(channels: usize, samples: usize, mode: SumMode) -> Self {
        assert!(channels > 0, "channels must be positive");
        assert!(samples > 0, "samples must be positive");
        let moments = match mode {
            SumMode::Welford => CoMoments::Welford {
                mean_x: vec![0.0; samples],
                m2_x: vec![0.0; samples],
                mean_h: vec![0.0; channels],
                m2_h: vec![0.0; channels],
                c_hx: vec![0.0; channels * samples],
            },
            SumMode::Exact => CoMoments::Exact {
                sum_x: vec![ExactSum::new(); samples],
                sumsq_x: vec![ExactSum::new(); samples],
                sum_h: vec![ExactSum::new(); channels],
                sumsq_h: vec![ExactSum::new(); channels],
                sum_hx: vec![ExactSum::new(); channels * samples],
            },
        };
        Self {
            channels,
            samples,
            count: 0,
            depth: 0,
            moments,
        }
    }

    /// Summation mode.
    pub fn mode(&self) -> SumMode {
        match self.moments {
            CoMoments::Welford { .. } => SumMode::Welford,
            CoMoments::Exact { .. } => SumMode::Exact,
        }
    }

    /// Hypothesis channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Samples per trace.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Traces folded (or merged in) so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Depth of the merge tree this accumulator roots: 0 for a leaf,
    /// otherwise `1 + max(depth of operands)` per merge.
    pub fn merge_depth(&self) -> usize {
        self.depth
    }

    /// Fold one trace with its hypothesis vector (one value per
    /// channel).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn fold(&mut self, hypotheses: &[f64], trace: &[f64]) {
        assert_eq!(hypotheses.len(), self.channels, "channel count mismatch");
        assert_eq!(trace.len(), self.samples, "trace length mismatch");
        self.count += 1;
        match &mut self.moments {
            CoMoments::Welford {
                mean_x,
                m2_x,
                mean_h,
                m2_h,
                c_hx,
            } => {
                let n = self.count as f64;
                // Trace marginals first, so the cross update below can
                // use the *updated* x means (the standard online
                // covariance recurrence C += (h−h̄_old)(x−x̄_new)).
                for ((m, s), &x) in mean_x.iter_mut().zip(m2_x.iter_mut()).zip(trace) {
                    let delta = x - *m;
                    *m += delta / n;
                    *s += delta * (x - *m);
                }
                for (c, &h) in hypotheses.iter().enumerate() {
                    let dh = h - mean_h[c];
                    mean_h[c] += dh / n;
                    m2_h[c] += dh * (h - mean_h[c]);
                    let row = &mut c_hx[c * self.samples..(c + 1) * self.samples];
                    for ((r, m), &x) in row.iter_mut().zip(mean_x.iter()).zip(trace) {
                        *r += dh * (x - m);
                    }
                }
            }
            CoMoments::Exact {
                sum_x,
                sumsq_x,
                sum_h,
                sumsq_h,
                sum_hx,
            } => {
                for ((s, q), &x) in sum_x.iter_mut().zip(sumsq_x.iter_mut()).zip(trace) {
                    s.add(x);
                    q.add(x * x);
                }
                for (c, &h) in hypotheses.iter().enumerate() {
                    sum_h[c].add(h);
                    sumsq_h[c].add(h * h);
                    let row = &mut sum_hx[c * self.samples..(c + 1) * self.samples];
                    for (r, &x) in row.iter_mut().zip(trace) {
                        r.add(h * x);
                    }
                }
            }
        }
    }

    /// Merge another shard into this one in place; `self` is the
    /// earlier shard (Chan's parallel update in Welford mode, exact
    /// absorption in exact mode).
    ///
    /// # Panics
    ///
    /// Panics if shapes or modes differ.
    pub fn merge_from(&mut self, other: &CoMomentAccumulator) {
        assert_eq!(self.channels, other.channels, "channel count mismatch");
        assert_eq!(self.samples, other.samples, "sample count mismatch");
        let n = self.count + other.count;
        match (&mut self.moments, &other.moments) {
            (
                CoMoments::Welford {
                    mean_x,
                    m2_x,
                    mean_h,
                    m2_h,
                    c_hx,
                },
                CoMoments::Welford {
                    mean_x: omean_x,
                    m2_x: om2_x,
                    mean_h: omean_h,
                    m2_h: om2_h,
                    c_hx: oc_hx,
                },
            ) => {
                if other.count == 0 {
                    return;
                }
                if self.count == 0 {
                    mean_x.copy_from_slice(omean_x);
                    m2_x.copy_from_slice(om2_x);
                    mean_h.copy_from_slice(omean_h);
                    m2_h.copy_from_slice(om2_h);
                    c_hx.copy_from_slice(oc_hx);
                } else {
                    let na = self.count as f64;
                    let nb = other.count as f64;
                    let nt = n as f64;
                    let scale = na * nb / nt;
                    for c in 0..self.channels {
                        let dh = omean_h[c] - mean_h[c];
                        let row = &mut c_hx[c * self.samples..(c + 1) * self.samples];
                        let orow = &oc_hx[c * self.samples..(c + 1) * self.samples];
                        for ((r, &o), (m, om)) in row
                            .iter_mut()
                            .zip(orow)
                            .zip(mean_x.iter().zip(omean_x.iter()))
                        {
                            *r += o + dh * (om - m) * scale;
                        }
                        mean_h[c] += dh * (nb / nt);
                        m2_h[c] += om2_h[c] + dh * dh * scale;
                    }
                    for i in 0..self.samples {
                        let dx = omean_x[i] - mean_x[i];
                        mean_x[i] += dx * (nb / nt);
                        m2_x[i] += om2_x[i] + dx * dx * scale;
                    }
                }
            }
            (
                CoMoments::Exact {
                    sum_x,
                    sumsq_x,
                    sum_h,
                    sumsq_h,
                    sum_hx,
                },
                CoMoments::Exact {
                    sum_x: osum_x,
                    sumsq_x: osumsq_x,
                    sum_h: osum_h,
                    sumsq_h: osumsq_h,
                    sum_hx: osum_hx,
                },
            ) => {
                for (s, o) in sum_x.iter_mut().zip(osum_x) {
                    s.absorb(o);
                }
                for (q, o) in sumsq_x.iter_mut().zip(osumsq_x) {
                    q.absorb(o);
                }
                for (s, o) in sum_h.iter_mut().zip(osum_h) {
                    s.absorb(o);
                }
                for (q, o) in sumsq_h.iter_mut().zip(osumsq_h) {
                    q.absorb(o);
                }
                for (s, o) in sum_hx.iter_mut().zip(osum_hx) {
                    s.absorb(o);
                }
            }
            _ => panic!("cannot merge accumulators with different summation modes"),
        }
        self.count = n;
        self.depth = self.depth.max(other.depth + 1);
    }

    /// Pearson correlation between channel `c` and sample `t`; 0.0 when
    /// either marginal is degenerate (constant, or fewer than two
    /// traces).
    ///
    /// # Panics
    ///
    /// Panics if `c` or `t` is out of range.
    pub fn pearson(&self, c: usize, t: usize) -> f64 {
        assert!(c < self.channels, "channel {c} out of range");
        assert!(t < self.samples, "sample {t} out of range");
        if self.count < 2 {
            return 0.0;
        }
        match &self.moments {
            CoMoments::Welford {
                m2_x, m2_h, c_hx, ..
            } => {
                let denom = (m2_h[c] * m2_x[t]).sqrt();
                if denom == 0.0 {
                    0.0
                } else {
                    c_hx[c * self.samples + t] / denom
                }
            }
            CoMoments::Exact {
                sum_x,
                sumsq_x,
                sum_h,
                sumsq_h,
                sum_hx,
            } => {
                let n = self.count as f64;
                let sx = sum_x[t].value();
                let sh = sum_h[c].value();
                let num = n * sum_hx[c * self.samples + t].value() - sh * sx;
                let vh = (n * sumsq_h[c].value() - sh * sh).max(0.0);
                let vx = (n * sumsq_x[t].value() - sx * sx).max(0.0);
                let denom = (vh * vx).sqrt();
                if denom == 0.0 {
                    0.0
                } else {
                    num / denom
                }
            }
        }
    }

    /// Difference of means of sample `t` between the traces where the
    /// (binary, 0/1-valued) channel `c` selected 1 and those where it
    /// selected 0; 0.0 when either partition is empty.
    ///
    /// Computed from the same co-moments as [`pearson`](Self::pearson):
    /// for a 0/1 channel, `μ₁ − μ₀ = (n·Σhx − Σh·Σx) / (n₁·n₀)` with
    /// `n₁ = Σh`.
    ///
    /// # Panics
    ///
    /// Panics if `c` or `t` is out of range.
    pub fn difference_of_means(&self, c: usize, t: usize) -> f64 {
        assert!(c < self.channels, "channel {c} out of range");
        assert!(t < self.samples, "sample {t} out of range");
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let (centered, n1) = match &self.moments {
            CoMoments::Welford { mean_h, c_hx, .. } => (c_hx[c * self.samples + t], mean_h[c] * n),
            CoMoments::Exact {
                sum_x,
                sum_h,
                sum_hx,
                ..
            } => {
                let sh = sum_h[c].value();
                let centered = sum_hx[c * self.samples + t].value() - sh * sum_x[t].value() / n;
                (centered, sh)
            }
        };
        let n0 = n - n1;
        if n1 <= 0.0 || n0 <= 0.0 {
            return 0.0;
        }
        centered * n / (n1 * n0)
    }

    /// Mean hypothesis value of channel `c` (0.0 when empty) — for
    /// binary channels this is the fraction of traces selecting 1.
    pub fn channel_mean(&self, c: usize) -> f64 {
        assert!(c < self.channels, "channel {c} out of range");
        if self.count == 0 {
            return 0.0;
        }
        match &self.moments {
            CoMoments::Welford { mean_h, .. } => mean_h[c],
            CoMoments::Exact { sum_h, .. } => sum_h[c].value() / self.count as f64,
        }
    }

    /// Number of `f64` values currently held (memory accounting).
    pub fn resident_floats(&self) -> usize {
        match &self.moments {
            CoMoments::Welford {
                mean_x,
                m2_x,
                mean_h,
                m2_h,
                c_hx,
            } => mean_x.len() + m2_x.len() + mean_h.len() + m2_h.len() + c_hx.len(),
            CoMoments::Exact {
                sum_x,
                sumsq_x,
                sum_h,
                sumsq_h,
                sum_hx,
            } => sum_x
                .iter()
                .chain(sumsq_x)
                .chain(sum_h)
                .chain(sumsq_h)
                .chain(sum_hx)
                .map(|s| s.partials_len())
                .sum(),
        }
    }
}

impl Merge for CoMomentAccumulator {
    fn merge(mut self, later: Self) -> Self {
        self.merge_from(&later);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::pearson;

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    fn unit(state: &mut u64) -> f64 {
        (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `n` (hypothesis-vector, trace) pairs with correlated structure.
    fn synth(seed: u64, channels: usize, samples: usize, n: usize) -> Vec<(Vec<f64>, Vec<f64>)> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                let h: Vec<f64> = (0..channels)
                    .map(|_| (xorshift(&mut s) % 5) as f64)
                    .collect();
                let x: Vec<f64> = (0..samples)
                    .map(|j| h[j % channels] * 0.5 + unit(&mut s))
                    .collect();
                (h, x)
            })
            .collect()
    }

    #[test]
    fn pearson_matches_batch_reference() {
        let data = synth(0x10, 3, 4, 64);
        for mode in [SumMode::Welford, SumMode::Exact] {
            let mut acc = CoMomentAccumulator::new(3, 4, mode);
            for (h, x) in &data {
                acc.fold(h, x);
            }
            for c in 0..3 {
                for t in 0..4 {
                    let hs: Vec<f64> = data.iter().map(|(h, _)| h[c]).collect();
                    let xs: Vec<f64> = data.iter().map(|(_, x)| x[t]).collect();
                    let want = pearson(&hs, &xs);
                    let got = acc.pearson(c, t);
                    assert!((got - want).abs() < 1e-10, "mode {mode:?} c={c} t={t}");
                }
            }
        }
    }

    #[test]
    fn exact_merge_is_grouping_invariant_bitwise() {
        let data = synth(0x22, 2, 3, 50);
        let mut whole = CoMomentAccumulator::new(2, 3, SumMode::Exact);
        for (h, x) in &data {
            whole.fold(h, x);
        }
        // Uneven split, merged.
        let mut a = CoMomentAccumulator::new(2, 3, SumMode::Exact);
        let mut b = CoMomentAccumulator::new(2, 3, SumMode::Exact);
        for (i, (h, x)) in data.iter().enumerate() {
            if i < 13 {
                a.fold(h, x);
            } else {
                b.fold(h, x);
            }
        }
        let merged = a.merge(b);
        for c in 0..2 {
            for t in 0..3 {
                assert_eq!(
                    whole.pearson(c, t).to_bits(),
                    merged.pearson(c, t).to_bits()
                );
                assert_eq!(
                    whole.difference_of_means(c, t).to_bits(),
                    merged.difference_of_means(c, t).to_bits()
                );
            }
        }
    }

    #[test]
    fn welford_merge_matches_sequential_within_tolerance() {
        let data = synth(0x33, 2, 3, 80);
        let mut whole = CoMomentAccumulator::new(2, 3, SumMode::Welford);
        for (h, x) in &data {
            whole.fold(h, x);
        }
        let mut a = CoMomentAccumulator::new(2, 3, SumMode::Welford);
        let mut b = CoMomentAccumulator::new(2, 3, SumMode::Welford);
        for (i, (h, x)) in data.iter().enumerate() {
            if i < 37 {
                a.fold(h, x);
            } else {
                b.fold(h, x);
            }
        }
        let merged = a.merge(b);
        assert_eq!(merged.count(), 80);
        assert_eq!(merged.merge_depth(), 1);
        for c in 0..2 {
            for t in 0..3 {
                assert!((whole.pearson(c, t) - merged.pearson(c, t)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn difference_of_means_matches_partition_means() {
        // Binary channel: traces where h=1 have mean 3.0, h=0 mean 1.0.
        for mode in [SumMode::Welford, SumMode::Exact] {
            let mut acc = CoMomentAccumulator::new(1, 1, mode);
            let mut s = 7u64;
            let (mut s1, mut n1, mut s0, mut n0) = (0.0, 0, 0.0, 0);
            for _ in 0..60 {
                let h = (xorshift(&mut s) & 1) as f64;
                let x = 1.0 + 2.0 * h + unit(&mut s) * 0.1;
                if h > 0.5 {
                    s1 += x;
                    n1 += 1;
                } else {
                    s0 += x;
                    n0 += 1;
                }
                acc.fold(&[h], &[x]);
            }
            let want = s1 / n1 as f64 - s0 / n0 as f64;
            assert!(
                (acc.difference_of_means(0, 0) - want).abs() < 1e-9,
                "mode {mode:?}"
            );
        }
    }

    #[test]
    fn degenerate_cells_yield_zero() {
        for mode in [SumMode::Welford, SumMode::Exact] {
            let mut acc = CoMomentAccumulator::new(1, 1, mode);
            assert_eq!(acc.pearson(0, 0), 0.0);
            assert_eq!(acc.difference_of_means(0, 0), 0.0);
            // Constant hypothesis and constant sample.
            acc.fold(&[1.0], &[2.0]);
            acc.fold(&[1.0], &[2.0]);
            assert_eq!(acc.pearson(0, 0), 0.0);
            assert_eq!(acc.difference_of_means(0, 0), 0.0, "single-class split");
        }
    }

    #[test]
    fn resident_floats_is_bounded_by_shape() {
        let mut acc = CoMomentAccumulator::new(4, 8, SumMode::Welford);
        let base = acc.resident_floats();
        assert_eq!(base, 8 + 8 + 4 + 4 + 32);
        for i in 0..1000 {
            let h: Vec<f64> = (0..4).map(|c| ((i + c) % 3) as f64).collect();
            let x: Vec<f64> = (0..8).map(|t| (i * t) as f64 * 1e-3).collect();
            acc.fold(&h, &x);
        }
        assert_eq!(acc.resident_floats(), base, "Welford state is fixed-size");
    }

    #[test]
    #[should_panic(expected = "different summation modes")]
    fn merge_rejects_mixed_modes() {
        let a = CoMomentAccumulator::new(1, 1, SumMode::Exact);
        let b = CoMomentAccumulator::new(1, 1, SumMode::Welford);
        let _ = a.merge(b);
    }
}
