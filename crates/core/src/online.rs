//! Streaming (online, mergeable) spectral analysis.
//!
//! The batch pipeline materializes every trace in a
//! [`ClassifiedTraces`](crate::ClassifiedTraces) set before
//! [`LeakageSpectrum::from_class_means`] runs, so memory scales with
//! trace count. This module folds traces **one at a time** into
//! constant-size per-class accumulators and produces the same
//! [`LeakageSpectrum`] — memory is `O(classes × samples)` regardless of
//! how many traces are analysed.
//!
//! Three layers:
//!
//! * [`ClassAccumulator`] — count, running mean, and per-sample second
//!   moment for a single class (Welford's update, Chan's parallel merge);
//! * [`SpectrumAccumulator`] — one accumulator per class plus
//!   [`merge`](SpectrumAccumulator::merge), so shard-local accumulators
//!   combine into the whole-campaign result;
//! * [`SpectrumStream`] — folds a linear trace stream through the
//!   deterministic chunk tree (below), producing bit-for-bit the same
//!   accumulator the sharded campaign executor produces at any worker
//!   count.
//!
//! # Determinism contract
//!
//! Floating-point addition is not associative, so "merge shard results"
//! naively yields different bits at different worker counts. Two
//! mechanisms restore the campaign's bit-identity contract:
//!
//! 1. **Fixed merge tree.** Traces are grouped into chunks of
//!    [`FOLD_CHUNK`] consecutive *schedule indices* (the same unit the
//!    campaign executor hands to workers). Chunk accumulators are
//!    combined by [`TreeReducer`] in a binary-counter pairwise tree whose
//!    shape depends only on the number of chunks — never on which worker
//!    produced a chunk or in which order chunks finished. The same
//!    schedule therefore folds to the same bits at any worker count, in
//!    either summation mode.
//! 2. **Exact summation mode.** In [`SumMode::Exact`] each class
//!    additionally carries exact per-sample sums
//!    ([`ExactSum`](crate::stats::ExactSum)); means are the correctly
//!    rounded quotient of the true sum, which is invariant under *any*
//!    regrouping — so exact-mode streaming results are bit-identical to
//!    the batch path (whose
//!    [`class_means`](crate::ClassifiedTraces::class_means) uses the same
//!    helper), not merely to other streaming runs.
//!
//! [`SumMode::Welford`] drops the exact sums for a ~2× cheaper fold;
//! its means agree with the batch path only to rounding error (observed
//! ≤ 1e-12 relative on protocol-sized sets; the documented tolerance is
//! 1e-9). See DESIGN.md §"Streaming spectral analysis".
//!
//! # Example
//!
//! ```
//! use leakage_core::online::{SpectrumStream, SumMode};
//! use leakage_core::{ClassifiedTraces, LeakageSpectrum};
//!
//! let mut set = ClassifiedTraces::new(4, 2);
//! let mut stream = SpectrumStream::new(4, 2, SumMode::Exact);
//! for class in 0..4usize {
//!     set.push(class, vec![1.0, class as f64]);
//!     stream.fold(class, &[1.0, class as f64]);
//! }
//! let batch = LeakageSpectrum::from_class_means(&set.class_means());
//! let streamed = stream.finish().spectrum();
//! assert_eq!(batch, streamed); // bit-identical in exact mode
//! ```

use std::collections::BTreeMap;

use crate::stats::ExactSum;
use crate::LeakageSpectrum;

/// Chunk size (in schedule indices) of the deterministic merge tree.
///
/// The campaign executor claims work in chunks of exactly this many
/// schedule indices and folds each chunk into one accumulator leaf, so
/// any sequential fold that uses the same chunking (e.g.
/// [`SpectrumStream`]) reproduces the campaign's merge tree bit-for-bit.
pub const FOLD_CHUNK: usize = 16;

/// How accumulators sum samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SumMode {
    /// Running mean/M2 only (Welford + Chan merge). Cheapest; agrees
    /// with the batch path to rounding error, and is bit-stable across
    /// worker counts only via the fixed merge tree.
    Welford,
    /// Additionally keep exact per-sample sums, making means (and the
    /// spectra derived from them) invariant under any fold order or
    /// merge shape — bit-identical to the batch path.
    Exact,
}

/// Per-sample moment state, by mode.
#[derive(Debug, Clone, PartialEq)]
enum Moments {
    Welford {
        /// Running mean per sample.
        mean: Vec<f64>,
        /// Sum of squared deviations from the running mean, per sample.
        m2: Vec<f64>,
    },
    Exact {
        /// Exact sum of values per sample.
        sum: Vec<ExactSum>,
        /// Exact sum of squared values per sample.
        sumsq: Vec<ExactSum>,
    },
}

/// Count, mean, and second moment for one class of traces.
///
/// Folding is `O(samples)` per trace; state is `O(samples)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassAccumulator {
    samples: usize,
    count: u64,
    moments: Moments,
}

impl ClassAccumulator {
    /// Empty accumulator for traces of `samples` points.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn new(samples: usize, mode: SumMode) -> Self {
        assert!(samples > 0, "samples must be positive");
        let moments = match mode {
            SumMode::Welford => Moments::Welford {
                mean: vec![0.0; samples],
                m2: vec![0.0; samples],
            },
            SumMode::Exact => Moments::Exact {
                sum: vec![ExactSum::new(); samples],
                sumsq: vec![ExactSum::new(); samples],
            },
        };
        Self {
            samples,
            count: 0,
            moments,
        }
    }

    /// Summation mode.
    pub fn mode(&self) -> SumMode {
        match self.moments {
            Moments::Welford { .. } => SumMode::Welford,
            Moments::Exact { .. } => SumMode::Exact,
        }
    }

    /// Traces folded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples per trace.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Fold one trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace length differs from `samples`.
    pub fn fold(&mut self, trace: &[f64]) {
        assert_eq!(trace.len(), self.samples, "trace length mismatch");
        self.count += 1;
        match &mut self.moments {
            Moments::Welford { mean, m2 } => {
                let n = self.count as f64;
                for ((m, s), &x) in mean.iter_mut().zip(m2.iter_mut()).zip(trace) {
                    let delta = x - *m;
                    *m += delta / n;
                    *s += delta * (x - *m);
                }
            }
            Moments::Exact { sum, sumsq } => {
                for ((s, q), &x) in sum.iter_mut().zip(sumsq.iter_mut()).zip(trace) {
                    s.add(x);
                    q.add(x * x);
                }
            }
        }
    }

    /// Fold a batch of traces in one pass, bit-identical to folding
    /// each trace in order with [`fold`](Self::fold).
    ///
    /// The loops are interchanged relative to the sequential fold:
    /// the sample index is the outer loop, so each per-sample state
    /// (an [`ExactSum`] pair in exact mode, a mean/M2 pair in Welford
    /// mode) stays hot across the whole batch instead of being
    /// streamed through cache once per trace. Each per-sample state
    /// still receives exactly the sequence of updates the sequential
    /// fold would apply — trace order within a sample, with Welford's
    /// divisor recomputed per trace — so the result is bitwise
    /// identical, not merely close.
    ///
    /// # Panics
    ///
    /// Panics if any trace length differs from `samples`.
    pub fn fold_batch(&mut self, traces: &[&[f64]]) {
        for trace in traces {
            assert_eq!(trace.len(), self.samples, "trace length mismatch");
        }
        let before = self.count;
        match &mut self.moments {
            Moments::Welford { mean, m2 } => {
                for (j, (m, s)) in mean.iter_mut().zip(m2.iter_mut()).enumerate() {
                    for (k, trace) in traces.iter().enumerate() {
                        // Same divisor sequence as the sequential fold.
                        let n = (before + k as u64 + 1) as f64;
                        let x = trace[j];
                        let delta = x - *m;
                        *m += delta / n;
                        *s += delta * (x - *m);
                    }
                }
            }
            Moments::Exact { sum, sumsq } => {
                for (j, (s, q)) in sum.iter_mut().zip(sumsq.iter_mut()).enumerate() {
                    for trace in traces {
                        let x = trace[j];
                        s.add(x);
                        q.add(x * x);
                    }
                }
            }
        }
        self.count = before + traces.len() as u64;
    }

    /// Merge another accumulator into this one (Chan's parallel update
    /// in Welford mode; exact absorption in exact mode).
    ///
    /// # Panics
    ///
    /// Panics if samples or modes differ.
    pub fn merge(&mut self, other: &ClassAccumulator) {
        assert_eq!(self.samples, other.samples, "sample count mismatch");
        let n = self.count + other.count;
        match (&mut self.moments, &other.moments) {
            (
                Moments::Welford { mean, m2 },
                Moments::Welford {
                    mean: omean,
                    m2: om2,
                },
            ) => {
                if other.count == 0 {
                    return;
                }
                if self.count == 0 {
                    mean.copy_from_slice(omean);
                    m2.copy_from_slice(om2);
                } else {
                    let na = self.count as f64;
                    let nb = other.count as f64;
                    let nt = n as f64;
                    for i in 0..self.samples {
                        let delta = omean[i] - mean[i];
                        mean[i] += delta * (nb / nt);
                        m2[i] += om2[i] + delta * delta * (na * nb / nt);
                    }
                }
            }
            (
                Moments::Exact { sum, sumsq },
                Moments::Exact {
                    sum: osum,
                    sumsq: osumsq,
                },
            ) => {
                for (s, o) in sum.iter_mut().zip(osum) {
                    s.absorb(o);
                }
                for (q, o) in sumsq.iter_mut().zip(osumsq) {
                    q.absorb(o);
                }
            }
            _ => panic!("cannot merge accumulators with different summation modes"),
        }
        self.count = n;
    }

    /// Mean trace; all zeros when no traces were folded.
    pub fn mean(&self) -> Vec<f64> {
        match &self.moments {
            Moments::Welford { mean, .. } => {
                if self.count == 0 {
                    vec![0.0; self.samples]
                } else {
                    mean.clone()
                }
            }
            Moments::Exact { sum, .. } => {
                if self.count == 0 {
                    vec![0.0; self.samples]
                } else {
                    let n = self.count as f64;
                    sum.iter().map(|s| s.value() / n).collect()
                }
            }
        }
    }

    /// Population variance per sample; all zeros for fewer than two
    /// traces.
    pub fn variance(&self) -> Vec<f64> {
        if self.count < 2 {
            return vec![0.0; self.samples];
        }
        let n = self.count as f64;
        match &self.moments {
            Moments::Welford { m2, .. } => m2.iter().map(|s| s / n).collect(),
            Moments::Exact { sum, sumsq } => sum
                .iter()
                .zip(sumsq)
                .map(|(s, q)| {
                    let mean = s.value() / n;
                    (q.value() / n - mean * mean).max(0.0)
                })
                .collect(),
        }
    }

    /// Number of `f64` values currently held (memory accounting).
    pub fn resident_floats(&self) -> usize {
        match &self.moments {
            Moments::Welford { mean, m2 } => mean.len() + m2.len(),
            Moments::Exact { sum, sumsq } => sum
                .iter()
                .chain(sumsq)
                .map(|s| s.partials_len())
                .sum::<usize>(),
        }
    }
}

/// Mergeable online estimator of the full leakage spectrum: one
/// [`ClassAccumulator`] per class.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectrumAccumulator {
    classes: Vec<ClassAccumulator>,
    samples: usize,
    mode: SumMode,
    depth: usize,
}

impl SpectrumAccumulator {
    /// Empty accumulator for `num_classes` classes of `samples`-point
    /// traces.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(num_classes: usize, samples: usize, mode: SumMode) -> Self {
        assert!(num_classes > 0, "num_classes must be positive");
        Self {
            classes: (0..num_classes)
                .map(|_| ClassAccumulator::new(samples, mode))
                .collect(),
            samples,
            mode,
            depth: 0,
        }
    }

    /// Summation mode.
    pub fn mode(&self) -> SumMode {
        self.mode
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Samples per trace.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Total traces folded (or merged in) so far.
    pub fn len(&self) -> u64 {
        self.classes.iter().map(|c| c.count()).sum()
    }

    /// Whether nothing has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Depth of the merge tree this accumulator is the root of: 0 for a
    /// leaf that only ever folded traces directly, otherwise
    /// `1 + max(depth of operands)` per merge.
    pub fn merge_depth(&self) -> usize {
        self.depth
    }

    /// Fold one trace under its class label.
    ///
    /// # Panics
    ///
    /// Panics if the class is out of range or the trace has the wrong
    /// length.
    pub fn fold(&mut self, class: usize, trace: &[f64]) {
        assert!(class < self.classes.len(), "class {class} out of range");
        self.classes[class].fold(trace);
    }

    /// Fold a batch of traces of one class in a single cache-friendly
    /// pass — bit-identical to folding each trace in order (see
    /// [`ClassAccumulator::fold_batch`]).
    ///
    /// # Panics
    ///
    /// Panics if the class is out of range or any trace has the wrong
    /// length.
    pub fn fold_batch(&mut self, class: usize, traces: &[&[f64]]) {
        assert!(class < self.classes.len(), "class {class} out of range");
        self.classes[class].fold_batch(traces);
    }

    /// Merge two shard accumulators; `self` is the earlier shard (merge
    /// order matters for bit-identity in Welford mode — see
    /// [`TreeReducer`]).
    ///
    /// # Panics
    ///
    /// Panics if shapes or modes differ.
    pub fn merge(mut self, other: SpectrumAccumulator) -> SpectrumAccumulator {
        assert_eq!(
            self.classes.len(),
            other.classes.len(),
            "class count mismatch"
        );
        assert_eq!(self.samples, other.samples, "sample count mismatch");
        for (a, b) in self.classes.iter_mut().zip(&other.classes) {
            a.merge(b);
        }
        self.depth = self.depth.max(other.depth) + 1;
        self
    }

    /// Traces folded per class.
    pub fn class_counts(&self) -> Vec<usize> {
        self.classes.iter().map(|c| c.count() as usize).collect()
    }

    /// Per-class mean traces (`num_classes × samples`), matching
    /// [`ClassifiedTraces::class_means`](crate::ClassifiedTraces::class_means).
    pub fn class_means(&self) -> Vec<Vec<f64>> {
        self.classes.iter().map(|c| c.mean()).collect()
    }

    /// Per-class population variances per sample.
    pub fn class_variances(&self) -> Vec<Vec<f64>> {
        self.classes.iter().map(|c| c.variance()).collect()
    }

    /// The leakage spectrum of the folded traces.
    ///
    /// # Panics
    ///
    /// Panics (in [`LeakageSpectrum::from_class_means`]) unless the
    /// class count is a power of two greater than one.
    pub fn spectrum(&self) -> LeakageSpectrum {
        LeakageSpectrum::from_class_means(&self.class_means())
    }

    /// Number of `f64` values currently held — the memory footprint the
    /// bounded-memory tests assert on.
    pub fn resident_floats(&self) -> usize {
        self.classes.iter().map(|c| c.resident_floats()).sum()
    }
}

/// A shard state that [`TreeReducer`] can pairwise-combine.
///
/// `merge` consumes `self` as the **earlier** operand (in schedule
/// order) and `later` as the later one. Implementations must be
/// associative up to their documented determinism contract: under
/// [`SumMode::Exact`] state, any grouping yields identical bits; under
/// [`SumMode::Welford`] state, bit-identity holds only for a fixed
/// merge-tree shape (which [`TreeReducer`] provides).
pub trait Merge: Sized {
    /// Combine the earlier shard `self` with the `later` shard.
    fn merge(self, later: Self) -> Self;
}

impl Merge for SpectrumAccumulator {
    fn merge(self, later: Self) -> Self {
        SpectrumAccumulator::merge(self, later)
    }
}

impl Merge for ClassAccumulator {
    fn merge(mut self, later: Self) -> Self {
        ClassAccumulator::merge(&mut self, &later);
        self
    }
}

/// Deterministic pairwise reduction of a sequence of shard accumulators.
///
/// Accumulators are pushed with their position in the chunk sequence
/// (`seq`); out-of-order arrivals are buffered and applied in order, so
/// the reduction consumes leaves `0, 1, 2, …` no matter which worker
/// finished first. Internally a binary counter of partial subtrees (the
/// classic binomial-heap shape): leaf `2k` and `2k+1` merge into a
/// 2-chunk node, two of those merge into a 4-chunk node, and so on.
/// The tree shape — and therefore every intermediate rounding in
/// Welford mode — depends only on how many leaves were pushed.
///
/// Generic over the shard state: the spectral pipeline reduces
/// [`SpectrumAccumulator`]s, the attack engine reduces its co-moment
/// state, and joint (spectral + attack) folds reduce a composite — all
/// through the same tree, so every streamed consumer inherits the same
/// worker-count invariance.
///
/// Memory: `O(log n)` buffered subtrees plus at most
/// (in-flight workers) buffered out-of-order leaves.
#[derive(Debug)]
pub struct TreeReducer<T = SpectrumAccumulator> {
    /// `levels[k]` holds a pending subtree of 2^k leaves, all earlier
    /// in sequence order than anything at levels < k.
    levels: Vec<Option<T>>,
    /// Next sequence number the counter will accept.
    next: u64,
    /// Out-of-order leaves waiting for their turn.
    pending: BTreeMap<u64, T>,
}

impl<T> Default for TreeReducer<T> {
    fn default() -> Self {
        Self {
            levels: Vec::new(),
            next: 0,
            pending: BTreeMap::new(),
        }
    }
}

impl<T: Merge> TreeReducer<T> {
    /// Empty reducer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Push the shard accumulator for chunk `seq` (0-based position in
    /// the chunk sequence). Chunks may arrive in any order; each `seq`
    /// must be pushed exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `seq` was already consumed or pushed.
    pub fn push(&mut self, seq: u64, acc: T) {
        assert!(seq >= self.next, "chunk {seq} already consumed");
        let prev = self.pending.insert(seq, acc);
        assert!(prev.is_none(), "chunk {seq} pushed twice");
        while let Some(acc) = self.pending.remove(&self.next) {
            self.next += 1;
            self.carry(acc);
        }
    }

    fn carry(&mut self, acc: T) {
        let mut carry = acc;
        for slot in self.levels.iter_mut() {
            match slot.take() {
                // The resident subtree covers earlier chunks, so it is
                // the left operand.
                Some(left) => carry = left.merge(carry),
                None => {
                    *slot = Some(carry);
                    return;
                }
            }
        }
        self.levels.push(Some(carry));
    }

    /// Leaves consumed so far (buffered out-of-order leaves excluded).
    pub fn consumed(&self) -> u64 {
        self.next
    }

    /// Memory accounting over all buffered subtrees and out-of-order
    /// leaves, with a caller-supplied per-state size function.
    pub fn resident_with<F>(&self, size: F) -> usize
    where
        F: Fn(&T) -> usize,
    {
        self.levels
            .iter()
            .flatten()
            .chain(self.pending.values())
            .map(size)
            .sum()
    }

    /// Merge the remaining partial subtrees (earliest first) into the
    /// final accumulator; `None` if nothing was pushed.
    ///
    /// # Panics
    ///
    /// Panics if out-of-order leaves are still buffered (a gap in the
    /// sequence — some chunk was never pushed).
    pub fn finish(self) -> Option<T> {
        assert!(
            self.pending.is_empty(),
            "gap in chunk sequence: chunk {} never pushed",
            self.next
        );
        // Higher levels hold earlier chunks; walk low→high keeping the
        // running subtree as the *later* (right) operand.
        let mut total: Option<T> = None;
        for slot in self.levels.into_iter().flatten() {
            total = Some(match total {
                None => slot,
                Some(later) => slot.merge(later),
            });
        }
        total
    }
}

impl TreeReducer<SpectrumAccumulator> {
    /// Number of `f64` values currently held across all buffered
    /// subtrees and out-of-order leaves.
    pub fn resident_floats(&self) -> usize {
        self.resident_with(SpectrumAccumulator::resident_floats)
    }
}

/// Sequential fold of a trace stream through the deterministic chunk
/// tree: every [`FOLD_CHUNK`] consecutive folds become one leaf of a
/// [`TreeReducer`]. Folding a schedule in order through this type yields
/// bit-for-bit the accumulator the sharded campaign executor produces
/// for the same schedule at any worker count.
///
/// Internally each leaf's traces are buffered and folded in one
/// batched, loop-interchanged pass per class
/// ([`ClassAccumulator::fold_batch`]) when the chunk boundary is
/// reached. A class's traces reach its accumulator in arrival order and
/// no other class touches that state, so the leaf — and everything
/// reduced from it — is bitwise identical to the trace-at-a-time fold.
/// The buffer holds at most one chunk of raw traces, so residency stays
/// bounded; [`resident_floats`](Self::resident_floats) accounts for it.
#[derive(Debug)]
pub struct SpectrumStream {
    reducer: TreeReducer,
    /// The current leaf's traces, in arrival order, waiting to be
    /// batch-folded at the chunk boundary. Never exceeds `chunk` items.
    buffer: Vec<(usize, Vec<f64>)>,
    chunk: usize,
    seq: u64,
    folded: u64,
    num_classes: usize,
    samples: usize,
    mode: SumMode,
}

impl SpectrumStream {
    /// Stream with the campaign's chunk size ([`FOLD_CHUNK`]).
    pub fn new(num_classes: usize, samples: usize, mode: SumMode) -> Self {
        Self::with_chunk(num_classes, samples, mode, FOLD_CHUNK)
    }

    /// Stream with a custom chunk size (property tests exercise odd
    /// sizes; production code should use [`new`](Self::new) so chunk
    /// boundaries match the campaign executor).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn with_chunk(num_classes: usize, samples: usize, mode: SumMode, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        Self {
            reducer: TreeReducer::new(),
            buffer: Vec::with_capacity(chunk),
            chunk,
            seq: 0,
            folded: 0,
            num_classes,
            samples,
            mode,
        }
    }

    /// Fold one trace under its class label.
    ///
    /// # Panics
    ///
    /// Panics if the class is out of range or the trace has the wrong
    /// length (eagerly, even though the fold itself is deferred to the
    /// chunk boundary).
    pub fn fold(&mut self, class: usize, trace: &[f64]) {
        assert!(class < self.num_classes, "class {class} out of range");
        assert_eq!(trace.len(), self.samples, "trace length mismatch");
        self.buffer.push((class, trace.to_vec()));
        self.folded += 1;
        if self.buffer.len() == self.chunk {
            self.flush_leaf();
        }
    }

    /// Batch-fold the buffered traces into a fresh leaf accumulator and
    /// push it into the reduction tree.
    fn flush_leaf(&mut self) {
        let mut leaf = SpectrumAccumulator::new(self.num_classes, self.samples, self.mode);
        let mut scratch: Vec<&[f64]> = Vec::with_capacity(self.buffer.len());
        for class in 0..self.num_classes {
            scratch.clear();
            scratch.extend(
                self.buffer
                    .iter()
                    .filter(|(c, _)| *c == class)
                    .map(|(_, t)| t.as_slice()),
            );
            if !scratch.is_empty() {
                leaf.fold_batch(class, &scratch);
            }
        }
        drop(scratch);
        self.buffer.clear();
        self.reducer.push(self.seq, leaf);
        self.seq += 1;
    }

    /// Traces folded so far.
    pub fn folded(&self) -> u64 {
        self.folded
    }

    /// Number of `f64` values currently held (the partial leaf's
    /// buffered traces plus the reducer's buffered subtrees) —
    /// `O(chunk × samples + classes × samples × log chunks)`,
    /// independent of trace count.
    pub fn resident_floats(&self) -> usize {
        self.buffer.iter().map(|(_, t)| t.len()).sum::<usize>() + self.reducer.resident_floats()
    }

    /// Close the stream: the trailing partial chunk (if any) becomes the
    /// final leaf, and the reduction completes. Returns an empty
    /// accumulator if nothing was folded.
    pub fn finish(mut self) -> SpectrumAccumulator {
        if !self.buffer.is_empty() {
            self.flush_leaf();
        }
        self.reducer
            .finish()
            .unwrap_or_else(|| SpectrumAccumulator::new(self.num_classes, self.samples, self.mode))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassifiedTraces;

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    /// Deterministic synthetic trace set: `n` traces of `samples`
    /// points over `classes` classes, values in roughly [-1, 1] with a
    /// class-dependent offset so spectra are non-trivial.
    fn synth(seed: u64, classes: usize, samples: usize, n: usize) -> Vec<(usize, Vec<f64>)> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                let class = (xorshift(&mut s) as usize) % classes;
                let trace = (0..samples)
                    .map(|j| {
                        let noise = (xorshift(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
                        class as f64 * 0.125 + j as f64 * 0.01 + noise
                    })
                    .collect();
                (class, trace)
            })
            .collect()
    }

    fn batch_spectrum(
        traces: &[(usize, Vec<f64>)],
        classes: usize,
        samples: usize,
    ) -> LeakageSpectrum {
        let mut set = ClassifiedTraces::new(classes, samples);
        for (c, t) in traces {
            set.push(*c, t.clone());
        }
        LeakageSpectrum::from_class_means(&set.class_means())
    }

    #[test]
    fn exact_stream_matches_batch_bitwise() {
        let traces = synth(0x5EED, 4, 6, 101);
        let batch = batch_spectrum(&traces, 4, 6);
        let mut stream = SpectrumStream::new(4, 6, SumMode::Exact);
        for (c, t) in &traces {
            stream.fold(*c, t);
        }
        let acc = stream.finish();
        assert_eq!(acc.len(), 101);
        assert_eq!(acc.spectrum(), batch);
    }

    #[test]
    fn welford_stream_matches_batch_within_tolerance() {
        let traces = synth(0xF00D, 4, 6, 101);
        let batch = batch_spectrum(&traces, 4, 6);
        let mut stream = SpectrumStream::new(4, 6, SumMode::Welford);
        for (c, t) in &traces {
            stream.fold(*c, t);
        }
        let got = stream.finish().spectrum();
        let scale = batch.total_leakage_power().abs().max(1.0);
        assert!((got.total_leakage_power() - batch.total_leakage_power()).abs() < 1e-9 * scale);
    }

    #[test]
    fn welford_variance_is_sane() {
        let mut acc = ClassAccumulator::new(1, SumMode::Welford);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            acc.fold(&[x]);
        }
        assert!((acc.mean()[0] - 5.0).abs() < 1e-12);
        assert!((acc.variance()[0] - 4.0).abs() < 1e-12);
        // Exact mode computes the same moments.
        let mut e = ClassAccumulator::new(1, SumMode::Exact);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            e.fold(&[x]);
        }
        assert_eq!(e.mean()[0], 5.0);
        assert_eq!(e.variance()[0], 4.0);
    }

    #[test]
    fn merge_tracks_depth_and_counts() {
        let traces = synth(0xD00F, 4, 3, 40);
        let mut a = SpectrumAccumulator::new(4, 3, SumMode::Exact);
        let mut b = SpectrumAccumulator::new(4, 3, SumMode::Exact);
        for (i, (c, t)) in traces.iter().enumerate() {
            if i < 20 {
                a.fold(*c, t);
            } else {
                b.fold(*c, t);
            }
        }
        assert_eq!(a.merge_depth(), 0);
        let m = a.merge(b);
        assert_eq!(m.merge_depth(), 1);
        assert_eq!(m.len(), 40);
        assert_eq!(m.class_counts().iter().sum::<usize>(), 40);
    }

    #[test]
    fn reducer_is_arrival_order_invariant() {
        for mode in [SumMode::Welford, SumMode::Exact] {
            let traces = synth(0xCAFE, 4, 5, 7 * FOLD_CHUNK + 3);
            let leaves: Vec<SpectrumAccumulator> = traces
                .chunks(FOLD_CHUNK)
                .map(|chunk| {
                    let mut leaf = SpectrumAccumulator::new(4, 5, mode);
                    for (c, t) in chunk {
                        leaf.fold(*c, t);
                    }
                    leaf
                })
                .collect();
            let mut in_order = TreeReducer::new();
            for (i, leaf) in leaves.iter().enumerate() {
                in_order.push(i as u64, leaf.clone());
            }
            let reference = in_order.finish().unwrap();
            // Reversed arrival and an interleaved arrival must agree
            // bitwise, even in Welford mode.
            let mut reversed = TreeReducer::new();
            for (i, leaf) in leaves.iter().enumerate().rev() {
                reversed.push(i as u64, leaf.clone());
            }
            assert_eq!(reversed.finish().unwrap(), reference);
            let mut odd_even = TreeReducer::new();
            for (i, leaf) in leaves.iter().enumerate().filter(|(i, _)| i % 2 == 1) {
                odd_even.push(i as u64, leaf.clone());
            }
            for (i, leaf) in leaves.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
                odd_even.push(i as u64, leaf.clone());
            }
            assert_eq!(odd_even.finish().unwrap(), reference);
        }
    }

    #[test]
    fn stream_reproduces_reducer_tree() {
        // SpectrumStream must build the same tree as hand-chunked
        // leaves pushed into a TreeReducer.
        let traces = synth(0xBEEF, 4, 4, 5 * FOLD_CHUNK + 9);
        for mode in [SumMode::Welford, SumMode::Exact] {
            let mut stream = SpectrumStream::new(4, 4, mode);
            for (c, t) in &traces {
                stream.fold(*c, t);
            }
            let mut reducer = TreeReducer::new();
            for (i, chunk) in traces.chunks(FOLD_CHUNK).enumerate() {
                let mut leaf = SpectrumAccumulator::new(4, 4, mode);
                for (c, t) in chunk {
                    leaf.fold(*c, t);
                }
                reducer.push(i as u64, leaf);
            }
            assert_eq!(stream.finish(), reducer.finish().unwrap());
        }
    }

    #[test]
    fn fold_batch_is_bit_identical_to_sequential_folds() {
        // The loop-interchanged batch fold must leave the accumulator
        // in exactly the state the trace-at-a-time fold produces —
        // including the ExactSum partials (exact mode) and the rounding
        // of every Welford divisor — even when the batch continues from
        // a non-empty accumulator.
        let traces = synth(0xABBA, 3, 7, 53);
        let slices: Vec<&[f64]> = traces.iter().map(|(_, t)| t.as_slice()).collect();
        for mode in [SumMode::Welford, SumMode::Exact] {
            for split in [0usize, 1, 16, 52, 53] {
                let mut sequential = ClassAccumulator::new(7, mode);
                for s in &slices {
                    sequential.fold(s);
                }
                let mut batched = ClassAccumulator::new(7, mode);
                for s in &slices[..split] {
                    batched.fold(s);
                }
                batched.fold_batch(&slices[split..]);
                assert_eq!(batched, sequential, "{mode:?} split at {split}");
            }
        }
        // Per-class dispatch through the spectrum accumulator.
        let mut sequential = SpectrumAccumulator::new(3, 7, SumMode::Exact);
        for (c, t) in &traces {
            sequential.fold(*c, t);
        }
        let mut batched = SpectrumAccumulator::new(3, 7, SumMode::Exact);
        for class in 0..3usize {
            let of_class: Vec<&[f64]> = traces
                .iter()
                .filter(|(c, _)| *c == class)
                .map(|(_, t)| t.as_slice())
                .collect();
            batched.fold_batch(class, &of_class);
        }
        assert_eq!(batched, sequential);
    }

    #[test]
    fn resident_floats_grow_logarithmically() {
        let samples = 4;
        let classes = 4;
        let mut stream = SpectrumStream::new(classes, samples, SumMode::Welford);
        let trace: Vec<f64> = (0..samples).map(|i| i as f64 * 0.25).collect();
        let mut small = 0;
        for i in 0..20_000usize {
            stream.fold(i % classes, &trace);
            if i + 1 == 1_250 {
                small = stream.resident_floats();
            }
        }
        let large = stream.resident_floats();
        // 16x the traces may add at most 4 counter levels: the resident
        // set is O(classes × samples × log chunks), not O(traces).
        assert!(small > 0);
        assert!(
            large <= small + 4 * classes * samples * 2,
            "resident floats grew from {small} to {large}"
        );
        assert!(large < 20_000, "resident floats scale with traces");
    }

    #[test]
    fn empty_stream_finishes_to_empty_accumulator() {
        let acc = SpectrumStream::new(4, 3, SumMode::Exact).finish();
        assert!(acc.is_empty());
        assert_eq!(acc.class_means(), vec![vec![0.0; 3]; 4]);
    }

    #[test]
    #[should_panic(expected = "pushed twice")]
    fn reducer_rejects_duplicate_chunks() {
        let mut r = TreeReducer::new();
        r.push(1, SpectrumAccumulator::new(2, 1, SumMode::Exact));
        r.push(1, SpectrumAccumulator::new(2, 1, SumMode::Exact));
    }

    #[test]
    #[should_panic(expected = "different summation modes")]
    fn merge_rejects_mixed_modes() {
        let a = SpectrumAccumulator::new(2, 1, SumMode::Exact);
        let b = SpectrumAccumulator::new(2, 1, SumMode::Welford);
        let _ = a.merge(b);
    }
}
