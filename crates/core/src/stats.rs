//! Small statistics helpers shared across the analysis and attack crates.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0.0 for fewer than two points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance; 0.0 for fewer than two points.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Pearson correlation coefficient of two equally long series; 0.0 when
/// either side has no variance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use leakage_core::stats::pearson;
///
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series lengths differ");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(variance(&xs), 1.25);
        assert!((sample_variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[7.0]), 0.0);
    }

    #[test]
    fn pearson_signs_and_degeneracy() {
        let x = [1.0, 2.0, 3.0];
        assert!((pearson(&x, &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn pearson_is_scale_invariant() {
        let x = [0.1, 0.9, 0.4, 0.7, 0.2];
        let y: Vec<f64> = x.iter().map(|v| 100.0 - 3.0 * v).collect();
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
    }
}
