//! Small statistics helpers shared across the analysis and attack crates.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0.0 for fewer than two points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance; 0.0 for fewer than two points.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Pearson correlation coefficient of two equally long series; 0.0 when
/// either side has no variance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use leakage_core::stats::pearson;
///
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series lengths differ");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Midrank transform: each value's 1-based rank, with tied values
/// sharing the mean of the ranks they span (the standard treatment for
/// Spearman with ties).
fn midranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = mid;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation of two equally long series: the Pearson
/// correlation of their midranks, so ties are handled exactly. 0.0 when
/// either side is constant.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use leakage_core::stats::spearman;
///
/// // Monotone but nonlinear association is still a perfect rank fit.
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [1.0, 8.0, 27.0, 64.0];
/// assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series lengths differ");
    if xs.len() < 2 {
        return 0.0;
    }
    pearson(&midranks(xs), &midranks(ys))
}

/// Exact floating-point summation (Shewchuk expansion, fsum-style
/// rounding).
///
/// Maintains the running sum as a list of non-overlapping partials whose
/// (exact) sum equals the exact real sum of everything added so far.
/// [`value`](ExactSum::value) rounds that exact sum to the nearest `f64`
/// (ties to even), so the result is **independent of the order** in which
/// values were added and of how partial sums were
/// [`absorb`](ExactSum::absorb)ed together. That order-invariance is the
/// contract the streaming accumulators in [`crate::online`] build their
/// bit-identity guarantee on.
///
/// Inputs must be finite; NaN or infinite inputs poison the sum (the
/// partials stop being an expansion) and intermediate overflow is not
/// handled. Power traces are bounded, so neither arises in this codebase.
///
/// # Example
///
/// ```
/// use leakage_core::stats::ExactSum;
///
/// let mut forward = ExactSum::new();
/// let mut backward = ExactSum::new();
/// let xs = [1e16, 1.0, -1e16, 1.0];
/// for &x in &xs {
///     forward.add(x);
/// }
/// for &x in xs.iter().rev() {
///     backward.add(x);
/// }
/// assert_eq!(forward.value(), 2.0); // naive summation yields 1.0
/// assert_eq!(forward.value().to_bits(), backward.value().to_bits());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExactSum {
    /// Non-overlapping partials in increasing magnitude order.
    partials: Vec<f64>,
}

impl ExactSum {
    /// An empty sum (value 0.0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one value to the sum, exactly.
    pub fn add(&mut self, x: f64) {
        let mut x = x;
        let mut kept = 0;
        for j in 0..self.partials.len() {
            let mut y = self.partials[j];
            if x.abs() < y.abs() {
                std::mem::swap(&mut x, &mut y);
            }
            // Two-sum: hi + lo == x + y exactly, |lo| <= ulp(hi)/2.
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[kept] = lo;
                kept += 1;
            }
            x = hi;
        }
        self.partials.truncate(kept);
        self.partials.push(x);
    }

    /// Fold another exact sum into this one; the combined sum is still
    /// exact, so `a.absorb(&b)` equals adding every input of `b` to `a`
    /// in any order.
    pub fn absorb(&mut self, other: &ExactSum) {
        for &p in &other.partials {
            self.add(p);
        }
    }

    /// The exact sum, correctly rounded to the nearest `f64` (ties to
    /// even).
    pub fn value(&self) -> f64 {
        // Round the expansion high-to-low, tracking the first non-zero
        // remainder so half-ulp ties break to even on the *exact* value
        // rather than on the top partial alone (CPython's fsum rounding).
        let mut n = self.partials.len();
        if n == 0 {
            return 0.0;
        }
        n -= 1;
        let mut hi = self.partials[n];
        let mut lo = 0.0;
        while n > 0 {
            let x = hi;
            n -= 1;
            let y = self.partials[n];
            hi = x + y;
            let yr = hi - x;
            lo = y - yr;
            if lo != 0.0 {
                break;
            }
        }
        if n > 0
            && ((lo < 0.0 && self.partials[n - 1] < 0.0)
                || (lo > 0.0 && self.partials[n - 1] > 0.0))
        {
            let y = lo * 2.0;
            let x = hi + y;
            if y == x - hi {
                hi = x;
            }
        }
        hi
    }

    /// Number of partials currently held (memory accounting; at most
    /// ~40 for finite `f64` inputs, typically 2–4).
    pub fn partials_len(&self) -> usize {
        self.partials.len()
    }
}

/// Neumaier compensated running sum: one float of error compensation,
/// sequential order.
///
/// Cheaper than [`ExactSum`] (two floats of state, no allocation) but the
/// result depends on input order; use it where the iteration order is
/// fixed and only robustness against cancellation is needed (e.g. the
/// single-pass moment sums in [`crate::metrics`]).
///
/// # Example
///
/// ```
/// use leakage_core::stats::CompensatedSum;
///
/// let mut s = CompensatedSum::new();
/// for &x in &[1e16, 1.0, -1e16, 1.0] {
///     s.add(x);
/// }
/// assert_eq!(s.value(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompensatedSum {
    sum: f64,
    comp: f64,
}

impl CompensatedSum {
    /// An empty sum (value 0.0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one value to the sum.
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated sum.
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(variance(&xs), 1.25);
        assert!((sample_variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[7.0]), 0.0);
    }

    #[test]
    fn pearson_signs_and_degeneracy() {
        let x = [1.0, 2.0, 3.0];
        assert!((pearson(&x, &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn pearson_is_scale_invariant() {
        let x = [0.1, 0.9, 0.4, 0.7, 0.2];
        let y: Vec<f64> = x.iter().map(|v| 100.0 - 3.0 * v).collect();
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_sees_monotone_association() {
        let x = [0.1, 0.5, 0.2, 0.9, 0.7];
        let cubed: Vec<f64> = x.iter().map(|v| v * v * v).collect();
        assert!((spearman(&x, &cubed) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -v.exp()).collect();
        assert!((spearman(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties_with_midranks() {
        // Half the gates silent on both sides, half monotone: positive
        // but below 1 because the tied block carries no ordering info.
        let x = [0.0, 0.0, 0.0, 1.0, 2.0, 3.0];
        let y = [0.0, 0.0, 0.0, 2.0, 5.0, 9.0];
        let rho = spearman(&x, &y);
        assert!((rho - 1.0).abs() < 1e-12, "tied blocks agree: {rho}");
        let y_mixed = [0.0, 0.0, 0.0, 9.0, 5.0, 2.0];
        let rho = spearman(&x, &y_mixed);
        assert!(rho > 0.0 && rho < 1.0, "partial agreement: {rho}");
        assert_eq!(spearman(&x, &[1.0; 6]), 0.0);
    }

    #[test]
    fn midranks_average_over_ties() {
        assert_eq!(
            midranks(&[10.0, 20.0, 20.0, 30.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
    }

    /// Deterministic xorshift for test data; avoids depending on `rand`
    /// inside the core crate's unit tests.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    fn mixed_magnitudes(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                let r = xorshift(&mut s);
                let mag = [(1e-16), 1e-8, 1.0, 1e8, 1e16][(r % 5) as usize];
                let frac = (r >> 11) as f64 / (1u64 << 53) as f64;
                let sign = if r & 1 == 0 { 1.0 } else { -1.0 };
                sign * frac * mag
            })
            .collect()
    }

    #[test]
    fn exact_sum_cancellation() {
        let mut s = ExactSum::new();
        for &x in &[1e16, 1.0, -1e16, 1.0] {
            s.add(x);
        }
        assert_eq!(s.value(), 2.0);
        assert_eq!(ExactSum::new().value(), 0.0);
    }

    #[test]
    fn exact_sum_is_order_invariant() {
        let xs = mixed_magnitudes(0xE5A7, 257);
        let mut forward = ExactSum::new();
        for &x in &xs {
            forward.add(x);
        }
        let reference = forward.value().to_bits();
        // Several deterministic reorderings, including reversal and
        // stride permutations, must round to the same bits.
        let mut reversed = ExactSum::new();
        for &x in xs.iter().rev() {
            reversed.add(x);
        }
        assert_eq!(reversed.value().to_bits(), reference);
        for stride in [3usize, 31, 97] {
            let mut s = ExactSum::new();
            let mut i = 0;
            for _ in 0..xs.len() {
                s.add(xs[i]);
                i = (i + stride) % xs.len();
            }
            assert_eq!(s.value().to_bits(), reference, "stride {stride}");
        }
    }

    #[test]
    fn exact_sum_absorb_matches_flat_sum() {
        let xs = mixed_magnitudes(0xAB5, 100);
        let mut flat = ExactSum::new();
        for &x in &xs {
            flat.add(x);
        }
        for split in [1usize, 17, 50, 99] {
            let (a, b) = xs.split_at(split);
            let mut left = ExactSum::new();
            let mut right = ExactSum::new();
            for &x in a {
                left.add(x);
            }
            for &x in b {
                right.add(x);
            }
            left.absorb(&right);
            assert_eq!(left.value().to_bits(), flat.value().to_bits());
        }
    }

    #[test]
    fn exact_sum_matches_naive_on_well_conditioned_data() {
        let xs: Vec<f64> = (1..=64).map(|i| i as f64 / 8.0).collect();
        let naive: f64 = xs.iter().sum();
        let mut s = ExactSum::new();
        for &x in &xs {
            s.add(x);
        }
        assert_eq!(s.value(), naive);
        assert!(s.partials_len() <= 4);
    }

    #[test]
    fn compensated_sum_recovers_cancelled_tail() {
        let mut s = CompensatedSum::new();
        for &x in &[1e16, 1.0, -1e16, 1.0] {
            s.add(x);
        }
        assert_eq!(s.value(), 2.0);
        let naive: f64 = [1e16, 1.0, -1e16, 1.0].iter().sum();
        assert_eq!(naive, 1.0); // the failure mode the helper exists for
    }
}
