//! The Walsh–Hadamard transform and the orthonormal `ψ_u` basis.

/// The orthonormal Fourier basis function over `F₂ⁿ`:
/// `ψ_u(t) = 2^{−n/2} · (−1)^{u·t}` where `u·t` is the canonical scalar
/// product (parity of `u & t`).
///
/// # Example
///
/// ```
/// use leakage_core::psi;
///
/// assert_eq!(psi(4, 0b0011, 0b0001), -0.25); // one shared bit → −1 · 2⁻²
/// assert_eq!(psi(4, 0b0011, 0b0011), 0.25);  // two shared bits → +1 · 2⁻²
/// ```
pub fn psi(n_bits: usize, u: usize, t: usize) -> f64 {
    let sign = if ((u & t).count_ones() & 1) == 1 {
        -1.0
    } else {
        1.0
    };
    sign * 2f64.powf(-(n_bits as f64) / 2.0)
}

/// In-place fast Walsh–Hadamard butterfly (unnormalized: applying it twice
/// multiplies by `2ⁿ`).
///
/// # Panics
///
/// Panics if `values.len()` is not a power of two.
pub fn walsh_hadamard(values: &mut [f64]) {
    let n = values.len();
    assert!(n.is_power_of_two(), "length {n} is not a power of two");
    let mut h = 1;
    while h < n {
        for block in (0..n).step_by(2 * h) {
            for i in block..block + h {
                let (a, b) = (values[i], values[i + h]);
                values[i] = a + b;
                values[i + h] = a - b;
            }
        }
        h *= 2;
    }
}

/// The orthonormal spectrum of a function tabulated over `F₂ⁿ`:
/// `a_u = 2^{−n/2} Σ_t f(t) (−1)^{u·t}`.
///
/// Satisfies Parseval's identity `Σ_t f(t)² = Σ_u a_u²` and
/// `spectrum_of(spectrum_of(f)) = f` (the transform is an involution).
///
/// # Panics
///
/// Panics if `f.len()` is not a power of two.
///
/// # Example
///
/// ```
/// use leakage_core::spectrum_of;
///
/// // A constant function has only the u = 0 component.
/// let a = spectrum_of(&[3.0, 3.0, 3.0, 3.0]);
/// assert_eq!(a, vec![6.0, 0.0, 0.0, 0.0]);
/// ```
pub fn spectrum_of(f: &[f64]) -> Vec<f64> {
    let mut out = f.to_vec();
    walsh_hadamard(&mut out);
    let scale = 1.0 / (f.len() as f64).sqrt();
    for a in &mut out {
        *a *= scale;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_is_an_involution() {
        let f = vec![1.0, -2.0, 0.5, 3.0, 0.0, 7.0, -1.0, 2.0];
        let once = spectrum_of(&f);
        let twice = spectrum_of(&once);
        for (a, b) in f.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_holds() {
        let f = vec![
            0.3, 1.7, -0.4, 2.2, 0.0, -1.1, 0.9, 0.5, 1.3, -0.7, 0.2, 0.8, -2.0, 0.1, 0.6, -0.9,
        ];
        let a = spectrum_of(&f);
        let ef: f64 = f.iter().map(|x| x * x).sum();
        let ea: f64 = a.iter().map(|x| x * x).sum();
        assert!((ef - ea).abs() < 1e-10, "{ef} vs {ea}");
    }

    #[test]
    fn spectrum_matches_naive_definition() {
        let f = vec![
            0.5, 2.0, -1.0, 4.0, 0.25, -3.0, 1.5, 0.75, 2.5, -0.5, 3.25, 1.0, -2.25, 0.1, -0.6, 1.9,
        ];
        let fast = spectrum_of(&f);
        for (u, &fast_u) in fast.iter().enumerate() {
            let naive: f64 = (0..16usize)
                .map(|t| {
                    let sign = if (u & t).count_ones() % 2 == 1 {
                        -1.0
                    } else {
                        1.0
                    };
                    f[t] * sign
                })
                .sum::<f64>()
                / 4.0;
            assert!((fast_u - naive).abs() < 1e-12, "u={u}");
        }
    }

    #[test]
    fn basis_is_orthonormal() {
        for u in 0..16usize {
            for v in 0..16usize {
                let dot: f64 = (0..16usize)
                    .map(|t| {
                        let su = if (u & t).count_ones() % 2 == 1 {
                            -0.25
                        } else {
                            0.25
                        };
                        let sv = if (v & t).count_ones() % 2 == 1 {
                            -0.25
                        } else {
                            0.25
                        };
                        su * sv
                    })
                    .sum();
                let expect = if u == v { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-12, "u={u} v={v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        walsh_hadamard(&mut [1.0, 2.0, 3.0]);
    }

    #[test]
    fn single_indicator_spreads_evenly() {
        // f = δ₀ → every |a_u| = 2^{-n/2}.
        let mut f = vec![0.0; 16];
        f[0] = 1.0;
        let a = spectrum_of(&f);
        for x in a {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }
}
