//! Spectral-coefficient convergence versus trace count (paper Fig. 3).
//!
//! The estimator `â_u(T)` computed from class means converges to the true
//! coefficient as traces accumulate; the paper observes it is already
//! accurate at 1024 traces. [`coefficient_convergence`] replays that sweep.

use crate::{ClassifiedTraces, LeakageSpectrum};

/// One point of a convergence sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergencePoint {
    /// Number of traces used for the estimate.
    pub traces: usize,
    /// `a_u(t_ref)` for every `u` (including `u = 0`), at the reference
    /// sample.
    pub coefficients: Vec<f64>,
    /// RMS deviation of the non-zero coefficients from the final
    /// (all-trace) estimate.
    pub rms_error_vs_final: f64,
}

/// Sweep the coefficient estimate over increasing trace-count prefixes at
/// one reference sample index.
///
/// `counts` is typically a doubling ladder (16, 32, …, 1024). Counts larger
/// than the stored trace count are clamped.
///
/// # Panics
///
/// Panics if `set` is empty, `counts` is empty, or `t_ref` is out of range.
pub fn coefficient_convergence(
    set: &ClassifiedTraces,
    counts: &[usize],
    t_ref: usize,
) -> Vec<ConvergencePoint> {
    assert!(!set.is_empty() && !counts.is_empty());
    assert!(t_ref < set.samples());
    let final_spectrum = LeakageSpectrum::from_class_means(&set.class_means());
    let final_coeffs: Vec<f64> = (0..final_spectrum.num_sources())
        .map(|u| final_spectrum.coefficient(u, t_ref))
        .collect();
    counts
        .iter()
        .map(|&raw| {
            let n = raw.min(set.len());
            let spectrum = LeakageSpectrum::from_class_means(&set.class_means_of_first(n));
            let coefficients: Vec<f64> = (0..spectrum.num_sources())
                .map(|u| spectrum.coefficient(u, t_ref))
                .collect();
            let rms_error_vs_final = {
                let se: f64 = coefficients
                    .iter()
                    .zip(&final_coeffs)
                    .skip(1)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (se / (coefficients.len() - 1) as f64).sqrt()
            };
            ConvergencePoint {
                traces: n,
                coefficients,
                rms_error_vs_final,
            }
        })
        .collect()
}

/// A doubling ladder `start, 2·start, … ≤ end` (inclusive when `end` is a
/// power-of-two multiple of `start`).
pub fn doubling_counts(start: usize, end: usize) -> Vec<usize> {
    assert!(start > 0 && end >= start);
    let mut v = Vec::new();
    let mut n = start;
    while n <= end {
        v.push(n);
        n *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn doubling_ladder() {
        assert_eq!(doubling_counts(16, 128), vec![16, 32, 64, 128]);
        assert_eq!(doubling_counts(10, 35), vec![10, 20]);
    }

    #[test]
    fn estimates_converge_with_more_traces() {
        // Ground truth: class mean = class index; noisy observations.
        let mut rng = SmallRng::seed_from_u64(42);
        let mut set = ClassifiedTraces::new(16, 1);
        for i in 0..1024usize {
            let class = i % 16;
            let noise: f64 = rng.gen::<f64>() - 0.5;
            set.push(class, vec![class as f64 + 2.0 * noise]);
        }
        let sweep = coefficient_convergence(&set, &doubling_counts(32, 1024), 0);
        let first = sweep.first().expect("non-empty").rms_error_vs_final;
        let last = sweep.last().expect("non-empty").rms_error_vs_final;
        assert!(last < first, "rms {last} !< {first}");
        assert_eq!(sweep.last().expect("non-empty").traces, 1024);
        // The final prefix IS the full set: zero deviation.
        assert!(last < 1e-12);
    }

    #[test]
    fn clamps_oversized_counts() {
        let mut set = ClassifiedTraces::new(2, 1);
        set.push(0, vec![1.0]);
        set.push(1, vec![2.0]);
        let sweep = coefficient_convergence(&set, &[100], 0);
        assert_eq!(sweep[0].traces, 2);
    }
}
