//! The analysis pipeline: sweep → taint → rules → verdicts.

use sbox_circuits::{exhaustive, SboxCircuit};
use sbox_netlist::{cone, NetId, Netlist};

use crate::rules::{Diagnostic, Location, RuleId};
use crate::score::{self, Scores};
use crate::taint::TaintMap;

/// Distributions closer than this to class-independent count as exact
/// (the sweeps are exhaustive, so true zeros are zeros up to rounding).
pub const BIAS_EPS: f64 = 1e-9;

/// How many XOR-family loads one fresh refresh mask legitimately has: the
/// ISW gadget inserts each `r` into exactly two cross-domain partial
/// products. More loads mean the mask serves two masters and can cancel.
pub const FRESH_FANOUT_LIMIT: usize = 2;

/// Pass/fail verdicts of one scheme under the three probe models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdicts {
    /// No driven net has a class-dependent settled value.
    pub value_first_order: bool,
    /// No gate has a class-dependent fan-in joint distribution.
    pub glitch_local: bool,
    /// No output bit's share cones jointly uncover a secret without
    /// fresh randomness.
    pub gx_boundary: bool,
}

impl Verdicts {
    /// Secure against first-order glitch-extended probes: both the local
    /// race-window model and the boundary composition rule are clean.
    pub fn glitch_first_order(&self) -> bool {
        self.glitch_local && self.gx_boundary
    }
}

/// Full analysis result for one circuit.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Scheme label of the analyzed circuit.
    pub label: String,
    /// Netlist name.
    pub netlist_name: String,
    /// Gate count.
    pub gates: usize,
    /// Net count.
    pub nets: usize,
    /// Mask-space width enumerated (bits).
    pub mask_bits: usize,
    /// All findings, grouped by rule in [`RuleId::ALL`] order and sorted
    /// strongest-first within each rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-net settled-value bias.
    pub net_value_bias: Vec<f64>,
    /// Per-gate fan-in joint (transient) bias.
    pub gate_joint_bias: Vec<f64>,
    /// Scheme verdicts.
    pub verdicts: Verdicts,
    /// Static leakage scores.
    pub scores: Scores,
}

impl Analysis {
    /// The diagnostics of one rule, strongest first.
    pub fn of_rule(&self, rule: RuleId) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// Number of findings of one rule.
    pub fn count(&self, rule: RuleId) -> usize {
        self.diagnostics.iter().filter(|d| d.rule == rule).count()
    }

    /// The strongest measure of one rule, or 0 if the rule is silent.
    pub fn max_measure(&self, rule: RuleId) -> f64 {
        self.diagnostics
            .iter()
            .filter(|d| d.rule == rule)
            .map(|d| d.measure)
            .fold(0.0, f64::max)
    }
}

fn net_name_at(netlist: &Netlist, index: usize) -> String {
    match netlist.nets()[index].name() {
        Some(n) => n.to_string(),
        None => format!("net{index}"),
    }
}

fn net_name(netlist: &Netlist, net: NetId) -> String {
    net_name_at(netlist, net.index())
}

fn gate_location(netlist: &Netlist, gate: usize) -> Location {
    let g = &netlist.gates()[gate];
    Location {
        gate: Some(gate),
        cell: Some(g.cell().mnemonic()),
        net: g.output().index(),
        net_name: net_name(netlist, g.output()),
    }
}

fn sort_group(group: &mut [Diagnostic]) {
    group.sort_by(|a, b| {
        b.measure
            .total_cmp(&a.measure)
            .then(a.location.gate.cmp(&b.location.gate))
            .then(a.location.net.cmp(&b.location.net))
    });
}

/// Run the full static analysis on one circuit.
///
/// # Panics
///
/// Panics if the mask space exceeds 16 bits (enumeration bound) or the
/// netlist's ports do not match the encoding.
pub fn analyze(circuit: &SboxCircuit) -> Analysis {
    let netlist = circuit.netlist();
    let encoding = circuit.encoding();
    let counts = exhaustive::sweep(circuit);
    let taint = TaintMap::build(netlist, encoding);
    let net_value_bias = counts.net_value_bias();
    let gate_joint_bias = counts.gate_joint_bias();
    let gate_class_variance = counts.gate_class_variance();

    let mut diagnostics = Vec::new();

    // VALUE-BIAS: settled-value leakage on driven nets.
    let mut group = Vec::new();
    for (i, net) in netlist.nets().iter().enumerate() {
        let bias = net_value_bias[i];
        if net.driver().is_some() && bias > BIAS_EPS {
            group.push(Diagnostic {
                rule: RuleId::ValueBias,
                severity: RuleId::ValueBias.severity(),
                location: Location {
                    gate: net.driver().map(|g| g.index()),
                    cell: net.driver().map(|g| netlist.gate(g).cell().mnemonic()),
                    net: i,
                    net_name: net_name_at(netlist, i),
                },
                measure: bias,
                witness: vec![net_name_at(netlist, i)],
                message: format!("mean settled value shifts by {bias:.3} across classes"),
            });
        }
    }
    sort_group(&mut group);
    diagnostics.append(&mut group);

    // GLITCH-LOCAL: race-window joint-distribution leakage.
    let mut group = Vec::new();
    for (g, gate) in netlist.gates().iter().enumerate() {
        let bias = gate_joint_bias[g];
        if bias > BIAS_EPS {
            group.push(Diagnostic {
                rule: RuleId::GlitchLocal,
                severity: RuleId::GlitchLocal.severity(),
                location: gate_location(netlist, g),
                measure: bias,
                witness: gate
                    .inputs()
                    .iter()
                    .map(|&n| net_name(netlist, n))
                    .collect(),
                message: format!(
                    "fan-in joint distribution shifts by {bias:.3} (total variation) across classes"
                ),
            });
        }
    }
    sort_group(&mut group);
    diagnostics.append(&mut group);

    // SD-RECOMB: complete share recombination without randomness.
    // Trivial (and silent) for unprotected schemes: with one share per
    // bit there is nothing to recombine — value probing already covers
    // them.
    let mut group = Vec::new();
    if encoding.shares_per_bit() >= 2 {
        for (g, gate) in netlist.gates().iter().enumerate() {
            let out = gate.output();
            let covered = taint.fully_covered_bits(taint.shares(out));
            if covered != 0 && taint.fresh(out) == 0 {
                group.push(Diagnostic {
                    rule: RuleId::SdRecomb,
                    severity: RuleId::SdRecomb.severity(),
                    location: gate_location(netlist, g),
                    measure: f64::from(covered.count_ones()) / 4.0,
                    witness: vec![net_name(netlist, out)],
                    message: format!(
                        "glitch-extended cone holds every share of input bit(s) {} and no fresh randomness",
                        nibble_list(covered)
                    ),
                });
            }
        }
    }
    sort_group(&mut group);
    diagnostics.append(&mut group);

    // SD-REUSE: a fresh mask with more XOR-family loads than one refresh
    // duty explains. One diagnostic per implicated load gate, so a
    // mutation that rewires a refresh names the exact gates involved.
    let mut group = Vec::new();
    let roles = encoding.input_roles();
    for (pos, role) in roles.iter().enumerate() {
        if !matches!(role, sbox_circuits::InputRole::Fresh) {
            continue;
        }
        let net = netlist.inputs()[pos];
        let xor_loads: Vec<usize> = netlist.nets()[net.index()]
            .loads()
            .iter()
            .map(|&g| g.index())
            .filter(|&g| matches!(netlist.gates()[g].cell().family(), "XOR" | "XNOR"))
            .collect();
        if xor_loads.len() > FRESH_FANOUT_LIMIT {
            let excess = 1.0 - FRESH_FANOUT_LIMIT as f64 / xor_loads.len() as f64;
            for &g in &xor_loads {
                group.push(Diagnostic {
                    rule: RuleId::SdReuse,
                    severity: RuleId::SdReuse.severity(),
                    location: gate_location(netlist, g),
                    measure: excess,
                    witness: vec![net_name(netlist, net)],
                    message: format!(
                        "refresh mask '{}' has {} XOR loads (limit {}); reuse lets it cancel across domains",
                        net_name(netlist, net),
                        xor_loads.len(),
                        FRESH_FANOUT_LIMIT
                    ),
                });
            }
        }
    }
    sort_group(&mut group);
    diagnostics.append(&mut group);

    // SD-CROSS (advisory): nonlinear cross-domain products.
    let mut group = Vec::new();
    if encoding.shares_per_bit() >= 2 {
        for (g, gate) in netlist.gates().iter().enumerate() {
            if !matches!(gate.cell().family(), "AND" | "OR" | "NAND" | "NOR") {
                continue;
            }
            let pin_domains: Vec<u8> = gate
                .inputs()
                .iter()
                .map(|&n| taint.domains(n))
                .filter(|&d| d != 0)
                .collect();
            let union = pin_domains.iter().fold(0u8, |a, &d| a | d);
            let crosses = pin_domains.len() >= 2 && pin_domains.iter().any(|&d| d != union);
            if crosses {
                group.push(Diagnostic {
                    rule: RuleId::SdCross,
                    severity: RuleId::SdCross.severity(),
                    location: gate_location(netlist, g),
                    measure: f64::from(union.count_ones()) / 4.0,
                    witness: gate.inputs().iter().map(|&n| net_name(netlist, n)).collect(),
                    message: format!(
                        "nonlinear product mixes share domains {{{}}}; sound only under a downstream refresh",
                        domain_list(union)
                    ),
                });
            }
        }
    }
    sort_group(&mut group);
    diagnostics.append(&mut group);

    // GX-BOUNDARY: composition at the output share boundary.
    let mut group = Vec::new();
    let share_groups = encoding.output_share_groups();
    let mut exposed_groups = Vec::new();
    for (bit, ports) in share_groups.iter().enumerate() {
        let union_shares = ports
            .iter()
            .map(|&p| taint.shares(netlist.outputs()[p].1))
            .fold(0u16, |a, s| a | s);
        let union_fresh = ports
            .iter()
            .map(|&p| taint.fresh(netlist.outputs()[p].1))
            .fold(0u64, |a, f| a | f);
        let covered = taint.fully_covered_bits(union_shares);
        if covered != 0 && union_fresh == 0 {
            exposed_groups.push(ports.clone());
            let anchor = netlist.outputs()[ports[0]].1;
            group.push(Diagnostic {
                rule: RuleId::GxBoundary,
                severity: RuleId::GxBoundary.severity(),
                location: Location {
                    gate: netlist.nets()[anchor.index()].driver().map(|g| g.index()),
                    cell: netlist.nets()[anchor.index()]
                        .driver()
                        .map(|g| netlist.gate(g).cell().mnemonic()),
                    net: anchor.index(),
                    net_name: net_name(netlist, anchor),
                },
                measure: f64::from(covered.count_ones()) / 4.0,
                witness: ports
                    .iter()
                    .map(|&p| netlist.outputs()[p].0.clone())
                    .collect(),
                message: format!(
                    "share cones of output bit {bit} jointly hold every share of input bit(s) {} with no fresh randomness",
                    nibble_list(covered)
                ),
            });
        }
    }
    sort_group(&mut group);
    diagnostics.append(&mut group);

    // Exposure: gates inside a flagged boundary group's union cone carry
    // the composition risk, graded by their own share coverage and by
    // the s−1 secret-correlated partial sums an s-share recombination
    // forms in its race window (zero for unprotected one-share schemes,
    // whose leakage the local term already saturates).
    let partial_joins = f64::from(encoding.shares_per_bit() - 1);
    let mut exposure = vec![0.0f64; netlist.gates().len()];
    for ports in &exposed_groups {
        for &p in ports {
            for gid in cone::fanin_gates(netlist, netlist.outputs()[p].1) {
                let g = gid.index();
                let cov = taint.max_coverage(taint.shares(netlist.gates()[g].output()));
                exposure[g] = exposure[g].max(cov * partial_joins);
            }
        }
    }

    let verdicts = Verdicts {
        value_first_order: !diagnostics.iter().any(|d| d.rule == RuleId::ValueBias),
        glitch_local: !diagnostics.iter().any(|d| d.rule == RuleId::GlitchLocal),
        gx_boundary: !diagnostics.iter().any(|d| d.rule == RuleId::GxBoundary),
    };

    let scores = score::score(netlist, &gate_class_variance, &exposure);

    Analysis {
        label: circuit.scheme().label().to_string(),
        netlist_name: netlist.name().to_string(),
        gates: netlist.gates().len(),
        nets: netlist.nets().len(),
        mask_bits: encoding.mask_bits(),
        diagnostics,
        net_value_bias,
        gate_joint_bias,
        verdicts,
        scores,
    }
}

fn nibble_list(bits: u8) -> String {
    let v: Vec<String> = (0..4)
        .filter(|&b| bits >> b & 1 == 1)
        .map(|b| b.to_string())
        .collect();
    v.join(",")
}

fn domain_list(domains: u8) -> String {
    let v: Vec<String> = (0..4)
        .filter(|&s| domains >> s & 1 == 1)
        .map(|s| s.to_string())
        .collect();
    v.join(",")
}
