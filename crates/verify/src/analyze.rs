//! The analysis pipeline: packed sweep → taint → rules → verdicts.
//!
//! [`analyze_subject`] is the generic entry point: any [`Subject`]
//! (native scheme, frontend import, repair candidate) runs through the
//! same catalogue. [`analyze`] is the historical wrapper for the seven
//! hand-built schemes. The pipeline is factored into *statistics*
//! ([`SubjectStats`], computed by the packed engine or copied forward by
//! [`crate::incremental`]) and *diagnosis* ([`finish_analysis`], pure in
//! the statistics) so the incremental re-analyzer provably produces the
//! same reports as a from-scratch run.

use sbox_circuits::{InputRole, SboxCircuit};
use sbox_netlist::{cone, NetId, Netlist};

use crate::packed::PackedSweep;
use crate::rules::{Diagnostic, Location, RuleId};
use crate::score::{self, Scores};
use crate::subject::{Depth, Subject};
use crate::taint::{share_union, ShareSet, TaintMap, MAX_SHARES};

/// Distributions closer than this to class-independent count as exact
/// (the sweeps are exhaustive, so true zeros are zeros up to rounding).
pub const BIAS_EPS: f64 = 1e-9;

/// How many XOR-family loads one fresh refresh mask legitimately has: the
/// ISW gadget inserts each `r` into exactly two cross-domain partial
/// products. More loads mean the mask serves two masters and can cancel.
pub const FRESH_FANOUT_LIMIT: usize = 2;

/// Pass/fail verdicts of one scheme under the three probe models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdicts {
    /// No driven net has a class-dependent settled value.
    pub value_first_order: bool,
    /// No gate has a class-dependent fan-in joint distribution.
    pub glitch_local: bool,
    /// No output bit's share cones jointly uncover a secret without
    /// fresh randomness.
    pub gx_boundary: bool,
}

impl Verdicts {
    /// Secure against first-order glitch-extended probes: both the local
    /// race-window model and the boundary composition rule are clean.
    pub fn glitch_first_order(&self) -> bool {
        self.glitch_local && self.gx_boundary
    }
}

/// The per-entity distribution statistics the enumeration-backed rules
/// consume. One slot per net / gate / output group; all zeros at
/// [`Depth::Structural`], where those rules stay silent.
#[derive(Debug, Clone, PartialEq)]
pub struct SubjectStats {
    /// Per-net settled-value bias ([`PackedSweep::net_value_bias_one`]).
    pub net_value_bias: Vec<f64>,
    /// Per-net held-mask transition bias
    /// ([`PackedSweep::net_transition_bias_one`]).
    pub net_transition_bias: Vec<f64>,
    /// Per-gate fan-in joint (transient) bias.
    pub gate_joint_bias: Vec<f64>,
    /// Per-gate fan-in class-variance mass (the score input).
    pub gate_class_variance: Vec<f64>,
    /// Per-output-group conditional non-uniformity.
    pub group_uniformity: Vec<f64>,
}

impl SubjectStats {
    /// All-zero statistics for a structural-depth subject.
    pub fn zeros(subject: &Subject) -> Self {
        let netlist = subject.netlist();
        Self {
            net_value_bias: vec![0.0; netlist.nets().len()],
            net_transition_bias: vec![0.0; netlist.nets().len()],
            gate_joint_bias: vec![0.0; netlist.gates().len()],
            gate_class_variance: vec![0.0; netlist.gates().len()],
            group_uniformity: vec![0.0; subject.output_groups().len()],
        }
    }

    /// Compute every statistic from a finished packed sweep.
    pub fn compute(subject: &Subject, sweep: &PackedSweep) -> Self {
        let netlist = subject.netlist();
        let net_value_bias: Vec<f64> = (0..netlist.nets().len())
            .map(|n| sweep.net_value_bias_one(n))
            .collect();
        let net_transition_bias: Vec<f64> = (0..netlist.nets().len())
            .map(|n| sweep.net_transition_bias_one(n, subject.net_is_barriered(n)))
            .collect();
        let mut gate_joint_bias = vec![0.0; netlist.gates().len()];
        let mut gate_class_variance = vec![0.0; netlist.gates().len()];
        for (g, gate) in netlist.gates().iter().enumerate() {
            if subject.is_barrier(g) {
                // Barriers do not glitch: their output follows a
                // registered/precharged update, not a race window.
                continue;
            }
            let pins: Vec<usize> = gate.inputs().iter().map(|n| n.index()).collect();
            let stale: Vec<bool> = pins.iter().map(|&n| subject.net_is_barriered(n)).collect();
            gate_joint_bias[g] = sweep.gate_joint_bias_one(&pins, &stale);
            gate_class_variance[g] = sweep.gate_class_variance_one(&pins, &stale);
        }
        let group_uniformity = (0..subject.output_groups().len())
            .map(|g| group_uniformity_stat(subject, sweep, g))
            .collect();
        Self {
            net_value_bias,
            net_transition_bias,
            gate_joint_bias,
            gate_class_variance,
            group_uniformity,
        }
    }
}

/// The SHARE-UNIFORM statistic of one output group (0 when the group is
/// out of the rule's scope: fewer than two shares, no mask space, or
/// more than four ports).
pub fn group_uniformity_stat(subject: &Subject, sweep: &PackedSweep, group: usize) -> f64 {
    let ports = &subject.output_groups()[group];
    if subject.shares_per_bit() < 2 || sweep.mask_count() == 1 {
        return 0.0;
    }
    let nets: Vec<usize> = ports
        .iter()
        .map(|&p| subject.netlist().outputs()[p].1.index())
        .collect();
    sweep.group_uniformity_one(&nets)
}

/// Full analysis result for one subject.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Subject label (scheme label for native circuits).
    pub label: String,
    /// Netlist name.
    pub netlist_name: String,
    /// Gate count.
    pub gates: usize,
    /// Net count.
    pub nets: usize,
    /// Mask-space width enumerated (bits).
    pub mask_bits: usize,
    /// Whether the enumeration rules ran or only the structural passes.
    pub depth: Depth,
    /// All findings, grouped by rule in [`RuleId::ALL`] order and sorted
    /// strongest-first within each rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-net settled-value bias.
    pub net_value_bias: Vec<f64>,
    /// Per-gate fan-in joint (transient) bias.
    pub gate_joint_bias: Vec<f64>,
    /// Scheme verdicts.
    pub verdicts: Verdicts,
    /// Static leakage scores.
    pub scores: Scores,
}

impl Analysis {
    /// The diagnostics of one rule, strongest first.
    pub fn of_rule(&self, rule: RuleId) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// Number of findings of one rule.
    pub fn count(&self, rule: RuleId) -> usize {
        self.diagnostics.iter().filter(|d| d.rule == rule).count()
    }

    /// The strongest measure of one rule, or 0 if the rule is silent.
    pub fn max_measure(&self, rule: RuleId) -> f64 {
        self.diagnostics
            .iter()
            .filter(|d| d.rule == rule)
            .map(|d| d.measure)
            .fold(0.0, f64::max)
    }

    /// Number of Error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == crate::rules::Severity::Error)
            .count()
    }
}

fn net_name_at(netlist: &Netlist, index: usize) -> String {
    match netlist.nets()[index].name() {
        Some(n) => n.to_string(),
        None => format!("net{index}"),
    }
}

fn net_name(netlist: &Netlist, net: NetId) -> String {
    net_name_at(netlist, net.index())
}

fn gate_location(netlist: &Netlist, gate: usize) -> Location {
    let g = &netlist.gates()[gate];
    Location {
        gate: Some(gate),
        cell: Some(g.cell().mnemonic()),
        net: g.output().index(),
        net_name: net_name(netlist, g.output()),
    }
}

fn sort_group(group: &mut [Diagnostic]) {
    group.sort_by(|a, b| {
        b.measure
            .total_cmp(&a.measure)
            .then(a.location.gate.cmp(&b.location.gate))
            .then(a.location.net.cmp(&b.location.net))
    });
}

/// Run the full static analysis on one native scheme circuit.
///
/// # Panics
///
/// Panics if the mask space exceeds 16 bits (enumeration bound) or the
/// netlist's ports do not match the encoding.
pub fn analyze(circuit: &SboxCircuit) -> Analysis {
    analyze_subject(&Subject::of_circuit(circuit))
}

/// Run the full static analysis on any subject, at the depth its size
/// affords.
pub fn analyze_subject(subject: &Subject) -> Analysis {
    let depth = subject.depth();
    let stats = match depth {
        Depth::Exhaustive => {
            let sweep = PackedSweep::run(subject);
            SubjectStats::compute(subject, &sweep)
        }
        Depth::Structural => SubjectStats::zeros(subject),
    };
    finish_analysis(subject, depth, &stats)
}

/// Turn precomputed statistics into the final diagnosed [`Analysis`].
/// Pure in its inputs: the incremental re-analyzer reuses it so an
/// incremental run and a from-scratch run go through one code path.
pub fn finish_analysis(subject: &Subject, depth: Depth, stats: &SubjectStats) -> Analysis {
    let netlist = subject.netlist();
    let taint = TaintMap::build(subject);
    let secret_bits = subject.secret_bits();

    let mut diagnostics = Vec::new();

    // VALUE-BIAS: settled-value leakage on driven nets.
    let mut group = Vec::new();
    for (i, net) in netlist.nets().iter().enumerate() {
        let bias = stats.net_value_bias[i];
        if net.driver().is_some() && bias > BIAS_EPS {
            group.push(Diagnostic {
                rule: RuleId::ValueBias,
                severity: RuleId::ValueBias.severity(),
                location: Location {
                    gate: net.driver().map(|g| g.index()),
                    cell: net.driver().map(|g| netlist.gate(g).cell().mnemonic()),
                    net: i,
                    net_name: net_name_at(netlist, i),
                },
                measure: bias,
                witness: vec![net_name_at(netlist, i)],
                message: format!("mean settled value shifts by {bias:.3} across classes"),
            });
        }
    }
    sort_group(&mut group);
    diagnostics.append(&mut group);

    // GLITCH-LOCAL: race-window joint-distribution leakage.
    let mut group = Vec::new();
    for g in 0..netlist.gates().len() {
        let bias = stats.gate_joint_bias[g];
        if bias > BIAS_EPS {
            group.push(Diagnostic {
                rule: RuleId::GlitchLocal,
                severity: RuleId::GlitchLocal.severity(),
                location: gate_location(netlist, g),
                measure: bias,
                witness: netlist.gates()[g]
                    .inputs()
                    .iter()
                    .map(|&n| net_name(netlist, n))
                    .collect(),
                message: format!(
                    "fan-in joint distribution shifts by {bias:.3} (total variation) across classes"
                ),
            });
        }
    }
    sort_group(&mut group);
    diagnostics.append(&mut group);

    // TRANSITION-HD: class-dependent flip rate under a held mask.
    let mut group = Vec::new();
    for (i, net) in netlist.nets().iter().enumerate() {
        let bias = stats.net_transition_bias[i];
        if net.driver().is_some() && bias > BIAS_EPS {
            let model = if subject.net_is_barriered(i) {
                "precharge"
            } else {
                "held-mask"
            };
            group.push(Diagnostic {
                rule: RuleId::TransitionHd,
                severity: RuleId::TransitionHd.severity(),
                location: Location {
                    gate: net.driver().map(|g| g.index()),
                    cell: net.driver().map(|g| netlist.gate(g).cell().mnemonic()),
                    net: i,
                    net_name: net_name_at(netlist, i),
                },
                measure: bias,
                witness: vec![net_name_at(netlist, i)],
                message: format!(
                    "transition rate spreads by {bias:.3} across class pairs ({model} model)"
                ),
            });
        }
    }
    sort_group(&mut group);
    diagnostics.append(&mut group);

    // SD-RECOMB: complete share recombination without randomness.
    // Trivial (and silent) for unprotected schemes: with one share per
    // bit there is nothing to recombine — value probing already covers
    // them.
    let mut group = Vec::new();
    if subject.shares_per_bit() >= 2 {
        for (g, gate) in netlist.gates().iter().enumerate() {
            let out = gate.output();
            let covered = taint.fully_covered_bits(taint.shares(out));
            if covered != 0 && taint.fresh(out) == 0 {
                group.push(Diagnostic {
                    rule: RuleId::SdRecomb,
                    severity: RuleId::SdRecomb.severity(),
                    location: gate_location(netlist, g),
                    measure: f64::from(covered.count_ones()) / secret_bits as f64,
                    witness: vec![net_name(netlist, out)],
                    message: format!(
                        "glitch-extended cone holds every share of input bit(s) {} and no fresh randomness",
                        bit_list(covered)
                    ),
                });
            }
        }
    }
    sort_group(&mut group);
    diagnostics.append(&mut group);

    // SD-REUSE: a fresh mask with more XOR-family loads than one refresh
    // duty explains. One diagnostic per implicated load gate, so a
    // mutation that rewires a refresh names the exact gates involved.
    let mut group = Vec::new();
    for (pos, role) in subject.roles().iter().enumerate() {
        if !matches!(role, InputRole::Fresh) {
            continue;
        }
        let net = netlist.inputs()[pos];
        let xor_loads: Vec<usize> = netlist.nets()[net.index()]
            .loads()
            .iter()
            .map(|&g| g.index())
            .filter(|&g| matches!(netlist.gates()[g].cell().family(), "XOR" | "XNOR"))
            .collect();
        if xor_loads.len() > FRESH_FANOUT_LIMIT {
            let excess = 1.0 - FRESH_FANOUT_LIMIT as f64 / xor_loads.len() as f64;
            for &g in &xor_loads {
                group.push(Diagnostic {
                    rule: RuleId::SdReuse,
                    severity: RuleId::SdReuse.severity(),
                    location: gate_location(netlist, g),
                    measure: excess,
                    witness: vec![net_name(netlist, net)],
                    message: format!(
                        "refresh mask '{}' has {} XOR loads (limit {}); reuse lets it cancel across domains",
                        net_name(netlist, net),
                        xor_loads.len(),
                        FRESH_FANOUT_LIMIT
                    ),
                });
            }
        }
    }
    sort_group(&mut group);
    diagnostics.append(&mut group);

    // SD-CROSS (advisory): nonlinear cross-domain products.
    let mut group = Vec::new();
    if subject.shares_per_bit() >= 2 {
        for (g, gate) in netlist.gates().iter().enumerate() {
            if !matches!(gate.cell().family(), "AND" | "OR" | "NAND" | "NOR") {
                continue;
            }
            let pin_domains: Vec<u8> = gate
                .inputs()
                .iter()
                .map(|&n| taint.domains(n))
                .filter(|&d| d != 0)
                .collect();
            let union = pin_domains.iter().fold(0u8, |a, &d| a | d);
            let crosses = pin_domains.len() >= 2 && pin_domains.iter().any(|&d| d != union);
            if crosses {
                group.push(Diagnostic {
                    rule: RuleId::SdCross,
                    severity: RuleId::SdCross.severity(),
                    location: gate_location(netlist, g),
                    measure: f64::from(union.count_ones()) / MAX_SHARES as f64,
                    witness: gate.inputs().iter().map(|&n| net_name(netlist, n)).collect(),
                    message: format!(
                        "nonlinear product mixes share domains {{{}}}; sound only under a downstream refresh",
                        domain_list(union)
                    ),
                });
            }
        }
    }
    sort_group(&mut group);
    diagnostics.append(&mut group);

    // SHARE-UNIFORM: output share groups must stay jointly uniform given
    // their recombined value.
    let mut group = Vec::new();
    for (bit, ports) in subject.output_groups().iter().enumerate() {
        let tv = stats.group_uniformity[bit];
        if tv > BIAS_EPS {
            let anchor = netlist.outputs()[ports[0]].1;
            group.push(Diagnostic {
                rule: RuleId::ShareUniform,
                severity: RuleId::ShareUniform.severity(),
                location: Location {
                    gate: netlist.nets()[anchor.index()].driver().map(|g| g.index()),
                    cell: netlist.nets()[anchor.index()]
                        .driver()
                        .map(|g| netlist.gate(g).cell().mnemonic()),
                    net: anchor.index(),
                    net_name: net_name(netlist, anchor),
                },
                measure: tv,
                witness: ports
                    .iter()
                    .map(|&p| netlist.outputs()[p].0.clone())
                    .collect(),
                message: format!(
                    "share group of output bit {bit} deviates from conditional uniformity by {tv:.3} (total variation)"
                ),
            });
        }
    }
    sort_group(&mut group);
    diagnostics.append(&mut group);

    // GX-BOUNDARY: composition at the output share boundary.
    let mut group = Vec::new();
    let mut exposed_groups = Vec::new();
    for (bit, ports) in subject.output_groups().iter().enumerate() {
        let union_shares: ShareSet = ports
            .iter()
            .map(|&p| taint.shares(netlist.outputs()[p].1))
            .fold([0u64; MAX_SHARES], share_union);
        let union_fresh = ports
            .iter()
            .map(|&p| taint.fresh(netlist.outputs()[p].1))
            .fold(0u64, |a, f| a | f);
        let covered = taint.fully_covered_bits(union_shares);
        if covered != 0 && union_fresh == 0 {
            exposed_groups.push(ports.clone());
            let anchor = netlist.outputs()[ports[0]].1;
            group.push(Diagnostic {
                rule: RuleId::GxBoundary,
                severity: RuleId::GxBoundary.severity(),
                location: Location {
                    gate: netlist.nets()[anchor.index()].driver().map(|g| g.index()),
                    cell: netlist.nets()[anchor.index()]
                        .driver()
                        .map(|g| netlist.gate(g).cell().mnemonic()),
                    net: anchor.index(),
                    net_name: net_name(netlist, anchor),
                },
                measure: f64::from(covered.count_ones()) / secret_bits as f64,
                witness: ports
                    .iter()
                    .map(|&p| netlist.outputs()[p].0.clone())
                    .collect(),
                message: format!(
                    "share cones of output bit {bit} jointly hold every share of input bit(s) {} with no fresh randomness",
                    bit_list(covered)
                ),
            });
        }
    }
    sort_group(&mut group);
    diagnostics.append(&mut group);

    // Exposure: gates inside a flagged boundary group's union cone carry
    // the composition risk, graded by their own share coverage and by
    // the s−1 secret-correlated partial sums an s-share recombination
    // forms in its race window (zero for unprotected one-share schemes,
    // whose leakage the local term already saturates).
    let partial_joins = f64::from(subject.shares_per_bit() - 1);
    let mut exposure = vec![0.0f64; netlist.gates().len()];
    for ports in &exposed_groups {
        for &p in ports {
            for gid in cone::fanin_gates(netlist, netlist.outputs()[p].1) {
                let g = gid.index();
                let cov = taint.max_coverage(taint.shares(netlist.gates()[g].output()));
                exposure[g] = exposure[g].max(cov * partial_joins);
            }
        }
    }

    let verdicts = Verdicts {
        value_first_order: !diagnostics.iter().any(|d| d.rule == RuleId::ValueBias),
        glitch_local: !diagnostics.iter().any(|d| d.rule == RuleId::GlitchLocal),
        gx_boundary: !diagnostics.iter().any(|d| d.rule == RuleId::GxBoundary),
    };

    let scores = score::score(netlist, &stats.gate_class_variance, &exposure);

    Analysis {
        label: subject.label().to_string(),
        netlist_name: netlist.name().to_string(),
        gates: netlist.gates().len(),
        nets: netlist.nets().len(),
        mask_bits: subject.mask_bits(),
        depth,
        diagnostics,
        net_value_bias: stats.net_value_bias.clone(),
        gate_joint_bias: stats.gate_joint_bias.clone(),
        verdicts,
        scores,
    }
}

fn bit_list(bits: u64) -> String {
    let v: Vec<String> = (0..64)
        .filter(|&b| bits >> b & 1 == 1)
        .map(|b| b.to_string())
        .collect();
    v.join(",")
}

fn domain_list(domains: u8) -> String {
    let v: Vec<String> = (0..4)
        .filter(|&s| domains >> s & 1 == 1)
        .map(|s| s.to_string())
        .collect();
    v.join(",")
}
