//! The rule catalogue and typed diagnostics the analyzer emits.

/// Identifier of one static-analysis rule.
///
/// Rules split into three layers, mirroring the leakage taxonomy in
/// `DESIGN.md`:
///
/// * *value probing* — [`RuleId::ValueBias`];
/// * *glitch-extended probing* — [`RuleId::GlitchLocal`] (local
///   race-window distributions) and [`RuleId::GxBoundary`] (composition
///   at the share boundary);
/// * *share-domain dataflow* — [`RuleId::SdRecomb`], [`RuleId::SdReuse`],
///   [`RuleId::SdCross`], purely structural checks that need no
///   enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// A driven net's value distribution depends on the unmasked class:
    /// a first-order probe on the settled value leaks.
    ValueBias,
    /// A gate's fan-in *joint* distribution depends on the class: during
    /// the race window after an input transition the gate can transiently
    /// compute any function of that tuple, so a glitch-extended probe on
    /// its output leaks even when every single net is value-unbiased.
    GlitchLocal,
    /// A driven net's *transition* (Hamming-distance) probability between
    /// two consecutive evaluations depends on the class pair when the
    /// mask is held across the transition — the distance-based leakage a
    /// power probe sees on an unrefreshed datapath register or wire.
    /// Synchronization barriers switch the net to the precharge model
    /// (flip probability = ones probability of the new value).
    TransitionHd,
    /// A gate's glitch-extended input cone contains *all* shares of a
    /// secret bit and no fresh randomness — the DOM-style recombination
    /// defect.
    SdRecomb,
    /// A fresh-randomness input is loaded by more XOR-family gates than
    /// one refresh duty accounts for — the mask is reused across domain
    /// crossings, so cancellations can unmask downstream values.
    SdReuse,
    /// Advisory: a nonlinear gate multiplies operands from different
    /// share domains (a cross-domain product). Safe only if composed with
    /// a fresh refresh, as ISW does; reported for audit, not as a defect.
    SdCross,
    /// An output share group's joint distribution is not uniform given
    /// its recombined value for some class: downstream composition can no
    /// longer assume uniformly shared inputs, so any gadget consuming the
    /// group inherits a bias the share count cannot bound.
    ShareUniform,
    /// Composition check at the output boundary: the union of the
    /// glitch-extended cones of one output bit's shares covers every
    /// share of some input bit with no fresh randomness in the union. A
    /// transient observer of the recombination stage sees the secret —
    /// the defect that makes register-free TI glitch-leaky.
    GxBoundary,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 8] = [
        RuleId::ValueBias,
        RuleId::GlitchLocal,
        RuleId::TransitionHd,
        RuleId::SdRecomb,
        RuleId::SdReuse,
        RuleId::SdCross,
        RuleId::ShareUniform,
        RuleId::GxBoundary,
    ];

    /// Stable machine-readable rule code.
    pub const fn code(self) -> &'static str {
        match self {
            RuleId::ValueBias => "VALUE-BIAS",
            RuleId::GlitchLocal => "GLITCH-LOCAL",
            RuleId::TransitionHd => "TRANSITION-HD",
            RuleId::SdRecomb => "SD-RECOMB",
            RuleId::SdReuse => "SD-REUSE",
            RuleId::SdCross => "SD-CROSS",
            RuleId::ShareUniform => "SHARE-UNIFORM",
            RuleId::GxBoundary => "GX-BOUNDARY",
        }
    }

    /// The severity this rule reports at.
    pub const fn severity(self) -> Severity {
        match self {
            RuleId::ValueBias | RuleId::GlitchLocal | RuleId::GxBoundary => Severity::Error,
            RuleId::SdRecomb | RuleId::SdReuse | RuleId::TransitionHd | RuleId::ShareUniform => {
                Severity::Warning
            }
            RuleId::SdCross => Severity::Advice,
        }
    }

    /// One-line description for the human report.
    pub const fn summary(self) -> &'static str {
        match self {
            RuleId::ValueBias => "class-dependent settled value (first-order value probe)",
            RuleId::GlitchLocal => "class-dependent fan-in joint (transient race-window probe)",
            RuleId::TransitionHd => "class-dependent transition rate under a held mask (HD probe)",
            RuleId::SdRecomb => "cone recombines all shares of a bit without fresh randomness",
            RuleId::SdReuse => "refresh mask loaded beyond its single masking duty",
            RuleId::SdCross => "cross-domain product (needs downstream refresh)",
            RuleId::ShareUniform => "output share group not jointly uniform given its value",
            RuleId::GxBoundary => "output-share cones jointly uncover a bit without randomness",
        }
    }
}

/// How seriously a diagnostic should be taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory finding: expected in a sound design, reported for audit.
    Advice,
    /// Structural smell that usually accompanies a leak.
    Warning,
    /// A probe position that provably leaks under the rule's model.
    Error,
}

impl Severity {
    /// Stable lowercase label.
    pub const fn label(self) -> &'static str {
        match self {
            Severity::Advice => "advice",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Where in the netlist a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    /// The gate the finding anchors to (index into
    /// [`sbox_netlist::Netlist::gates`]), if gate-shaped.
    pub gate: Option<usize>,
    /// The cell mnemonic of that gate (`"XOR2"`, …), if gate-shaped.
    pub cell: Option<&'static str>,
    /// The net the probe sits on (index into
    /// [`sbox_netlist::Netlist::nets`]).
    pub net: usize,
    /// The net's port name if it has one, else `net<id>`.
    pub net_name: String,
}

/// One finding: rule, location, strength, and the witness probe set.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Severity (always [`RuleId::severity`] of `rule`).
    pub severity: Severity,
    /// Anchor location.
    pub location: Location,
    /// Rule-specific strength in `[0, 1]` (bias, coverage fraction, …);
    /// diagnostics of one rule sort strongest-first.
    pub measure: f64,
    /// The named signals an adversary would probe to exploit the finding
    /// (the probe set witnessing the violation).
    pub witness: Vec<String>,
    /// Human-readable explanation.
    pub message: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let codes: Vec<&str> = RuleId::ALL.iter().map(|r| r.code()).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
        assert_eq!(RuleId::ValueBias.code(), "VALUE-BIAS");
        assert_eq!(RuleId::GxBoundary.code(), "GX-BOUNDARY");
    }

    #[test]
    fn severity_ordering_reflects_gravity() {
        assert!(Severity::Advice < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }
}
