//! Report rendering: a human-readable table and a byte-stable JSON
//! document.
//!
//! The JSON layout is hand-rolled (the workspace is offline, no serde)
//! with a fixed key order, deterministic float formatting (Rust's
//! shortest-round-trip `Display`), and witness lists capped at
//! [`MAX_WITNESSES`] per rule — so two runs over the same netlist produce
//! byte-identical documents, which is what the pinned CI expectations
//! diff against.

use std::fmt::Write as _;

use crate::analyze::Analysis;
use crate::rules::{Diagnostic, RuleId};
use crate::score::COMPOSITION_WEIGHT;

/// Most witnesses (strongest-first) retained per rule in the JSON
/// report; the summary keeps the full count and max measure.
pub const MAX_WITNESSES: usize = 16;

/// Version tag of the JSON schema, bumped on layout changes so stale
/// pinned expectations fail loudly rather than diffing confusingly.
/// `/2` added the `depth` field and the TRANSITION-HD / SHARE-UNIFORM
/// rule entries.
pub const SCHEMA: &str = "sca-verify/2";

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn verdict(secure: bool) -> &'static str {
    if secure {
        "secure"
    } else {
        "leaky"
    }
}

fn json_diag(d: &Diagnostic) -> String {
    let gate = match d.location.gate {
        Some(g) => g.to_string(),
        None => "null".to_string(),
    };
    let cell = match d.location.cell {
        Some(c) => format!("\"{}\"", esc(c)),
        None => "null".to_string(),
    };
    let witness: Vec<String> = d
        .witness
        .iter()
        .map(|w| format!("\"{}\"", esc(w)))
        .collect();
    format!(
        "{{\"gate\": {gate}, \"cell\": {cell}, \"net\": {net}, \"net_name\": \"{name}\", \"measure\": {measure}, \"witness\": [{wit}], \"message\": \"{msg}\"}}",
        net = d.location.net,
        name = esc(&d.location.net_name),
        measure = d.measure,
        wit = witness.join(", "),
        msg = esc(&d.message),
    )
}

/// Render the stable JSON report.
pub fn json(a: &Analysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"scheme\": \"{}\",", esc(&a.label));
    let _ = writeln!(out, "  \"netlist\": \"{}\",", esc(&a.netlist_name));
    let _ = writeln!(out, "  \"gates\": {},", a.gates);
    let _ = writeln!(out, "  \"nets\": {},", a.nets);
    let _ = writeln!(out, "  \"mask_bits\": {},", a.mask_bits);
    let _ = writeln!(out, "  \"depth\": \"{}\",", a.depth.label());
    let _ = writeln!(out, "  \"verdicts\": {{");
    let _ = writeln!(
        out,
        "    \"value_first_order\": \"{}\",",
        verdict(a.verdicts.value_first_order)
    );
    let _ = writeln!(
        out,
        "    \"glitch_local\": \"{}\",",
        verdict(a.verdicts.glitch_local)
    );
    let _ = writeln!(
        out,
        "    \"gx_boundary\": \"{}\",",
        verdict(a.verdicts.gx_boundary)
    );
    let _ = writeln!(
        out,
        "    \"glitch_first_order\": \"{}\"",
        verdict(a.verdicts.glitch_first_order())
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"score\": {{");
    let _ = writeln!(out, "    \"local\": {},", a.scores.local);
    let _ = writeln!(out, "    \"exposure\": {},", a.scores.exposure);
    let _ = writeln!(out, "    \"total\": {},", a.scores.scheme_score());
    let _ = writeln!(out, "    \"composition_weight\": {COMPOSITION_WEIGHT},");
    let _ = writeln!(
        out,
        "    \"energy_weight_total_fj\": {}",
        a.scores.energy_weight_total
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"rules\": [");
    for (i, rule) in RuleId::ALL.iter().enumerate() {
        let diags = a.of_rule(*rule);
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"rule\": \"{}\",", rule.code());
        let _ = writeln!(out, "      \"severity\": \"{}\",", rule.severity().label());
        let _ = writeln!(out, "      \"count\": {},", diags.len());
        let _ = writeln!(out, "      \"max_measure\": {},", a.max_measure(*rule));
        if diags.is_empty() {
            let _ = writeln!(out, "      \"witnesses\": []");
        } else {
            let _ = writeln!(out, "      \"witnesses\": [");
            let shown = diags.len().min(MAX_WITNESSES);
            for (j, d) in diags[..shown].iter().enumerate() {
                let comma = if j + 1 < shown { "," } else { "" };
                let _ = writeln!(out, "        {}{comma}", json_diag(d));
            }
            let _ = writeln!(out, "      ]");
        }
        let comma = if i + 1 < RuleId::ALL.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Render the human-readable report table.
pub fn human(a: &Analysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} ({}): {} gates, {} nets, mask space 2^{}, {} depth",
        a.label,
        a.netlist_name,
        a.gates,
        a.nets,
        a.mask_bits,
        a.depth.label()
    );
    let _ = writeln!(
        out,
        "  verdicts: value={} glitch-local={} boundary={} glitch-extended={}",
        verdict(a.verdicts.value_first_order),
        verdict(a.verdicts.glitch_local),
        verdict(a.verdicts.gx_boundary),
        verdict(a.verdicts.glitch_first_order()),
    );
    let _ = writeln!(
        out,
        "  score: local={:.6} exposure={:.6} total={:.6}",
        a.scores.local,
        a.scores.exposure,
        a.scores.scheme_score()
    );
    let _ = writeln!(
        out,
        "  {:<13} {:<8} {:>6} {:>8}  finding",
        "rule", "severity", "count", "max"
    );
    for rule in RuleId::ALL {
        let count = a.count(rule);
        let max = if count == 0 {
            "-".to_string()
        } else {
            format!("{:.3}", a.max_measure(rule))
        };
        let _ = writeln!(
            out,
            "  {:<13} {:<8} {:>6} {:>8}  {}",
            rule.code(),
            rule.severity().label(),
            count,
            max,
            rule.summary()
        );
    }
    let top: Vec<&Diagnostic> = a
        .diagnostics
        .iter()
        .filter(|d| d.severity == crate::rules::Severity::Error)
        .take(5)
        .collect();
    if !top.is_empty() {
        let _ = writeln!(out, "  strongest findings:");
        for d in top {
            let gate = match d.location.gate {
                Some(g) => format!("gate {g}"),
                None => "port".to_string(),
            };
            let _ = writeln!(
                out,
                "    [{}] {} {} ({}): {}",
                d.rule.code(),
                gate,
                d.location.net_name,
                d.location.cell.unwrap_or("-"),
                d.message
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use sbox_circuits::{SboxCircuit, Scheme};

    #[test]
    fn json_is_byte_stable_across_runs() {
        let a1 = analyze(&SboxCircuit::build(Scheme::Rsm));
        let a2 = analyze(&SboxCircuit::build(Scheme::Rsm));
        assert_eq!(json(&a1), json(&a2));
        assert_eq!(human(&a1), human(&a2));
    }

    #[test]
    fn json_mentions_every_rule_exactly_once() {
        let a = analyze(&SboxCircuit::build(Scheme::Isw));
        let j = json(&a);
        for rule in RuleId::ALL {
            assert_eq!(
                j.matches(&format!("\"rule\": \"{}\"", rule.code())).count(),
                1
            );
        }
        assert!(j.starts_with("{\n  \"schema\": \"sca-verify/2\""));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
