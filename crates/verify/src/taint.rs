//! Share-domain taint: which shares and which fresh randomness reach
//! each net.
//!
//! Primary inputs are labelled with their [`InputRole`](sbox_circuits::InputRole)
//! (share *s* of secret bit *b*, or fresh randomness); the labels
//! propagate through the gate graph as *cone taint* — net `n` is tainted
//! by every label in its glitch-extended input cone. Because the
//! netlists are combinational with ≤ 64 primary inputs, the whole map
//! reduces to one [`sbox_netlist::cone::input_support_masks`] pass plus
//! a per-net mask intersection.
//!
//! The taint bitset is a [`ShareSet`] — one 64-bit word per share index
//! — so a subject may carry up to 64 secret bits (a full PRESENT layer)
//! at up to [`MAX_SHARES`] shares each.

use sbox_circuits::InputRole;
use sbox_netlist::{cone, NetId};

use crate::subject::Subject;

/// Maximum shares per secret bit the taint bitset supports.
pub const MAX_SHARES: usize = 4;

/// A set of (secret bit, share) labels: `words[s]` bit `b` is set iff
/// share `s` of secret bit `b` is present.
pub type ShareSet = [u64; MAX_SHARES];

/// Union of two share sets.
#[must_use]
pub fn share_union(a: ShareSet, b: ShareSet) -> ShareSet {
    let mut out = a;
    for (o, w) in out.iter_mut().zip(b) {
        *o |= w;
    }
    out
}

/// Per-net share/randomness taint for one subject.
#[derive(Debug, Clone)]
pub struct TaintMap {
    shares_per_bit: u8,
    secret_bits: usize,
    /// Per net: the share labels in the net's input cone.
    shares: Vec<ShareSet>,
    /// Per net: bit `i` set iff *fresh* primary input `i` (by input
    /// position) is in the net's input cone.
    fresh: Vec<u64>,
}

impl TaintMap {
    /// Label the subject's inputs with its roles and propagate.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 64 primary inputs (the cone
    /// support pass is a 64-bit bitset); [`Subject`] construction already
    /// validates role coverage.
    pub fn build(subject: &Subject) -> Self {
        let netlist = subject.netlist();
        let roles = subject.roles();
        let support = cone::input_support_masks(netlist);
        // Per primary-input position: its share label / fresh flag.
        let mut share_of_input = vec![[0u64; MAX_SHARES]; roles.len()];
        let mut fresh_of_input = vec![0u64; roles.len()];
        for (i, role) in roles.iter().enumerate() {
            match *role {
                InputRole::Share { bit, share } => {
                    share_of_input[i][usize::from(share)] |= 1 << bit;
                }
                InputRole::Fresh => fresh_of_input[i] = 1 << i,
            }
        }
        let shares = support
            .iter()
            .map(|&m| {
                share_of_input
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| m >> i & 1 == 1)
                    .fold([0u64; MAX_SHARES], |acc, (_, &s)| share_union(acc, s))
            })
            .collect();
        let fresh = support
            .iter()
            .map(|&m| {
                fresh_of_input
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| m >> i & 1 == 1)
                    .fold(0, |acc, (_, &f)| acc | f)
            })
            .collect();
        Self {
            shares_per_bit: subject.shares_per_bit(),
            secret_bits: subject.secret_bits(),
            shares,
            fresh,
        }
    }

    /// How many shares jointly encode each secret bit in this subject.
    pub fn shares_per_bit(&self) -> u8 {
        self.shares_per_bit
    }

    /// Number of secret bits tracked.
    pub fn secret_bits(&self) -> usize {
        self.secret_bits
    }

    /// The share-taint set of a net.
    pub fn shares(&self, net: NetId) -> ShareSet {
        self.shares[net.index()]
    }

    /// The fresh-randomness taint of a net (bit = fresh input position).
    pub fn fresh(&self, net: NetId) -> u64 {
        self.fresh[net.index()]
    }

    /// Secret bits whose shares are *all* present in the given combined
    /// share taint, as a bitmask over secret bits.
    pub fn fully_covered_bits(&self, taint: ShareSet) -> u64 {
        taint
            .iter()
            .take(usize::from(self.shares_per_bit))
            .fold(u64::MAX, |acc, &w| acc & w)
            & mask_bits(self.secret_bits)
    }

    /// Largest share-coverage fraction over the secret bits for a
    /// combined share taint: 1.0 means some bit's shares are all present.
    pub fn max_coverage(&self, taint: ShareSet) -> f64 {
        (0..self.secret_bits)
            .map(|b| {
                let present = taint
                    .iter()
                    .take(usize::from(self.shares_per_bit))
                    .filter(|&&w| w >> b & 1 == 1)
                    .count() as u32;
                f64::from(present) / f64::from(self.shares_per_bit)
            })
            .fold(0.0, f64::max)
    }

    /// The distinct share *indices* (domains) present in a net's taint,
    /// regardless of which bit they belong to — the DOM notion of the
    /// domains a wire touches.
    pub fn domains(&self, net: NetId) -> u8 {
        self.shares[net.index()]
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w != 0)
            .fold(0u8, |acc, (s, _)| acc | (1 << s))
    }
}

fn mask_bits(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_circuits::{SboxCircuit, Scheme};

    #[test]
    fn isw_refresh_is_fresh_and_shares_split() {
        let c = SboxCircuit::build(Scheme::Isw);
        let subject = Subject::of_circuit(&c);
        let taint = TaintMap::build(&subject);
        // Inputs 0..4 are share 0, 4..8 share 1, 8..12 fresh.
        let nets = c.netlist().inputs();
        for b in 0..4usize {
            let mut s0 = [0u64; MAX_SHARES];
            s0[0] = 1 << b;
            let mut s1 = [0u64; MAX_SHARES];
            s1[1] = 1 << b;
            assert_eq!(taint.shares(nets[b]), s0);
            assert_eq!(taint.shares(nets[4 + b]), s1);
            assert_eq!(taint.shares(nets[8 + b]), [0; MAX_SHARES]);
            assert_ne!(taint.fresh(nets[8 + b]), 0);
        }
    }

    #[test]
    fn coverage_and_domains_on_ti() {
        let c = SboxCircuit::build(Scheme::Ti);
        let subject = Subject::of_circuit(&c);
        let taint = TaintMap::build(&subject);
        assert_eq!(taint.shares_per_bit(), 4);
        // Non-completeness: no single output share's cone covers all
        // four shares of any bit.
        for (_, net) in c.netlist().outputs() {
            assert_eq!(taint.fully_covered_bits(taint.shares(*net)), 0);
            assert!(taint.max_coverage(taint.shares(*net)) <= 0.75);
        }
        // But the union over one output bit's four shares does.
        let groups = c.encoding().output_share_groups();
        let union = groups[0]
            .iter()
            .map(|&p| taint.shares(c.netlist().outputs()[p].1))
            .fold([0u64; MAX_SHARES], share_union);
        assert_ne!(taint.fully_covered_bits(union), 0);
    }

    #[test]
    fn unprotected_bits_are_their_own_cover() {
        let c = SboxCircuit::build(Scheme::Lut);
        let subject = Subject::of_circuit(&c);
        let taint = TaintMap::build(&subject);
        let (_, y0) = &c.netlist().outputs()[0];
        assert_ne!(taint.fully_covered_bits(taint.shares(*y0)), 0);
        assert_eq!(taint.fresh(*y0), 0);
    }
}
