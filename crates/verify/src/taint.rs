//! Share-domain taint: which shares and which fresh randomness reach
//! each net.
//!
//! Primary inputs are labelled with their [`InputRole`] (share *s* of
//! secret bit *b*, or fresh randomness); the labels propagate through the
//! gate graph as *cone taint* — net `n` is tainted by every label in its
//! glitch-extended input cone. Because the netlists are combinational
//! with ≤ 64 primary inputs, the whole map reduces to one
//! [`sbox_netlist::cone::input_support_masks`] pass plus a per-net mask
//! intersection.

use sbox_circuits::{InputEncoding, InputRole};
use sbox_netlist::{cone, NetId, Netlist};

/// Maximum shares per secret bit the taint bitset supports.
pub const MAX_SHARES: usize = 4;

/// Per-net share/randomness taint for one circuit.
#[derive(Debug, Clone)]
pub struct TaintMap {
    shares_per_bit: u8,
    /// Per net: bit `b * MAX_SHARES + s` set iff share `s` of secret bit
    /// `b` is in the net's input cone.
    shares: Vec<u16>,
    /// Per net: bit `i` set iff *fresh* primary input `i` (by input
    /// position) is in the net's input cone.
    fresh: Vec<u64>,
}

impl TaintMap {
    /// Label the inputs of `netlist` with `encoding`'s roles and
    /// propagate.
    ///
    /// # Panics
    ///
    /// Panics if the netlist's input count does not match the encoding
    /// (mutated netlists keep their ports, so transforms stay
    /// compatible).
    pub fn build(netlist: &Netlist, encoding: &InputEncoding) -> Self {
        let roles = encoding.input_roles();
        assert_eq!(
            roles.len(),
            netlist.num_inputs(),
            "encoding roles must cover every primary input"
        );
        let support = cone::input_support_masks(netlist);
        // Per primary-input position: its share label / fresh flag.
        let mut share_of_input = vec![0u16; roles.len()];
        let mut fresh_of_input = vec![0u64; roles.len()];
        for (i, role) in roles.iter().enumerate() {
            match *role {
                InputRole::Share { bit, share } => {
                    share_of_input[i] = 1 << (usize::from(bit) * MAX_SHARES + usize::from(share));
                }
                InputRole::Fresh => fresh_of_input[i] = 1 << i,
            }
        }
        let fold = |mask: u64, per_input: &[u64]| -> u64 {
            per_input
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .fold(0, |acc, (_, &m)| acc | m)
        };
        let shares = support
            .iter()
            .map(|&m| {
                share_of_input
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| m >> i & 1 == 1)
                    .fold(0u16, |acc, (_, &s)| acc | s)
            })
            .collect();
        let fresh = support.iter().map(|&m| fold(m, &fresh_of_input)).collect();
        Self {
            shares_per_bit: encoding.shares_per_bit(),
            shares,
            fresh,
        }
    }

    /// How many shares jointly encode each secret bit in this scheme.
    pub fn shares_per_bit(&self) -> u8 {
        self.shares_per_bit
    }

    /// The share-taint bitset of a net (bit `b * MAX_SHARES + s`).
    pub fn shares(&self, net: NetId) -> u16 {
        self.shares[net.index()]
    }

    /// The fresh-randomness taint of a net (bit = fresh input position).
    pub fn fresh(&self, net: NetId) -> u64 {
        self.fresh[net.index()]
    }

    /// The share indices of secret bit `bit` present in `taint_bits`.
    fn shares_of_bit(taint_bits: u16, bit: usize) -> u16 {
        (taint_bits >> (bit * MAX_SHARES)) & ((1 << MAX_SHARES) - 1)
    }

    /// Secret bits whose shares are *all* present in the given combined
    /// share taint, as a nibble bitmask.
    pub fn fully_covered_bits(&self, taint_bits: u16) -> u8 {
        let full = (1u16 << self.shares_per_bit) - 1;
        (0..4)
            .filter(|&b| Self::shares_of_bit(taint_bits, b) & full == full)
            .fold(0u8, |acc, b| acc | (1 << b))
    }

    /// Largest share-coverage fraction over the four secret bits for a
    /// combined share taint: 1.0 means some bit's shares are all present.
    pub fn max_coverage(&self, taint_bits: u16) -> f64 {
        let full = (1u16 << self.shares_per_bit) - 1;
        (0..4)
            .map(|b| {
                f64::from((Self::shares_of_bit(taint_bits, b) & full).count_ones())
                    / f64::from(self.shares_per_bit)
            })
            .fold(0.0, f64::max)
    }

    /// The distinct share *indices* (domains) present in a net's taint,
    /// regardless of which bit they belong to — the DOM notion of the
    /// domains a wire touches.
    pub fn domains(&self, net: NetId) -> u8 {
        let t = self.shares[net.index()];
        (0..MAX_SHARES)
            .filter(|&s| (0..4).any(|b| t >> (b * MAX_SHARES + s) & 1 == 1))
            .fold(0u8, |acc, s| acc | (1 << s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_circuits::{SboxCircuit, Scheme};

    #[test]
    fn isw_refresh_is_fresh_and_shares_split() {
        let c = SboxCircuit::build(Scheme::Isw);
        let taint = TaintMap::build(c.netlist(), c.encoding());
        // Inputs 0..4 are share 0, 4..8 share 1, 8..12 fresh.
        let nets = c.netlist().inputs();
        for b in 0..4usize {
            assert_eq!(taint.shares(nets[b]), 1 << (b * MAX_SHARES));
            assert_eq!(taint.shares(nets[4 + b]), 1 << (b * MAX_SHARES + 1));
            assert_eq!(taint.shares(nets[8 + b]), 0);
            assert_ne!(taint.fresh(nets[8 + b]), 0);
        }
    }

    #[test]
    fn coverage_and_domains_on_ti() {
        let c = SboxCircuit::build(Scheme::Ti);
        let taint = TaintMap::build(c.netlist(), c.encoding());
        assert_eq!(taint.shares_per_bit(), 4);
        // Non-completeness: no single output share's cone covers all
        // four shares of any bit.
        for (_, net) in c.netlist().outputs() {
            assert_eq!(taint.fully_covered_bits(taint.shares(*net)), 0);
            assert!(taint.max_coverage(taint.shares(*net)) <= 0.75);
        }
        // But the union over one output bit's four shares does.
        let groups = c.encoding().output_share_groups();
        let union = groups[0]
            .iter()
            .map(|&p| taint.shares(c.netlist().outputs()[p].1))
            .fold(0u16, |a, s| a | s);
        assert_ne!(taint.fully_covered_bits(union), 0);
    }

    #[test]
    fn unprotected_bits_are_their_own_cover() {
        let c = SboxCircuit::build(Scheme::Lut);
        let taint = TaintMap::build(c.netlist(), c.encoding());
        let (_, y0) = &c.netlist().outputs()[0];
        assert_ne!(taint.fully_covered_bits(taint.shares(*y0)), 0);
        assert_eq!(taint.fresh(*y0), 0);
    }
}
