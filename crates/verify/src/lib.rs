//! Static masking-security analysis of the S-box netlists.
//!
//! The paper's headline finding is dynamic: masked S-boxes leak almost
//! exclusively through multi-bit (glitch-related) Walsh components, TI
//! worst, ISW best. This crate is the *static* counterpart — a netlist
//! analyzer that predicts which gates can recombine shares of the secret
//! under transient (glitch-extended) probes, without simulating a single
//! trace:
//!
//! 1. **Share-domain taint** ([`taint`]): label every primary input as a
//!    share of a secret bit or as fresh randomness (via
//!    [`sbox_circuits::InputEncoding::input_roles`]) and propagate the
//!    labels through each gate's glitch-extended input cone.
//! 2. **Glitch-extended probing** ([`analyze`], on top of
//!    [`sbox_circuits::exhaustive`]): exhaustively enumerate the mask
//!    space and test, per gate, whether the *joint* distribution of its
//!    fan-in values depends on the unmasked class — the leakage a probe
//!    sees during the race window, which plain value probing provably
//!    misses. A boundary rule ([`rules::RuleId::GxBoundary`]) covers the
//!    composition defect of register-free TI.
//! 3. **Typed diagnostics** ([`rules`], [`report`]): rule ID, severity,
//!    gate/net with names, witness probe set — as a human table and a
//!    byte-stable JSON document pinned in CI ([`expect`]).
//! 4. **Scores** ([`score`]): energy-weighted per-gate glitch scores,
//!    rank-correlated against the dynamic per-gate multi-bit spectrum by
//!    the `verify_correlation` experiment.
//!
//! # Quickstart
//!
//! ```
//! use sbox_circuits::{Scheme, SboxCircuit};
//!
//! let analysis = sca_verify::analyze(&SboxCircuit::build(Scheme::Ti));
//! // TI is value-secure but transient-leaky (registerless composition):
//! assert!(analysis.verdicts.value_first_order);
//! assert!(!analysis.verdicts.glitch_first_order());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod expect;
pub mod incremental;
pub mod packed;
pub mod report;
pub mod rules;
pub mod score;
pub mod subject;
pub mod taint;

pub use analyze::{
    analyze, analyze_subject, finish_analysis, Analysis, SubjectStats, Verdicts, BIAS_EPS,
    FRESH_FANOUT_LIMIT,
};
pub use incremental::{Baseline, ReanalyzeEffort};
pub use packed::PackedSweep;
pub use rules::{Diagnostic, Location, RuleId, Severity};
pub use score::{Scores, COMPOSITION_WEIGHT};
pub use subject::{Depth, Subject};
pub use taint::TaintMap;
