//! `sca-verify` — static masking-security analyzer CLI.
//!
//! ```text
//! sca-verify [SCHEME...] [--json-dir DIR] [--expect-dir DIR] [--check] [--bless] [--no-json] [--quiet]
//! ```
//!
//! With no schemes (or `all`), analyzes all seven netlists. Prints the
//! human report, writes `DIR/<scheme>.json` (default `results/verify`),
//! and with `--check` byte-compares each report against the pinned
//! expectation in `--expect-dir` (default `tests/golden/verify`),
//! exiting nonzero on drift. `--bless` (or `SCA_BLESS=1`) refreshes the
//! pins instead.

use std::path::PathBuf;
use std::process::ExitCode;

use sbox_circuits::{SboxCircuit, Scheme};
use sca_verify::{analyze, expect, report};

struct Options {
    schemes: Vec<Scheme>,
    json_dir: Option<PathBuf>,
    expect_dir: PathBuf,
    check: bool,
    bless: bool,
    quiet: bool,
}

fn parse_scheme(name: &str) -> Option<Scheme> {
    match name.to_lowercase().as_str() {
        "lut" => Some(Scheme::Lut),
        "opt" | "lut-opt" => Some(Scheme::Opt),
        "glut" => Some(Scheme::Glut),
        "rsm" => Some(Scheme::Rsm),
        "rsm-rom" | "rsmrom" => Some(Scheme::RsmRom),
        "isw" => Some(Scheme::Isw),
        "ti" => Some(Scheme::Ti),
        _ => None,
    }
}

fn usage() -> &'static str {
    "usage: sca-verify [SCHEME...] [--json-dir DIR] [--expect-dir DIR] [--check] [--bless] [--no-json] [--quiet]\n\
     SCHEME: all lut lut-opt glut rsm rsm-rom isw ti (default: all)"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        schemes: Vec::new(),
        json_dir: Some(PathBuf::from("results/verify")),
        expect_dir: PathBuf::from("tests/golden/verify"),
        check: false,
        bless: false,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json-dir" => {
                let dir = it.next().ok_or("--json-dir needs a value")?;
                opts.json_dir = Some(PathBuf::from(dir));
            }
            "--expect-dir" => {
                let dir = it.next().ok_or("--expect-dir needs a value")?;
                opts.expect_dir = PathBuf::from(dir);
            }
            "--check" => opts.check = true,
            "--bless" => opts.bless = true,
            "--no-json" => opts.json_dir = None,
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => return Err(usage().to_string()),
            "all" => opts.schemes.extend(Scheme::ALL),
            name => {
                let scheme = parse_scheme(name)
                    .ok_or_else(|| format!("unknown scheme '{name}'\n{}", usage()))?;
                opts.schemes.push(scheme);
            }
        }
    }
    if opts.schemes.is_empty() {
        opts.schemes.extend(Scheme::ALL);
    }
    opts.schemes.dedup();
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let bless = opts.bless || expect::blessing();
    let mut failures = 0usize;
    for &scheme in &opts.schemes {
        let analysis = analyze(&SboxCircuit::build(scheme));
        if !opts.quiet {
            print!("{}", report::human(&analysis));
        }
        let json = report::json(&analysis);
        if let Some(dir) = &opts.json_dir {
            let path = expect::expectation_path(dir, scheme.label());
            if let Err(e) = expect::bless(&path, &json) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        if bless {
            let path = expect::expectation_path(&opts.expect_dir, scheme.label());
            if let Err(e) = expect::bless(&path, &json) {
                eprintln!("error: cannot bless {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            if !opts.quiet {
                println!("  blessed {}", path.display());
            }
        } else if opts.check {
            let path = expect::expectation_path(&opts.expect_dir, scheme.label());
            match expect::check(&path, &json) {
                Ok(()) => {
                    if !opts.quiet {
                        println!("  check ok: {}", path.display());
                    }
                }
                Err(msg) => {
                    eprintln!("MISMATCH [{}]: {msg}", scheme.label());
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "{failures} scheme(s) drifted from pinned expectations; \
             if intentional, refresh with SCA_BLESS=1 sca-verify all"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
