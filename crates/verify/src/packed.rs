//! Packed lane-space sweep: the exhaustive (class × mask) enumeration,
//! 64 mask words per machine word.
//!
//! [`sbox_circuits::exhaustive::sweep`] walks the mask space one word at
//! a time through `Netlist::evaluate_nets`. This engine computes the
//! same statistics bit-for-bit from a *packed* representation: per
//! (net, class) a row of `⌈M/64⌉` u64 words where lane `ℓ` is the net's
//! value under mask word `ℓ` — gates evaluate word-wise in topological
//! order, and histograms are transient popcount folds over the rows.
//! Keeping the rows around (instead of the counts) is what makes the
//! incremental re-analysis in [`crate::incremental`] possible: after a
//! localized edit, clean nets keep their rows (tiled into the grown lane
//! space) and only dirty cones re-evaluate.
//!
//! Every derived `f64` statistic replicates the historical fold order of
//! `exhaustive::SweepCounts` term for term, so the packed engine is a
//! drop-in for the seven native schemes' pinned reports: counts are
//! `u32` (M ≤ 2¹⁶, exact in `f64`), pattern loops pad to 16 entries with
//! trailing zeros (adding `0.0` in ascending order is the identity), and
//! maxima fold with `f64::max` from `0.0`.

use sbox_circuits::InputRole;
use sbox_netlist::CellType;

use crate::subject::{Subject, MAX_MASK_BITS};

/// Maximum cell fan-in, hence `2^4` joint fan-in patterns per gate
/// (mirrors `sbox_circuits::exhaustive::MAX_FANIN_PATTERNS`).
pub const MAX_FANIN_PATTERNS: usize = 16;

/// Lane patterns of the six in-word mask bits: bit `b` of pattern `j` is
/// `(b >> j) & 1`.
const IN_WORD: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// The 64 lane values of mask bit `j` within word `w` of a class row:
/// lane `ℓ = 64w + b` carries mask word `ℓ`, whose bit `j` is
/// `(ℓ >> j) & 1`.
#[must_use]
pub fn mask_bit_word(j: usize, w: usize) -> u64 {
    if j < 6 {
        IN_WORD[j]
    } else if w >> (j - 6) & 1 == 1 {
        !0
    } else {
        0
    }
}

/// Lane geometry of a mask space: words per class row and the validity
/// mask applied to every word (partial when `M < 64`, else all-ones —
/// `M` is a power of two, so larger spaces fill whole words).
#[must_use]
pub fn lane_geometry(mask_bits: usize) -> (usize, u64) {
    let m = 1usize << mask_bits;
    if m >= 64 {
        (m / 64, !0)
    } else {
        (1, (1u64 << m) - 1)
    }
}

/// How each primary input derives its lane row.
#[derive(Debug, Clone)]
enum PortSpec {
    /// A mask-consuming port (`Fresh` or `Share{share ≥ 1}`): the lane
    /// row of one mask bit.
    Mask(usize),
    /// A closing share 0: the secret bit XOR the mask bits of the bit's
    /// other shares.
    Closing { bit: usize, masks: Vec<usize> },
}

/// Per-port lane-row generators for one subject's input contract.
#[derive(Debug, Clone)]
pub struct InputPatterns {
    specs: Vec<PortSpec>,
}

impl InputPatterns {
    /// Build the port specs from the subject's roles (mask bits in port
    /// order, exactly as [`Subject::mask_bit_of_input`] assigns them).
    pub fn of(subject: &Subject) -> Self {
        let mask_of = subject.mask_bit_of_input();
        let mut bit_masks: Vec<Vec<usize>> = vec![Vec::new(); subject.secret_bits()];
        for (i, role) in subject.roles().iter().enumerate() {
            if let InputRole::Share { bit, share } = role {
                if *share >= 1 {
                    if let Some(j) = mask_of[i] {
                        bit_masks[usize::from(*bit)].push(j);
                    }
                }
            }
        }
        let specs = subject
            .roles()
            .iter()
            .enumerate()
            .map(|(i, role)| match role {
                InputRole::Share { bit, share: 0 } => PortSpec::Closing {
                    bit: usize::from(*bit),
                    masks: bit_masks[usize::from(*bit)].clone(),
                },
                _ => PortSpec::Mask(mask_of[i].unwrap_or(0)),
            })
            .collect();
        Self { specs }
    }

    /// Word `w` of primary input `port`'s row under class `t`.
    #[must_use]
    pub fn word(&self, port: usize, t: u64, w: usize) -> u64 {
        match &self.specs[port] {
            PortSpec::Mask(j) => mask_bit_word(*j, w),
            PortSpec::Closing { bit, masks } => {
                let base = if t >> bit & 1 == 1 { !0u64 } else { 0 };
                masks.iter().fold(base, |acc, &j| acc ^ mask_bit_word(j, w))
            }
        }
    }
}

/// Evaluate one cell word-wise over up to four pin words.
#[must_use]
pub fn eval_cell_words(cell: CellType, pins: &[u64]) -> u64 {
    use CellType::*;
    match cell {
        Inv => !pins[0],
        Buf => pins[0],
        And2 => pins[0] & pins[1],
        And3 => pins[0] & pins[1] & pins[2],
        And4 => pins[0] & pins[1] & pins[2] & pins[3],
        Or2 => pins[0] | pins[1],
        Or3 => pins[0] | pins[1] | pins[2],
        Or4 => pins[0] | pins[1] | pins[2] | pins[3],
        Nand2 => !(pins[0] & pins[1]),
        Nand3 => !(pins[0] & pins[1] & pins[2]),
        Nand4 => !(pins[0] & pins[1] & pins[2] & pins[3]),
        Nor2 => !(pins[0] | pins[1]),
        Nor3 => !(pins[0] | pins[1] | pins[2]),
        Nor4 => !(pins[0] | pins[1] | pins[2] | pins[3]),
        Xor2 => pins[0] ^ pins[1],
        Xnor2 => !(pins[0] ^ pins[1]),
    }
}

/// The packed rows of one full sweep, plus the popcount statistics the
/// rules consume.
#[derive(Debug, Clone)]
pub struct PackedSweep {
    classes: usize,
    mask_count: u32,
    words_per_class: usize,
    valid: u64,
    rows: Vec<Vec<u64>>,
}

impl PackedSweep {
    /// Evaluate the whole (class × mask) space of an exhaustive-depth
    /// subject.
    ///
    /// # Panics
    ///
    /// Panics if the subject exceeds the enumeration budgets
    /// ([`Subject::depth`] must be `Exhaustive` — callers gate on it).
    pub fn run(subject: &Subject) -> Self {
        let netlist = subject.netlist();
        let mask_bits = subject.mask_bits();
        assert!(mask_bits <= MAX_MASK_BITS, "mask space too large to pack");
        let classes = subject.num_classes();
        let mask_count = 1u32 << mask_bits;
        let (words_per_class, valid) = lane_geometry(mask_bits);
        let total = classes * words_per_class;
        let patterns = InputPatterns::of(subject);
        let mut rows: Vec<Vec<u64>> = vec![Vec::new(); netlist.nets().len()];
        for (i, &net) in netlist.inputs().iter().enumerate() {
            let mut row = vec![0u64; total];
            for t in 0..classes {
                for w in 0..words_per_class {
                    row[t * words_per_class + w] = patterns.word(i, t as u64, w);
                }
            }
            rows[net.index()] = row;
        }
        for &gid in netlist.topo_order() {
            let gate = netlist.gate(gid);
            let cell = gate.cell();
            let mut out = vec![0u64; total];
            let mut pins = [0u64; 4];
            for (k, slot) in out.iter_mut().enumerate() {
                for (p, &n) in gate.inputs().iter().enumerate() {
                    pins[p] = rows[n.index()][k];
                }
                *slot = eval_cell_words(cell, &pins[..gate.inputs().len()]);
            }
            rows[gate.output().index()] = out;
        }
        Self {
            classes,
            mask_count,
            words_per_class,
            valid,
            rows,
        }
    }

    /// Assemble a sweep from externally produced rows (the incremental
    /// engine's tiled + re-evaluated rows). Rows must be class-major with
    /// `classes × ⌈2^mask_bits / 64⌉` words per net.
    pub fn from_rows(classes: usize, mask_bits: usize, rows: Vec<Vec<u64>>) -> Self {
        let (words_per_class, valid) = lane_geometry(mask_bits);
        Self {
            classes,
            mask_count: 1u32 << mask_bits,
            words_per_class,
            valid,
            rows,
        }
    }

    /// Number of unmasked classes enumerated.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of mask words enumerated per class.
    pub fn mask_count(&self) -> u32 {
        self.mask_count
    }

    /// Words per (net, class) row.
    pub fn words_per_class(&self) -> usize {
        self.words_per_class
    }

    /// Validity mask applied to every row word.
    pub fn valid(&self) -> u64 {
        self.valid
    }

    /// The full packed row of a net (class-major, `classes ×
    /// words_per_class` words).
    pub fn net_row(&self, net: usize) -> &[u64] {
        &self.rows[net]
    }

    /// One class's row slice of a net.
    pub fn class_row(&self, net: usize, t: usize) -> &[u64] {
        let w = self.words_per_class;
        &self.rows[net][t * w..(t + 1) * w]
    }

    /// Per-class ones count of a net (lane popcount).
    pub fn net_ones(&self, net: usize) -> Vec<u32> {
        (0..self.classes)
            .map(|t| {
                self.class_row(net, t)
                    .iter()
                    .map(|&w| (w & self.valid).count_ones())
                    .sum()
            })
            .collect()
    }

    /// Worst-case settled-value bias of one net:
    /// `max_t |P(net = 1 | t) − P(net = 1 | 0)|`, replicating
    /// `SweepCounts::net_value_bias` term for term.
    pub fn net_value_bias_one(&self, net: usize) -> f64 {
        let denom = f64::from(self.mask_count);
        let ones = self.net_ones(net);
        let p0 = f64::from(ones[0]) / denom;
        ones.iter()
            .map(|&c| (f64::from(c) / denom - p0).abs())
            .fold(0.0, f64::max)
    }

    /// Held-mask transition bias of one net: the spread of the Hamming-
    /// distance probability `P(net flips | class 0 → class t)` over
    /// `t ≥ 1`, under a mask held across the transition. For a net
    /// driven by a synchronization barrier (`barriered`), the precharge
    /// model applies instead: the wire returns to 0 between evaluations,
    /// so the flip probability is the ones probability of the new class.
    pub fn net_transition_bias_one(&self, net: usize, barriered: bool) -> f64 {
        if self.classes < 2 {
            return 0.0;
        }
        let denom = f64::from(self.mask_count);
        let row0 = self.class_row(net, 0);
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        for t in 1..self.classes {
            let flips: u32 = if barriered {
                self.class_row(net, t)
                    .iter()
                    .map(|&w| (w & self.valid).count_ones())
                    .sum()
            } else {
                self.class_row(net, t)
                    .iter()
                    .zip(row0)
                    .map(|(&w, &w0)| ((w ^ w0) & self.valid).count_ones())
                    .sum()
            };
            let p = f64::from(flips) / denom;
            max = max.max(p);
            min = min.min(p);
        }
        max - min
    }

    /// Fan-in joint histogram over the given pin nets under class `t`,
    /// padded to [`MAX_FANIN_PATTERNS`] entries (pin 0 = LSB). Pins
    /// listed in `stale` substitute their class-0 row — the barrier
    /// model: a barriered pin still holds the previous evaluation's
    /// value during the consuming gate's race window.
    pub fn pattern_row(
        &self,
        pins: &[usize],
        t: usize,
        stale: &[bool],
    ) -> [u32; MAX_FANIN_PATTERNS] {
        let k = pins.len();
        let mut counts = [0u32; MAX_FANIN_PATTERNS];
        for (p, slot) in counts.iter_mut().enumerate().take(1 << k) {
            let mut acc = vec![self.valid; self.words_per_class];
            for (pin, &net) in pins.iter().enumerate() {
                let cls = if stale.get(pin).copied().unwrap_or(false) {
                    0
                } else {
                    t
                };
                let row = self.class_row(net, cls);
                for (a, &w) in acc.iter_mut().zip(row) {
                    *a &= if p >> pin & 1 == 1 { w } else { !w };
                }
            }
            *slot = acc.iter().map(|&w| w.count_ones()).sum();
        }
        counts
    }

    /// Worst-case transient bias of a fan-in joint distribution (largest
    /// total-variation distance of any class against class 0),
    /// replicating `SweepCounts::gate_joint_bias` term for term.
    pub fn gate_joint_bias_one(&self, pins: &[usize], stale: &[bool]) -> f64 {
        let denom = f64::from(self.mask_count);
        let row0 = self.pattern_row(pins, 0, stale);
        (1..self.classes)
            .map(|t| {
                let row = self.pattern_row(pins, t, stale);
                (0..MAX_FANIN_PATTERNS)
                    .map(|p| (f64::from(row[p]) - f64::from(row0[p])).abs() / denom)
                    .sum::<f64>()
                    / 2.0
            })
            .fold(0.0, f64::max)
    }

    /// Class-variance mass of a fan-in joint distribution, replicating
    /// `SweepCounts::gate_class_variance` term for term.
    pub fn gate_class_variance_one(&self, pins: &[usize], stale: &[bool]) -> f64 {
        let denom = f64::from(self.mask_count);
        let per_class: Vec<[u32; MAX_FANIN_PATTERNS]> = (0..self.classes)
            .map(|t| self.pattern_row(pins, t, stale))
            .collect();
        (0..MAX_FANIN_PATTERNS)
            .map(|p| {
                let probs: Vec<f64> = (0..self.classes)
                    .map(|t| f64::from(per_class[t][p]) / denom)
                    .collect();
                let mean = probs.iter().sum::<f64>() / self.classes as f64;
                probs.iter().map(|q| (q - mean) * (q - mean)).sum::<f64>() / self.classes as f64
            })
            .sum()
    }

    /// Worst-case share-group non-uniformity: for each class, the
    /// total-variation distance between the joint distribution of the
    /// group's nets and the parity-preserving uniform ideal (mass of each
    /// XOR value spread evenly over its `2^(k−1)` patterns). Zero means
    /// the shares are jointly uniform given their recombined value — the
    /// uniformity a sound masking must provide.
    pub fn group_uniformity_one(&self, nets: &[usize]) -> f64 {
        let k = nets.len();
        if !(2..=4).contains(&k) {
            return 0.0;
        }
        let denom = f64::from(self.mask_count);
        let half = f64::from(1u32 << (k - 1));
        let mut worst = 0.0f64;
        for t in 0..self.classes {
            let mut counts = [0u32; MAX_FANIN_PATTERNS];
            for (p, slot) in counts.iter_mut().enumerate().take(1 << k) {
                let mut acc = vec![self.valid; self.words_per_class];
                for (pin, &net) in nets.iter().enumerate() {
                    let row = self.class_row(net, t);
                    for (a, &w) in acc.iter_mut().zip(row) {
                        *a &= if p >> pin & 1 == 1 { w } else { !w };
                    }
                }
                *slot = acc.iter().map(|&w| w.count_ones()).sum();
            }
            let parity_mass: [u32; 2] = (0..1usize << k).fold([0u32; 2], |mut acc, p| {
                acc[(p.count_ones() & 1) as usize] += counts[p];
                acc
            });
            let tv = (0..1usize << k)
                .map(|p| {
                    let ideal = f64::from(parity_mass[(p.count_ones() & 1) as usize]) / half;
                    (f64::from(counts[p]) - ideal).abs() / denom
                })
                .sum::<f64>()
                / 2.0;
            worst = worst.max(tv);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_circuits::{exhaustive, SboxCircuit, Scheme};

    #[test]
    fn packed_statistics_are_bit_identical_to_the_scalar_sweep() {
        for scheme in [Scheme::Lut, Scheme::Glut, Scheme::Rsm, Scheme::Isw] {
            let circuit = SboxCircuit::build(scheme);
            let subject = Subject::of_circuit(&circuit);
            let counts = exhaustive::sweep(&circuit);
            let packed = PackedSweep::run(&subject);
            assert_eq!(packed.mask_count(), counts.mask_count(), "{scheme}");
            let netlist = circuit.netlist();
            let scalar_net = counts.net_value_bias();
            for (n, scalar) in scalar_net.iter().enumerate().take(netlist.nets().len()) {
                assert_eq!(
                    packed.net_value_bias_one(n).to_bits(),
                    scalar.to_bits(),
                    "{scheme} net {n}"
                );
            }
            let scalar_joint = counts.gate_joint_bias();
            let scalar_var = counts.gate_class_variance();
            let no_stale = [false; 4];
            for (g, gate) in netlist.gates().iter().enumerate() {
                let pins: Vec<usize> = gate.inputs().iter().map(|n| n.index()).collect();
                assert_eq!(
                    packed.gate_joint_bias_one(&pins, &no_stale).to_bits(),
                    scalar_joint[g].to_bits(),
                    "{scheme} gate {g} joint"
                );
                assert_eq!(
                    packed.gate_class_variance_one(&pins, &no_stale).to_bits(),
                    scalar_var[g].to_bits(),
                    "{scheme} gate {g} variance"
                );
            }
        }
    }

    #[test]
    fn lane_geometry_covers_small_and_large_spaces() {
        assert_eq!(lane_geometry(0), (1, 1));
        assert_eq!(lane_geometry(2), (1, 0b1111));
        assert_eq!(lane_geometry(6), (1, !0));
        assert_eq!(lane_geometry(12), (64, !0));
    }

    #[test]
    fn uniform_shares_have_zero_group_nonuniformity() {
        // ISW output share pairs are jointly uniform given their XOR.
        let circuit = SboxCircuit::build(Scheme::Isw);
        let subject = Subject::of_circuit(&circuit);
        let packed = PackedSweep::run(&subject);
        for group in subject.output_groups() {
            let nets: Vec<usize> = group
                .iter()
                .map(|&p| subject.netlist().outputs()[p].1.index())
                .collect();
            let tv = packed.group_uniformity_one(&nets);
            assert!(tv < 1e-9, "ISW group {group:?}: tv {tv}");
        }
    }
}
