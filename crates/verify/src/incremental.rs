//! Incremental cone-scoped re-analysis.
//!
//! The repair searcher verifies hundreds of patched netlists that differ
//! from a common base by a handful of gates. A [`Baseline`] captures the
//! base subject's packed rows and per-entity statistics once; each
//! [`Baseline::reanalyze`] call then:
//!
//! 1. **aligns** the candidate against the base — gates match while cell
//!    type, input net ids, and barrier flag are identical (patches append
//!    inputs/gates or rewire pins in place, so ids are stable up to the
//!    first edit);
//! 2. **dirties** the fan-out cones: an edited/new gate dirties its
//!    output net, and dirt propagates along the topological order
//!    (`NetId`-keyed dirty set);
//! 3. **re-evaluates** only dirty nets; clean nets *tile* their baseline
//!    row into the candidate's lane space (a patch may add mask bits —
//!    appended inputs take the high mask bits, so the old space embeds as
//!    the low lanes of each new block and the row replicates exactly);
//! 4. **recomputes** statistics only for entities touching dirt, copying
//!    the baseline `f64` for the rest. Copying is *exact*, not
//!    approximate: counts and denominators both scale by the same power
//!    of two under lane growth, so the quotients round identically.
//!
//! The result goes through the same [`finish_analysis`] as a from-scratch
//! run, so an incremental report is byte-identical to a full one — the
//! property test at `tests/incremental_property.rs` and the bench oracle
//! in `BENCH_repair.json` pin it.

use std::collections::HashMap;

use crate::analyze::{analyze_subject, finish_analysis, Analysis, SubjectStats};
use crate::packed::{eval_cell_words, lane_geometry, InputPatterns, PackedSweep};
use crate::subject::{Depth, Subject};

/// A base subject's full analysis state, reusable across many candidate
/// re-analyses.
#[derive(Debug, Clone)]
pub struct Baseline {
    subject: Subject,
    depth: Depth,
    sweep: Option<PackedSweep>,
    stats: SubjectStats,
}

/// How much of a candidate the incremental pass actually re-ran — the
/// observability hook for the speedup claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReanalyzeEffort {
    /// Nets whose rows were re-evaluated.
    pub dirty_nets: usize,
    /// Total nets in the candidate.
    pub total_nets: usize,
    /// Gates whose histograms were recomputed.
    pub dirty_gates: usize,
    /// Total gates in the candidate.
    pub total_gates: usize,
}

impl Baseline {
    /// Analyze the base subject once and capture rows + statistics.
    pub fn new(subject: Subject) -> Self {
        let depth = subject.depth();
        let (sweep, stats) = match depth {
            Depth::Exhaustive => {
                let sweep = PackedSweep::run(&subject);
                let stats = SubjectStats::compute(&subject, &sweep);
                (Some(sweep), stats)
            }
            Depth::Structural => (None, SubjectStats::zeros(&subject)),
        };
        Self {
            subject,
            depth,
            sweep,
            stats,
        }
    }

    /// The base subject.
    pub fn subject(&self) -> &Subject {
        &self.subject
    }

    /// The base subject's own analysis (identical to
    /// [`analyze_subject`] on it).
    pub fn base_analysis(&self) -> Analysis {
        finish_analysis(&self.subject, self.depth, &self.stats)
    }

    /// Re-analyze a candidate subject derived from the base by a
    /// localized edit. Falls back to a full run when the candidate is
    /// structural-depth (the enumeration work the cache saves does not
    /// exist there) or its lane space shrank/reordered.
    pub fn reanalyze(&self, candidate: &Subject) -> (Analysis, ReanalyzeEffort) {
        let depth = candidate.depth();
        let full = |a: Analysis| {
            let effort = ReanalyzeEffort {
                dirty_nets: a.nets,
                total_nets: a.nets,
                dirty_gates: a.gates,
                total_gates: a.gates,
            };
            (a, effort)
        };
        let (Depth::Exhaustive, Some(base_sweep)) = (depth, self.sweep.as_ref()) else {
            return full(analyze_subject(candidate));
        };
        let base = self.subject.netlist();
        let cand = candidate.netlist();
        let base_mask_bits = self.subject.mask_bits();
        let cand_mask_bits = candidate.mask_bits();
        if cand_mask_bits < base_mask_bits
            || candidate.num_classes() != self.subject.num_classes()
            || prefix_roles_differ(&self.subject, candidate)
        {
            return full(analyze_subject(candidate));
        }

        // 1. Alignment: which gates are unchanged (same id, cell, pins,
        // output net, barrier flag)? The output-net check matters when a
        // candidate was rebuilt with shifted net ids (e.g. a rewire after
        // an input-appending patch): a gate whose pins happen to match by
        // id but whose output moved must not tile the base row at the
        // old position.
        let mut gate_clean = vec![false; cand.gates().len()];
        for (g, cg) in cand.gates().iter().enumerate() {
            if let Some(bg) = base.gates().get(g) {
                gate_clean[g] = cg.cell() == bg.cell()
                    && cg.output().index() == bg.output().index()
                    && cg.inputs().iter().map(|n| n.index()).collect::<Vec<_>>()
                        == bg.inputs().iter().map(|n| n.index()).collect::<Vec<_>>()
                    && candidate.is_barrier(g) == self.subject.is_barrier(g);
            }
        }

        // 2. Dirty propagation over the topological order. New inputs and
        // nets beyond the base net count are always dirty; an unchanged
        // gate becomes dirty if any of its pins is.
        let mut net_dirty = vec![false; cand.nets().len()];
        for &net in &cand.inputs()[base.num_inputs()..] {
            net_dirty[net.index()] = true;
        }
        for d in net_dirty.iter_mut().skip(base.nets().len()) {
            *d = true;
        }
        let mut gate_dirty = vec![false; cand.gates().len()];
        for &gid in cand.topo_order() {
            let g = gid.index();
            let gate = cand.gate(gid);
            let dirty = !gate_clean[g] || gate.inputs().iter().any(|n| net_dirty[n.index()]);
            if dirty {
                gate_dirty[g] = true;
                net_dirty[gate.output().index()] = true;
            }
        }

        // 3. Rows: tile clean nets into the (possibly grown) lane space,
        // re-evaluate dirty ones in topological order.
        let classes = candidate.num_classes();
        let (wpc, _valid) = lane_geometry(cand_mask_bits);
        let total = classes * wpc;
        let growth = cand_mask_bits - base_mask_bits;
        let mut rows: HashMap<usize, Vec<u64>> = HashMap::new();
        let patterns = InputPatterns::of(candidate);
        for (i, &net) in cand.inputs().iter().enumerate() {
            let n = net.index();
            if !net_dirty[n] {
                continue;
            }
            let mut row = vec![0u64; total];
            for t in 0..classes {
                for w in 0..wpc {
                    row[t * wpc + w] = patterns.word(i, t as u64, w);
                }
            }
            rows.insert(n, row);
        }
        // Clean-net rows materialize lazily through this closure-free
        // two-phase walk: dirty gates may read clean pins, so tile those
        // on demand.
        let tile = |base_row: &[u64]| tile_row(base_row, self.subject.mask_bits(), growth, classes);
        let ensure_row = |rows: &mut HashMap<usize, Vec<u64>>, n: usize| {
            rows.entry(n).or_insert_with(|| tile(base_sweep.net_row(n)));
        };
        let mut dirty_net_count = cand
            .inputs()
            .iter()
            .filter(|n| net_dirty[n.index()])
            .count();
        for &gid in cand.topo_order() {
            let g = gid.index();
            if !gate_dirty[g] {
                continue;
            }
            let gate = cand.gate(gid);
            for &pin in gate.inputs() {
                ensure_row(&mut rows, pin.index());
            }
            let mut out = vec![0u64; total];
            let mut pins = [0u64; 4];
            for (k, slot) in out.iter_mut().enumerate() {
                for (p, &n) in gate.inputs().iter().enumerate() {
                    pins[p] = rows[&n.index()][k];
                }
                *slot = eval_cell_words(gate.cell(), &pins[..gate.inputs().len()]);
            }
            rows.insert(gate.output().index(), out);
            dirty_net_count += 1;
        }

        // Assemble a full sweep for the statistics pass: clean nets tile
        // their baseline rows (cheap replication), dirty nets take the
        // freshly evaluated ones.
        let all_rows: Vec<Vec<u64>> = (0..cand.nets().len())
            .map(|n| match rows.remove(&n) {
                Some(r) => r,
                None => tile(base_sweep.net_row(n)),
            })
            .collect();
        let sweep = PackedSweep::from_rows(classes, cand_mask_bits, all_rows);

        // 4. Statistics: recompute dirty entities, copy the rest. The
        // copies are exact under lane growth (counts and denominators
        // scale by the same 2^growth).
        let mut stats = SubjectStats::zeros(candidate);
        let barrier_unchanged = |n: usize| {
            n < base.nets().len()
                && self.subject.net_is_barriered(n) == candidate.net_is_barriered(n)
        };
        for (n, &n_dirty) in net_dirty.iter().enumerate() {
            if !n_dirty && barrier_unchanged(n) {
                stats.net_value_bias[n] = self.stats.net_value_bias[n];
                stats.net_transition_bias[n] = self.stats.net_transition_bias[n];
            } else {
                stats.net_value_bias[n] = sweep.net_value_bias_one(n);
                stats.net_transition_bias[n] =
                    sweep.net_transition_bias_one(n, candidate.net_is_barriered(n));
            }
        }
        let mut dirty_gate_count = 0usize;
        for (g, gate) in cand.gates().iter().enumerate() {
            let pins_dirty = gate.inputs().iter().any(|n| net_dirty[n.index()]);
            let stale_changed = !gate.inputs().iter().all(|n| barrier_unchanged(n.index()));
            if gate_clean[g] && !pins_dirty && !stale_changed {
                stats.gate_joint_bias[g] = self.stats.gate_joint_bias[g];
                stats.gate_class_variance[g] = self.stats.gate_class_variance[g];
                continue;
            }
            dirty_gate_count += 1;
            if candidate.is_barrier(g) {
                continue;
            }
            let pins: Vec<usize> = gate.inputs().iter().map(|n| n.index()).collect();
            let stale: Vec<bool> = pins
                .iter()
                .map(|&n| candidate.net_is_barriered(n))
                .collect();
            stats.gate_joint_bias[g] = sweep.gate_joint_bias_one(&pins, &stale);
            stats.gate_class_variance[g] = sweep.gate_class_variance_one(&pins, &stale);
        }
        for (gi, ports) in candidate.output_groups().iter().enumerate() {
            let same_group = self
                .subject
                .output_groups()
                .get(gi)
                .is_some_and(|b| b == ports);
            let any_dirty = ports
                .iter()
                .any(|&p| net_dirty[cand.outputs()[p].1.index()]);
            if same_group && !any_dirty && gi < self.stats.group_uniformity.len() {
                stats.group_uniformity[gi] = self.stats.group_uniformity[gi];
            } else {
                stats.group_uniformity[gi] =
                    crate::analyze::group_uniformity_stat(candidate, &sweep, gi);
            }
        }

        let analysis = finish_analysis(candidate, depth, &stats);
        let effort = ReanalyzeEffort {
            dirty_nets: dirty_net_count,
            total_nets: cand.nets().len(),
            dirty_gates: dirty_gate_count,
            total_gates: cand.gates().len(),
        };
        (analysis, effort)
    }
}

/// Do the candidate's roles disagree with the base on the shared port
/// prefix (which would reorder mask bits and invalidate row tiling)?
fn prefix_roles_differ(base: &Subject, cand: &Subject) -> bool {
    let n = base.roles().len();
    cand.roles().len() < n || cand.roles()[..n] != base.roles()[..n]
}

/// Replicate a base row into a lane space grown by `growth` mask bits:
/// the new bits are the high bits, so each class block of the new row is
/// `2^growth` copies of the old block. Handles sub-word replication when
/// the old block is narrower than a word.
fn tile_row(base_row: &[u64], base_mask_bits: usize, growth: usize, classes: usize) -> Vec<u64> {
    if growth == 0 {
        return base_row.to_vec();
    }
    let (base_wpc, base_valid) = lane_geometry(base_mask_bits);
    let (new_wpc, _) = lane_geometry(base_mask_bits + growth);
    let mut out = vec![0u64; classes * new_wpc];
    for t in 0..classes {
        let src = &base_row[t * base_wpc..(t + 1) * base_wpc];
        let dst = &mut out[t * new_wpc..(t + 1) * new_wpc];
        if base_mask_bits >= 6 {
            // Whole-word replication.
            for (i, slot) in dst.iter_mut().enumerate() {
                *slot = src[i % base_wpc];
            }
        } else {
            // Sub-word replication: widen the M-lane pattern to 64 bits,
            // then copy across words.
            let m = 1usize << base_mask_bits;
            let mut word = src[0] & base_valid;
            let mut width = m;
            while width < 64 {
                word |= word << width;
                width *= 2;
            }
            for slot in dst.iter_mut() {
                *slot = word;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report;
    use sbox_circuits::{SboxCircuit, Scheme};
    use sbox_netlist::transform;

    #[test]
    fn unedited_candidate_reanalyzes_to_the_identical_report() {
        for scheme in [Scheme::Rsm, Scheme::Isw] {
            let subject = Subject::of_circuit(&SboxCircuit::build(scheme));
            let baseline = Baseline::new(subject.clone());
            let (inc, effort) = baseline.reanalyze(&subject);
            let full = analyze_subject(&subject);
            assert_eq!(report::json(&inc), report::json(&full), "{scheme}");
            assert_eq!(effort.dirty_nets, 0, "{scheme}");
            assert_eq!(effort.dirty_gates, 0, "{scheme}");
        }
    }

    #[test]
    fn rewired_gate_reanalyzes_bit_identically_but_cheaply() {
        let circuit = SboxCircuit::build(Scheme::Isw);
        let subject = Subject::of_circuit(&circuit);
        let baseline = Baseline::new(subject.clone());
        // Rewire one XOR load of refresh r2 onto r0 — the SD-REUSE
        // mutation — and re-analyze.
        let netlist = circuit.netlist();
        let r0 = netlist.inputs()[8];
        let r2 = netlist.inputs()[10];
        let victim = netlist.nets()[r2.index()].loads()[0];
        let pin = netlist
            .gate(victim)
            .inputs()
            .iter()
            .position(|&n| n == r2)
            .expect("victim loads r2");
        let mutant = transform::rewire_input(netlist, victim, pin, r0).expect("acyclic rewire");
        let patched = Subject::with_roles(
            subject.label(),
            mutant,
            subject.roles().to_vec(),
            subject.output_groups().to_vec(),
        )
        .expect("contract unchanged");
        let (inc, effort) = baseline.reanalyze(&patched);
        let full = analyze_subject(&patched);
        assert_eq!(report::json(&inc), report::json(&full));
        assert!(
            effort.dirty_gates < effort.total_gates / 2,
            "cone should be local: {effort:?}"
        );
    }

    #[test]
    fn tiling_survives_subword_and_multiword_growth() {
        // RSM has 4 mask bits (sub-word space). Append a fresh input and
        // a refresh XOR on output share y0 — one new mask bit.
        let circuit = SboxCircuit::build(Scheme::Rsm);
        let subject = Subject::of_circuit(&circuit);
        let baseline = Baseline::new(subject.clone());
        let netlist = circuit.netlist();
        let mut b = sbox_netlist::NetlistBuilder::new("rsm_refreshed");
        let mut map = std::collections::HashMap::new();
        for &net in netlist.inputs() {
            let name = netlist.net(net).name().unwrap_or("in").to_string();
            map.insert(net.index(), b.input(name));
        }
        // Builder creation order is topological for a pristine circuit,
        // so rebuilding in gates() order keeps every id aligned.
        for gate in netlist.gates() {
            let pins: Vec<_> = gate.inputs().iter().map(|n| map[&n.index()]).collect();
            let out = b.gate(gate.cell(), &pins);
            map.insert(gate.output().index(), out);
        }
        let fresh = b.input("r_new");
        let mut roles = subject.roles().to_vec();
        roles.push(sbox_circuits::InputRole::Fresh);
        let mut outs = Vec::new();
        for (i, (name, net)) in netlist.outputs().iter().enumerate() {
            if i == 0 {
                outs.push((name.clone(), b.xor(map[&net.index()], fresh)));
            } else {
                outs.push((name.clone(), map[&net.index()]));
            }
        }
        for (name, net) in outs {
            b.output(name, net);
        }
        let grown = b.finish().expect("valid refresh patch");
        let patched = Subject::with_roles(
            "rsm+refresh",
            grown,
            roles,
            subject.output_groups().to_vec(),
        )
        .expect("contract");
        let (inc, _) = baseline.reanalyze(&patched);
        let full = analyze_subject(&patched);
        assert_eq!(report::json(&inc), report::json(&full));
    }
}
