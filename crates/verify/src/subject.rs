//! Analysis subjects: any netlist plus its masking-security contract.
//!
//! The original analyzer was welded to [`SboxCircuit`] — one of the seven
//! hand-built schemes, each with a bespoke stimulus encoder. A [`Subject`]
//! generalizes the contract to *any* combinational netlist: per-input
//! [`InputRole`] labels (which wires carry which share of which secret
//! bit, which carry fresh randomness), output share groups, and optional
//! per-gate synchronization barriers. That one abstraction is what lets
//! the same rule catalogue run over native schemes, frontend-imported
//! foreign netlists, and the patched candidates the `sca-repair` searcher
//! produces.
//!
//! The subject also owns the *generic masked encoder*: share 0 of each
//! secret bit closes the XOR of the remaining shares, and mask bits are
//! allocated to `Share{share ≥ 1}` and `Fresh` ports in input-port order.
//! For every native scheme this reproduces
//! [`sbox_circuits::InputEncoding::encode_masked`] bit for bit (pinned by
//! this module's tests), so the packed sweep engine needs exactly one
//! stimulus model.

use sbox_circuits::{InputRole, SboxCircuit};
use sbox_netlist::Netlist;

/// Largest secret-bit count the exhaustive class enumeration accepts
/// (`2^8 = 256` classes).
pub const MAX_SECRET_BITS_EXHAUSTIVE: usize = 8;

/// Largest mask-space width the exhaustive sweep enumerates (matching
/// the historical `sbox_circuits::exhaustive::sweep` bound).
pub const MAX_MASK_BITS: usize = 16;

/// How deep the analyzer can afford to look at a subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Depth {
    /// Full (class × mask) enumeration: every distribution rule runs.
    Exhaustive,
    /// Structural passes only (taint, fan-out, boundary composition);
    /// the enumeration space is too large.
    Structural,
}

impl Depth {
    /// Stable lowercase label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            Depth::Exhaustive => "exhaustive",
            Depth::Structural => "structural",
        }
    }
}

/// A netlist under analysis, with its masking contract attached.
#[derive(Debug, Clone)]
pub struct Subject {
    label: String,
    netlist: Netlist,
    roles: Vec<InputRole>,
    secret_bits: usize,
    shares_per_bit: u8,
    output_groups: Vec<Vec<usize>>,
    barriers: Vec<bool>,
}

impl Subject {
    /// Wrap a native scheme circuit (contract taken from its
    /// [`sbox_circuits::InputEncoding`]).
    pub fn of_circuit(circuit: &SboxCircuit) -> Self {
        let encoding = circuit.encoding();
        Self {
            label: circuit.scheme().label().to_string(),
            netlist: circuit.netlist().clone(),
            roles: encoding.input_roles(),
            secret_bits: 4,
            shares_per_bit: encoding.shares_per_bit(),
            output_groups: encoding.output_share_groups(),
            barriers: vec![false; circuit.netlist().gates().len()],
        }
    }

    /// Wrap an unprotected netlist: every input is its own (only) share,
    /// every output is its own group. The contract for imported designs
    /// that declare no masking.
    ///
    /// # Errors
    ///
    /// Returns a description when the netlist has more than 64 inputs
    /// (the taint bitsets track at most 64 secret bits).
    pub fn unprotected(label: impl Into<String>, netlist: Netlist) -> Result<Self, String> {
        let roles: Vec<InputRole> = (0..netlist.num_inputs())
            .map(|i| {
                Ok(InputRole::Share {
                    bit: u8::try_from(i).map_err(|_| "more than 256 inputs".to_string())?,
                    share: 0,
                })
            })
            .collect::<Result<_, String>>()?;
        let groups = (0..netlist.num_outputs()).map(|p| vec![p]).collect();
        Self::with_roles(label, netlist, roles, groups)
    }

    /// Wrap a netlist with an explicit contract: one role per primary
    /// input and the output share groups.
    ///
    /// # Errors
    ///
    /// Returns a description when the contract is malformed: role count
    /// mismatch, a secret bit without a closing share 0, uneven share
    /// counts across bits, more than 64 secret bits, or an output group
    /// referencing a missing port.
    pub fn with_roles(
        label: impl Into<String>,
        netlist: Netlist,
        roles: Vec<InputRole>,
        output_groups: Vec<Vec<usize>>,
    ) -> Result<Self, String> {
        if roles.len() != netlist.num_inputs() {
            return Err(format!(
                "{} roles for {} primary inputs",
                roles.len(),
                netlist.num_inputs()
            ));
        }
        let secret_bits = roles
            .iter()
            .filter_map(|r| match r {
                InputRole::Share { bit, .. } => Some(usize::from(*bit) + 1),
                InputRole::Fresh => None,
            })
            .max()
            .unwrap_or(0);
        if secret_bits > 64 {
            return Err(format!(
                "{secret_bits} secret bits exceed the 64-bit taint budget"
            ));
        }
        let mut shares_per_bit = 0u8;
        for bit in 0..secret_bits {
            let mut shares: Vec<u8> = roles
                .iter()
                .filter_map(|r| match r {
                    InputRole::Share { bit: b, share } if usize::from(*b) == bit => Some(*share),
                    _ => None,
                })
                .collect();
            shares.sort_unstable();
            let want: Vec<u8> = (0..shares.len() as u8).collect();
            if shares != want {
                return Err(format!(
                    "secret bit {bit}: shares must be 0..n once each, got {shares:?}"
                ));
            }
            let k = shares.len() as u8;
            if shares_per_bit == 0 {
                shares_per_bit = k;
            } else if shares_per_bit != k {
                return Err(format!(
                    "secret bit {bit} has {k} shares, earlier bits have {shares_per_bit}"
                ));
            }
        }
        if shares_per_bit == 0 {
            return Err("subject carries no secret bits".to_string());
        }
        if usize::from(shares_per_bit) > crate::taint::MAX_SHARES {
            return Err(format!(
                "{shares_per_bit} shares per bit exceed the taint limit of {}",
                crate::taint::MAX_SHARES
            ));
        }
        for (g, ports) in output_groups.iter().enumerate() {
            for &p in ports {
                if p >= netlist.num_outputs() {
                    return Err(format!(
                        "output group {g} references missing output port {p}"
                    ));
                }
            }
        }
        let barriers = vec![false; netlist.gates().len()];
        Ok(Self {
            label: label.into(),
            netlist,
            roles,
            secret_bits,
            shares_per_bit,
            output_groups,
            barriers,
        })
    }

    /// Mark a gate as a synchronization barrier (register / precharged
    /// toggling cell). Barriers do not glitch themselves and hold their
    /// pre-state during the consuming gate's race window; see
    /// `DESIGN.md` §12 for the exact model and its limits.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range — a caller bug, not user input.
    pub fn mark_barrier(&mut self, gate: usize) {
        self.barriers[gate] = true;
    }

    /// Display label of the subject.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The netlist under analysis.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Per-input masking roles, in port order.
    pub fn roles(&self) -> &[InputRole] {
        &self.roles
    }

    /// Number of secret bits the inputs jointly encode.
    pub fn secret_bits(&self) -> usize {
        self.secret_bits
    }

    /// Shares per secret bit (1 for unprotected subjects).
    pub fn shares_per_bit(&self) -> u8 {
        self.shares_per_bit
    }

    /// Output-port groups that jointly encode one secret output bit.
    pub fn output_groups(&self) -> &[Vec<usize>] {
        &self.output_groups
    }

    /// Per-gate barrier flags.
    pub fn barriers(&self) -> &[bool] {
        &self.barriers
    }

    /// Whether `gate` is a synchronization barrier.
    pub fn is_barrier(&self, gate: usize) -> bool {
        self.barriers.get(gate).copied().unwrap_or(false)
    }

    /// Whether a net is driven by a barrier gate.
    pub fn net_is_barriered(&self, net: usize) -> bool {
        self.netlist.nets()[net]
            .driver()
            .is_some_and(|g| self.is_barrier(g.index()))
    }

    /// Mask-bit index of each input port: `Share{share ≥ 1}` and `Fresh`
    /// ports take consecutive bits in port order; share-0 ports have
    /// none (they close the XOR).
    pub fn mask_bit_of_input(&self) -> Vec<Option<usize>> {
        let mut next = 0usize;
        self.roles
            .iter()
            .map(|r| match r {
                InputRole::Share { share: 0, .. } => None,
                _ => {
                    let j = next;
                    next += 1;
                    Some(j)
                }
            })
            .collect()
    }

    /// Total mask-space width in bits.
    pub fn mask_bits(&self) -> usize {
        self.roles
            .iter()
            .filter(|r| !matches!(r, InputRole::Share { share: 0, .. }))
            .count()
    }

    /// Number of unmasked input classes (`2^secret_bits`); only
    /// meaningful at [`Depth::Exhaustive`].
    pub fn num_classes(&self) -> usize {
        1usize << self.secret_bits
    }

    /// How deep the analyzer can enumerate this subject.
    pub fn depth(&self) -> Depth {
        if self.secret_bits <= MAX_SECRET_BITS_EXHAUSTIVE
            && self.mask_bits() <= MAX_MASK_BITS
            && self.netlist.num_inputs() <= 64
        {
            Depth::Exhaustive
        } else {
            Depth::Structural
        }
    }

    /// Encode class `t` under an explicit mask word onto the primary
    /// inputs: mask bits feed `Share{share ≥ 1}` / `Fresh` ports in port
    /// order, and each bit's share 0 closes the XOR to `t`'s bit.
    ///
    /// For the seven native schemes this reproduces
    /// [`sbox_circuits::InputEncoding::encode_masked`] exactly.
    pub fn encode(&self, t: u64, mask: u64) -> Vec<bool> {
        let mask_of = self.mask_bit_of_input();
        // XOR of the non-closing shares of each bit, accumulated first so
        // share 0 can be emitted in port order regardless of position.
        let mut partial = vec![false; self.secret_bits];
        for (i, role) in self.roles.iter().enumerate() {
            if let InputRole::Share { bit, share } = role {
                if *share >= 1 {
                    let j = mask_of[i].expect("non-closing share has a mask bit");
                    partial[usize::from(*bit)] ^= mask >> j & 1 == 1;
                }
            }
        }
        self.roles
            .iter()
            .enumerate()
            .map(|(i, role)| match role {
                InputRole::Share { bit, share: 0 } => {
                    (t >> *bit & 1 == 1) ^ partial[usize::from(*bit)]
                }
                _ => {
                    let j = mask_of[i].expect("mask-consuming port has a mask bit");
                    mask >> j & 1 == 1
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_circuits::Scheme;

    #[test]
    fn generic_encoder_matches_every_native_encoding() {
        for scheme in Scheme::ALL {
            let circuit = SboxCircuit::build(scheme);
            let subject = Subject::of_circuit(&circuit);
            let encoding = circuit.encoding();
            assert_eq!(subject.mask_bits(), encoding.mask_bits(), "{scheme}");
            let mask_words: Vec<u32> = if encoding.mask_bits() == 0 {
                vec![0]
            } else {
                (0..1u32 << encoding.mask_bits()).step_by(5).collect()
            };
            for t in 0..16u8 {
                for &mask in &mask_words {
                    assert_eq!(
                        subject.encode(u64::from(t), u64::from(mask)),
                        encoding.encode_masked(t, mask),
                        "{scheme} t={t} mask={mask}"
                    );
                }
            }
        }
    }

    #[test]
    fn depth_gates_on_enumeration_budgets() {
        let ti = Subject::of_circuit(&SboxCircuit::build(Scheme::Ti));
        assert_eq!(ti.depth(), Depth::Exhaustive);
        assert_eq!(ti.secret_bits(), 4);
        assert_eq!(ti.shares_per_bit(), 4);
        assert_eq!(ti.mask_bits(), 12);
    }

    #[test]
    fn contract_validation_rejects_malformed_roles() {
        use sbox_netlist::NetlistBuilder;
        let mut b = NetlistBuilder::new("toy");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.xor(a, c);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        // Missing closing share: both inputs claim share 1.
        let bad = vec![
            InputRole::Share { bit: 0, share: 1 },
            InputRole::Share { bit: 0, share: 1 },
        ];
        assert!(Subject::with_roles("toy", nl.clone(), bad, vec![vec![0]]).is_err());
        // Group referencing a missing port.
        let ok = vec![
            InputRole::Share { bit: 0, share: 0 },
            InputRole::Share { bit: 0, share: 1 },
        ];
        assert!(Subject::with_roles("toy", nl.clone(), ok.clone(), vec![vec![3]]).is_err());
        let s = Subject::with_roles("toy", nl, ok, vec![vec![0]]).expect("well-formed");
        assert_eq!(s.secret_bits(), 1);
        assert_eq!(s.mask_bits(), 1);
        // encode: share 0 closes the XOR.
        for t in 0..2u64 {
            for m in 0..2u64 {
                let v = s.encode(t, m);
                assert_eq!(v[0] ^ v[1], t == 1);
                assert_eq!(v[1], m == 1);
            }
        }
    }

    #[test]
    fn unprotected_contract_is_one_share_per_input() {
        let lut = SboxCircuit::build(Scheme::Lut);
        let s = Subject::unprotected("LUT-raw", lut.netlist().clone()).expect("fits");
        assert_eq!(s.secret_bits(), 4);
        assert_eq!(s.shares_per_bit(), 1);
        assert_eq!(s.mask_bits(), 0);
        assert_eq!(s.output_groups().len(), 4);
    }
}
