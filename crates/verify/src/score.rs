//! Static leakage scores: energy-weighted glitch intensity per gate and
//! the scheme-level aggregate.
//!
//! The dynamic counterpart of a gate's static transient bias is the
//! class-variance of its switching energy, so the static score uses the
//! same energy weighting the simulator applies: intrinsic cell switching
//! energy plus half the fan-out load at nominal Vdd. Two components feed
//! the scheme score:
//!
//! * **local mass** — Σ over gates of `w_g · V_g`, where `V_g` is the
//!   class-variance mass of the gate's fan-in joint distribution
//!   ([`sbox_circuits::exhaustive::SweepCounts::gate_class_variance`]);
//!   the pointwise race-window leakage.
//! * **exposure mass** — Σ over boundary-exposed gates of
//!   `w_g · coverage_g · (s − 1)`: the composition risk of gates inside
//!   a flagged output group's cone, graded by how many shares of a
//!   secret bit they already see and by the `s − 1` secret-correlated
//!   partial sums an `s`-share recombination forms transiently. Weighted
//!   by [`COMPOSITION_WEIGHT`].
//!
//! Both are normalized by the total energy weight so the scheme score is
//! a *per-energy leak intensity* in `[0, ~1]` — comparable across
//! netlists of very different size, mirroring how the paper compares
//! TotalLeakagePower *profiles* rather than raw circuit sizes.

use sbox_netlist::Netlist;

/// Nominal supply voltage of the cell library (matches
/// `gatesim::SimConfig` default).
pub const VDD_V: f64 = 1.2;

/// Weight κ of the boundary-composition exposure term relative to the
/// local race-window term.
///
/// Calibrated (see the `scheme_ordering` acceptance test) so the static
/// scheme ordering reproduces the paper's TotalLeakagePower ordering:
/// unprotected ≫ TI > GLUT/RSM/RSM-ROM > ISW. The local term alone ranks
/// the tabulated schemes but is blind to TI's registerless composition
/// leak; κ prices that in without letting it dwarf a fully deterministic
/// (unprotected) datapath.
pub const COMPOSITION_WEIGHT: f64 = 0.25;

/// The energy weight of one gate: intrinsic switching energy plus
/// half-CV² fan-out load at nominal Vdd, in femtojoules — exactly the
/// per-transition energy `gatesim` charges (before derating).
pub fn energy_weight(netlist: &Netlist, gate: usize) -> f64 {
    let g = &netlist.gates()[gate];
    g.cell().switch_energy_fj() + 0.5 * netlist.fanout_cap_ff(g.output()) * VDD_V * VDD_V
}

/// Static leakage scores of one netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Scores {
    /// Per-gate static glitch score
    /// `w_g · (V_g + COMPOSITION_WEIGHT · exposure_g)`, in fJ-scaled
    /// units — the quantity rank-correlated against dynamic per-gate
    /// multi-bit spectral leakage.
    pub gate_glitch: Vec<f64>,
    /// Energy-normalized local race-window mass.
    pub local: f64,
    /// Energy-normalized boundary-exposure mass (already scaled by
    /// [`COMPOSITION_WEIGHT`]).
    pub exposure: f64,
    /// Total energy weight Σ w_g (fJ), the normalizer.
    pub energy_weight_total: f64,
}

impl Scores {
    /// The scheme-level static leak intensity: local + exposure.
    pub fn scheme_score(&self) -> f64 {
        self.local + self.exposure
    }
}

/// Combine per-gate class variance and boundary exposure into scores.
pub fn score(netlist: &Netlist, class_variance: &[f64], exposure: &[f64]) -> Scores {
    let weights: Vec<f64> = (0..netlist.gates().len())
        .map(|g| energy_weight(netlist, g))
        .collect();
    let total: f64 = weights.iter().sum();
    let gate_glitch: Vec<f64> = weights
        .iter()
        .zip(class_variance.iter().zip(exposure))
        .map(|(&w, (&v, &e))| w * (v + COMPOSITION_WEIGHT * e))
        .collect();
    let local = weights
        .iter()
        .zip(class_variance)
        .map(|(&w, &v)| w * v)
        .sum::<f64>()
        / total;
    let exposure = COMPOSITION_WEIGHT
        * weights
            .iter()
            .zip(exposure)
            .map(|(&w, &e)| w * e)
            .sum::<f64>()
        / total;
    Scores {
        gate_glitch,
        local,
        exposure,
        energy_weight_total: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_circuits::{SboxCircuit, Scheme};

    #[test]
    fn energy_weight_matches_the_simulator_charge() {
        let c = SboxCircuit::build(Scheme::Lut);
        let nl = c.netlist();
        for g in 0..nl.gates().len() {
            let w = energy_weight(nl, g);
            let gate = &nl.gates()[g];
            assert!(w >= gate.cell().switch_energy_fj());
        }
    }

    #[test]
    fn zero_inputs_zero_score() {
        let c = SboxCircuit::build(Scheme::Isw);
        let nl = c.netlist();
        let zeros = vec![0.0; nl.gates().len()];
        let s = score(nl, &zeros, &zeros);
        assert_eq!(s.scheme_score(), 0.0);
        assert!(s.energy_weight_total > 0.0);
    }
}
