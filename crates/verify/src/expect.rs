//! Pinned per-scheme expectation files and the bless/check flow.
//!
//! CI runs `sca-verify all --check`, which regenerates every scheme's
//! JSON report and byte-compares it against the pinned copy under
//! `tests/golden/verify/`. Any drift in the static security profile —
//! a new finding, a changed verdict, a moved score — fails the build.
//! After an *intentional* change, refresh the pins with
//! `SCA_BLESS=1 cargo run --release -p sca-verify -- all --check`
//! (matching the golden-vector suite's bless convention).

use std::fs;
use std::path::{Path, PathBuf};

/// Whether the environment requests re-blessing pinned expectations
/// (`SCA_BLESS=1`, the same switch the golden-vector suite uses).
pub fn blessing() -> bool {
    std::env::var("SCA_BLESS").is_ok_and(|v| v == "1")
}

/// The expectation file for one scheme label inside `dir`
/// (label lowercased: `LUT-OPT` → `lut-opt.json`).
pub fn expectation_path(dir: &Path, label: &str) -> PathBuf {
    dir.join(format!("{}.json", label.to_lowercase()))
}

/// Compare an actual report against the pinned expectation.
///
/// Returns `Ok(())` on a byte-exact match, otherwise a human-readable
/// explanation with the first differing line.
pub fn check(path: &Path, actual: &str) -> Result<(), String> {
    let expected = fs::read_to_string(path).map_err(|e| {
        format!(
            "missing expectation {} ({e}); run with SCA_BLESS=1 to create it",
            path.display()
        )
    })?;
    if expected == actual {
        return Ok(());
    }
    for (lineno, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return Err(format!(
                "{} line {}:\n  expected: {e}\n  actual:   {a}",
                path.display(),
                lineno + 1
            ));
        }
    }
    Err(format!(
        "{}: length differs (expected {} lines, actual {})",
        path.display(),
        expected.lines().count(),
        actual.lines().count()
    ))
}

/// Write (bless) the expectation file, creating parent directories.
pub fn bless(path: &Path, actual: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, actual)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_reports_first_diff_line() {
        let dir = std::env::temp_dir().join("sca-verify-expect-test");
        fs::create_dir_all(&dir).unwrap();
        let path = expectation_path(&dir, "LUT-OPT");
        assert!(path.ends_with("lut-opt.json"));
        bless(&path, "a\nb\nc\n").unwrap();
        assert!(check(&path, "a\nb\nc\n").is_ok());
        let err = check(&path, "a\nX\nc\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = check(&path, "a\nb\nc\nd\n").unwrap_err();
        assert!(err.contains("length differs"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }
}
