//! Mutation tests: graft known masking defects onto the (provably clean)
//! ISW netlist via `sbox_netlist::transform` and assert the analyzer
//! names the exact injected gate — the analyzer's detection power, not
//! just its silence on good circuits.

use sbox_circuits::{SboxCircuit, Scheme};
use sbox_netlist::transform;
use sca_verify::{analyze, RuleId};

/// The clean baseline: ISW passes first-order glitch-extended probing
/// and triggers none of the defect rules.
#[test]
fn clean_isw_passes_first_order_glitch_extended_probing() {
    let analysis = analyze(&SboxCircuit::build(Scheme::Isw));
    assert!(analysis.verdicts.value_first_order);
    assert!(analysis.verdicts.glitch_local);
    assert!(analysis.verdicts.gx_boundary);
    assert!(analysis.verdicts.glitch_first_order());
    assert_eq!(analysis.count(RuleId::ValueBias), 0);
    assert_eq!(analysis.count(RuleId::GlitchLocal), 0);
    assert_eq!(analysis.count(RuleId::SdReuse), 0);
    assert_eq!(analysis.count(RuleId::GxBoundary), 0);
    // Two conservative SD-RECOMB warnings are expected: partial products
    // whose share-1 operand is a linear combination (m1^m2), so the
    // *cone* spans both shares of bit 2. The exact distribution checks
    // above discharge them as non-exploitable at first order — which is
    // why SD-RECOMB is a warning, not a verdict.
    assert_eq!(analysis.count(RuleId::SdRecomb), 2);
    // The cross-domain products of the ISW gadgets are *advisory* — they
    // exist by construction and are refreshed downstream.
    assert!(analysis.count(RuleId::SdCross) > 0);
}

/// Defect 1 — refresh-mask reuse: point one gadget's refresh XOR at an
/// already-spent mask bit. The reused bit then exceeds its single
/// masking duty and SD-REUSE must name the rewired gate.
#[test]
fn reused_refresh_mask_is_reported_at_the_rewired_gate() {
    let circuit = SboxCircuit::build(Scheme::Isw);
    let netlist = circuit.netlist();
    // ISW inputs: xa0..3, m0..3, r0..3 — r0 at position 8, r2 at 10.
    let r0 = netlist.inputs()[8];
    let r2 = netlist.inputs()[10];
    // Take an XOR gate consuming r2 and redirect its refresh pin to r0.
    let (victim, pin) = netlist.nets()[r2.index()]
        .loads()
        .iter()
        .find_map(|&g| {
            let gate = netlist.gate(g);
            (gate.cell().family() == "XOR")
                .then(|| gate.inputs().iter().position(|&n| n == r2).map(|p| (g, p)))
                .flatten()
        })
        .expect("ISW has XOR loads on every refresh bit");
    let mutant = transform::rewire_input(netlist, victim, pin, r0).expect("legal rewire");
    let analysis = analyze(&SboxCircuit::from_parts(Scheme::Isw, mutant));

    let reuse = analysis.of_rule(RuleId::SdReuse);
    assert!(!reuse.is_empty(), "reuse must be detected");
    // Every implicated diagnostic points at r0, and the rewired gate is
    // among the named gates.
    assert!(reuse.iter().all(|d| d.witness == ["r0"]));
    let named: Vec<usize> = reuse.iter().filter_map(|d| d.location.gate).collect();
    assert!(
        named.contains(&victim.index()),
        "rewired gate {} missing from {named:?}",
        victim.index()
    );
}

/// Defect 2 — share recombination: one AND over both shares of input
/// bit 0. Every layer of the analyzer must converge on the injected
/// gate: its settled value is biased, its fan-in joint is transient-
/// leaky, and its cone recombines a full sharing without randomness.
#[test]
fn recombining_and_gate_is_reported_by_every_layer() {
    let circuit = SboxCircuit::build(Scheme::Isw);
    let netlist = circuit.netlist();
    let xa0 = netlist.inputs()[0];
    let m0 = netlist.inputs()[4];
    let (mutant, injected) =
        transform::observe_product(netlist, xa0, m0, "probe_recomb").expect("legal probe");
    let baseline = analyze(&SboxCircuit::build(Scheme::Isw));
    let analysis = analyze(&SboxCircuit::from_instrumented(Scheme::Isw, mutant));

    // Per rule, the mutant's findings minus the clean baseline's must be
    // exactly the injected gate — the analyzer names the defect, no
    // more, no less.
    for rule in [RuleId::ValueBias, RuleId::GlitchLocal, RuleId::SdRecomb] {
        let before: Vec<Option<usize>> = baseline
            .of_rule(rule)
            .iter()
            .map(|d| d.location.gate)
            .collect();
        let fresh: Vec<Option<usize>> = analysis
            .of_rule(rule)
            .iter()
            .map(|d| d.location.gate)
            .filter(|g| !before.contains(g))
            .collect();
        assert_eq!(
            fresh,
            vec![Some(injected.index())],
            "{} must name exactly the injected gate",
            rule.code()
        );
    }
    // AND(xa0, m0) = m0 ∧ ¬t0: mean 0.5 for t0 = 0, 0 for t0 = 1.
    let value = analysis.of_rule(RuleId::ValueBias)[0];
    assert!(
        (value.measure - 0.5).abs() < 1e-12,
        "bias {}",
        value.measure
    );
    // The race-window tuple (xa0, m0) identifies t0 exactly.
    let local = analysis.of_rule(RuleId::GlitchLocal)[0];
    assert!(
        (local.measure - 1.0).abs() < 1e-12,
        "bias {}",
        local.measure
    );
    // The verdicts flip from the clean baseline.
    assert!(!analysis.verdicts.value_first_order);
    assert!(!analysis.verdicts.glitch_first_order());
}

/// The two mutants leave untouched gates undisturbed: ids are preserved,
/// so the diagnostics map one-to-one onto the original netlist.
#[test]
fn mutants_preserve_gate_ids() {
    let circuit = SboxCircuit::build(Scheme::Isw);
    let netlist = circuit.netlist();
    let (mutant, injected) =
        transform::observe_product(netlist, netlist.inputs()[0], netlist.inputs()[4], "probe")
            .expect("legal probe");
    assert_eq!(mutant.gates().len(), netlist.gates().len() + 1);
    assert_eq!(injected.index(), netlist.gates().len());
    for (old, new) in netlist.gates().iter().zip(mutant.gates()) {
        assert_eq!(old.cell(), new.cell());
    }
}
