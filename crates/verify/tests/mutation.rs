//! Mutation tests: graft known masking defects onto the (provably clean)
//! ISW netlist via `sbox_netlist::transform` and assert the analyzer
//! names the exact injected gate — the analyzer's detection power, not
//! just its silence on good circuits.

use sbox_circuits::{SboxCircuit, Scheme};
use sbox_netlist::transform;
use sca_verify::{analyze, RuleId};

/// The clean baseline: ISW passes first-order glitch-extended probing
/// and triggers none of the defect rules.
#[test]
fn clean_isw_passes_first_order_glitch_extended_probing() {
    let analysis = analyze(&SboxCircuit::build(Scheme::Isw));
    assert!(analysis.verdicts.value_first_order);
    assert!(analysis.verdicts.glitch_local);
    assert!(analysis.verdicts.gx_boundary);
    assert!(analysis.verdicts.glitch_first_order());
    assert_eq!(analysis.count(RuleId::ValueBias), 0);
    assert_eq!(analysis.count(RuleId::GlitchLocal), 0);
    assert_eq!(analysis.count(RuleId::SdReuse), 0);
    assert_eq!(analysis.count(RuleId::GxBoundary), 0);
    // Two conservative SD-RECOMB warnings are expected: partial products
    // whose share-1 operand is a linear combination (m1^m2), so the
    // *cone* spans both shares of bit 2. The exact distribution checks
    // above discharge them as non-exploitable at first order — which is
    // why SD-RECOMB is a warning, not a verdict.
    assert_eq!(analysis.count(RuleId::SdRecomb), 2);
    // The cross-domain products of the ISW gadgets are *advisory* — they
    // exist by construction and are refreshed downstream.
    assert!(analysis.count(RuleId::SdCross) > 0);
}

/// Defect 1 — refresh-mask reuse: point one gadget's refresh XOR at an
/// already-spent mask bit. The reused bit then exceeds its single
/// masking duty and SD-REUSE must name the rewired gate.
#[test]
fn reused_refresh_mask_is_reported_at_the_rewired_gate() {
    let circuit = SboxCircuit::build(Scheme::Isw);
    let netlist = circuit.netlist();
    // ISW inputs: xa0..3, m0..3, r0..3 — r0 at position 8, r2 at 10.
    let r0 = netlist.inputs()[8];
    let r2 = netlist.inputs()[10];
    // Take an XOR gate consuming r2 and redirect its refresh pin to r0.
    let (victim, pin) = netlist.nets()[r2.index()]
        .loads()
        .iter()
        .find_map(|&g| {
            let gate = netlist.gate(g);
            (gate.cell().family() == "XOR")
                .then(|| gate.inputs().iter().position(|&n| n == r2).map(|p| (g, p)))
                .flatten()
        })
        .expect("ISW has XOR loads on every refresh bit");
    let mutant = transform::rewire_input(netlist, victim, pin, r0).expect("legal rewire");
    let analysis = analyze(&SboxCircuit::from_parts(Scheme::Isw, mutant));

    let reuse = analysis.of_rule(RuleId::SdReuse);
    assert!(!reuse.is_empty(), "reuse must be detected");
    // Every implicated diagnostic points at r0, and the rewired gate is
    // among the named gates.
    assert!(reuse.iter().all(|d| d.witness == ["r0"]));
    let named: Vec<usize> = reuse.iter().filter_map(|d| d.location.gate).collect();
    assert!(
        named.contains(&victim.index()),
        "rewired gate {} missing from {named:?}",
        victim.index()
    );
}

/// Defect 2 — share recombination: one AND over both shares of input
/// bit 0. Every layer of the analyzer must converge on the injected
/// gate: its settled value is biased, its fan-in joint is transient-
/// leaky, and its cone recombines a full sharing without randomness.
#[test]
fn recombining_and_gate_is_reported_by_every_layer() {
    let circuit = SboxCircuit::build(Scheme::Isw);
    let netlist = circuit.netlist();
    let xa0 = netlist.inputs()[0];
    let m0 = netlist.inputs()[4];
    let (mutant, injected) =
        transform::observe_product(netlist, xa0, m0, "probe_recomb").expect("legal probe");
    let baseline = analyze(&SboxCircuit::build(Scheme::Isw));
    let analysis = analyze(&SboxCircuit::from_instrumented(Scheme::Isw, mutant));

    // Per rule, the mutant's findings minus the clean baseline's must be
    // exactly the injected gate — the analyzer names the defect, no
    // more, no less.
    for rule in [RuleId::ValueBias, RuleId::GlitchLocal, RuleId::SdRecomb] {
        let before: Vec<Option<usize>> = baseline
            .of_rule(rule)
            .iter()
            .map(|d| d.location.gate)
            .collect();
        let fresh: Vec<Option<usize>> = analysis
            .of_rule(rule)
            .iter()
            .map(|d| d.location.gate)
            .filter(|g| !before.contains(g))
            .collect();
        assert_eq!(
            fresh,
            vec![Some(injected.index())],
            "{} must name exactly the injected gate",
            rule.code()
        );
    }
    // AND(xa0, m0) = m0 ∧ ¬t0: mean 0.5 for t0 = 0, 0 for t0 = 1.
    let value = analysis.of_rule(RuleId::ValueBias)[0];
    assert!(
        (value.measure - 0.5).abs() < 1e-12,
        "bias {}",
        value.measure
    );
    // The race-window tuple (xa0, m0) identifies t0 exactly.
    let local = analysis.of_rule(RuleId::GlitchLocal)[0];
    assert!(
        (local.measure - 1.0).abs() < 1e-12,
        "bias {}",
        local.measure
    );
    // The verdicts flip from the clean baseline.
    assert!(!analysis.verdicts.value_first_order);
    assert!(!analysis.verdicts.glitch_first_order());
}

/// Defect 3 — Hamming-distance leakage under a held mask: an AND over
/// the share-0 encodings of two *different* secret bits. Its settled
/// value is Bernoulli(1/4) in every class and its fan-in joint is
/// uniform, so the settled-value layers stay silent — but between class
/// pairs its flip rate swings from 0 (neither bit changed) to 1/2,
/// which only TRANSITION-HD sees. The diff against the clean baseline
/// must name exactly the injected gate.
#[test]
fn held_mask_transition_leak_is_named_only_by_transition_hd() {
    let circuit = SboxCircuit::build(Scheme::Isw);
    let netlist = circuit.netlist();
    let xa0 = netlist.inputs()[0];
    let xa1 = netlist.inputs()[1];
    let (mutant, injected) =
        transform::observe_product(netlist, xa0, xa1, "probe_hd").expect("legal probe");
    let baseline = analyze(&SboxCircuit::build(Scheme::Isw));
    let analysis = analyze(&SboxCircuit::from_instrumented(Scheme::Isw, mutant));

    let before: Vec<Option<usize>> = baseline
        .of_rule(RuleId::TransitionHd)
        .iter()
        .map(|d| d.location.gate)
        .collect();
    let fresh: Vec<&sca_verify::Diagnostic> = analysis
        .of_rule(RuleId::TransitionHd)
        .into_iter()
        .filter(|d| !before.contains(&d.location.gate))
        .collect();
    assert_eq!(
        fresh.iter().map(|d| d.location.gate).collect::<Vec<_>>(),
        vec![Some(injected.index())],
        "TRANSITION-HD must name exactly the injected gate"
    );
    // xa0 ∧ xa1 flips with probability 1/2 against class 0 whenever a
    // changed secret bit feeds it, and never when none does.
    assert!(
        (fresh[0].measure - 0.5).abs() < 1e-12,
        "spread {}",
        fresh[0].measure
    );
    // The settled-value layers gained nothing: the defect is invisible
    // to every pre-existing rule.
    for rule in [RuleId::ValueBias, RuleId::GlitchLocal] {
        assert_eq!(
            analysis.count(rule),
            baseline.count(rule),
            "{} must not react to the HD probe",
            rule.code()
        );
    }
}

/// Build the 3-share boundary toy for the SHARE-UNIFORM defect: a
/// single secret bit shared as `a0 ⊕ a1 ⊕ a2`, one fresh bit `u`, and —
/// when `defective` — the biased product `a0 ∧ u` XOR-folded into output
/// shares 0 and 2. The fold cancels in the group XOR (the function is
/// preserved) and every net's per-class mean is class-independent, yet
/// the joint share distribution collapses: patterns where the product
/// fires are remapped onto their neighbours, skewing the coset masses
/// to (3/8, 3/8, 1/8, 1/8).
fn boundary_toy(defective: bool) -> sca_verify::Subject {
    use sbox_circuits::InputRole;
    let mut b = sbox_netlist::NetlistBuilder::new(if defective {
        "toy_skewed"
    } else {
        "toy_uniform"
    });
    let a0 = b.input("a0");
    let a1 = b.input("a1");
    let a2 = b.input("a2");
    let u = b.input("u");
    // The control folds the fresh bit itself into shares 0 and 2 — the
    // same shape, but an unbiased shift keeps the coset uniform. The
    // defect replaces it with the biased product `a0 ∧ u`.
    let d = if defective { b.and(&[a0, u]) } else { u };
    let (y0, y2) = (b.xor(a0, d), b.xor(a2, d));
    let y1 = b.buf(a1);
    b.output("y0", y0);
    b.output("y1", y1);
    b.output("y2", y2);
    sca_verify::Subject::with_roles(
        if defective {
            "toy-skewed"
        } else {
            "toy-uniform"
        },
        b.finish().expect("valid toy"),
        vec![
            InputRole::Share { bit: 0, share: 0 },
            InputRole::Share { bit: 0, share: 1 },
            InputRole::Share { bit: 0, share: 2 },
            InputRole::Fresh,
        ],
        vec![vec![0, 1, 2]],
    )
    .expect("contract well-formed")
}

/// Defect 4 — boundary non-uniformity with clean marginals: only
/// SHARE-UNIFORM can see it. Every net is class-balanced (no
/// VALUE-BIAS), every fan-in joint is class-constant (no GLITCH-LOCAL),
/// the cones never recombine all three shares and the boundary carries
/// fresh randomness — yet the output share group is skewed within its
/// parity coset, exactly the non-uniformity that breaks composable
/// masking proofs.
#[test]
fn skewed_share_group_is_named_only_by_share_uniform() {
    let clean = sca_verify::analyze_subject(&boundary_toy(false));
    assert_eq!(clean.count(RuleId::ShareUniform), 0);
    assert_eq!(clean.error_count(), 0);

    let analysis = sca_verify::analyze_subject(&boundary_toy(true));
    let findings = analysis.of_rule(RuleId::ShareUniform);
    assert_eq!(findings.len(), 1, "exactly the one skewed group");
    let d = findings[0];
    // The diagnostic anchors at the group's first share and lists the
    // whole group as witness.
    assert_eq!(d.witness, ["y0", "y1", "y2"]);
    // Coset masses (3/8, 3/8, 1/8, 1/8) against the uniform 1/4 ideal:
    // total variation exactly 1/4.
    assert!((d.measure - 0.25).abs() < 1e-12, "tv {}", d.measure);
    // And nothing else reacts: the defect is invisible to every
    // Error-severity rule.
    assert_eq!(analysis.error_count(), 0);
    assert_eq!(analysis.count(RuleId::ValueBias), 0);
    assert_eq!(analysis.count(RuleId::GlitchLocal), 0);
    assert_eq!(analysis.count(RuleId::SdRecomb), 0);
    assert!(analysis.verdicts.value_first_order);
    assert!(analysis.verdicts.glitch_first_order());
}

/// The two mutants leave untouched gates undisturbed: ids are preserved,
/// so the diagnostics map one-to-one onto the original netlist.
#[test]
fn mutants_preserve_gate_ids() {
    let circuit = SboxCircuit::build(Scheme::Isw);
    let netlist = circuit.netlist();
    let (mutant, injected) =
        transform::observe_product(netlist, netlist.inputs()[0], netlist.inputs()[4], "probe")
            .expect("legal probe");
    assert_eq!(mutant.gates().len(), netlist.gates().len() + 1);
    assert_eq!(injected.index(), netlist.gates().len());
    for (old, new) in netlist.gates().iter().zip(mutant.gates()) {
        assert_eq!(old.cell(), new.cell());
    }
}
