//! Acceptance profile: the static security portrait of the seven
//! schemes, and the scheme-level ordering against the paper's
//! TotalLeakagePower ranking.

use sbox_circuits::{SboxCircuit, Scheme};
use sca_verify::{analyze, report, Analysis};

fn portraits() -> Vec<(Scheme, Analysis)> {
    Scheme::ALL
        .iter()
        .map(|&s| (s, analyze(&SboxCircuit::build(s))))
        .collect()
}

#[test]
fn static_profiles_match_the_paper_reading() {
    // (value-secure, glitch-local-secure, boundary-secure) per scheme.
    let expected = [
        (Scheme::Lut, false, false, false),
        (Scheme::Opt, false, false, false),
        (Scheme::Glut, false, false, true),
        (Scheme::Rsm, false, false, false),
        (Scheme::RsmRom, false, false, false),
        (Scheme::Isw, true, true, true),
        (Scheme::Ti, true, true, false),
    ];
    for ((scheme, analysis), (escheme, value, local, boundary)) in portraits().iter().zip(expected)
    {
        assert_eq!(*scheme, escheme);
        assert_eq!(
            analysis.verdicts.value_first_order, value,
            "{scheme} value verdict"
        );
        assert_eq!(
            analysis.verdicts.glitch_local, local,
            "{scheme} glitch-local verdict"
        );
        assert_eq!(
            analysis.verdicts.gx_boundary, boundary,
            "{scheme} boundary verdict"
        );
    }
}

#[test]
fn headline_contrasts_hold() {
    let by_scheme = portraits();
    let get = |s: Scheme| &by_scheme.iter().find(|(x, _)| *x == s).unwrap().1;
    // Both unprotected netlists leak at first order under value probes.
    assert!(!get(Scheme::Lut).verdicts.value_first_order);
    assert!(!get(Scheme::Opt).verdicts.value_first_order);
    // TI: clean under value probes, flagged under glitch-extended ones —
    // the distinction plain `sboxes::probing` cannot draw.
    assert!(get(Scheme::Ti).verdicts.value_first_order);
    assert!(!get(Scheme::Ti).verdicts.glitch_first_order());
    // ISW: clean under first-order glitch-extended probing.
    assert!(get(Scheme::Isw).verdicts.glitch_first_order());
}

#[test]
fn scheme_scores_reproduce_total_leakage_power_ordering() {
    // Paper ordering: unprotected ≫ TI > GLUT/RSM/RSM-ROM > ISW.
    let by_scheme = portraits();
    let score = |s: Scheme| {
        by_scheme
            .iter()
            .find(|(x, _)| *x == s)
            .unwrap()
            .1
            .scores
            .scheme_score()
    };
    let ti = score(Scheme::Ti);
    let isw = score(Scheme::Isw);
    for unprotected in [Scheme::Lut, Scheme::Opt] {
        assert!(
            score(unprotected) > ti,
            "{unprotected} must out-leak TI statically"
        );
    }
    for tabulated in [Scheme::Glut, Scheme::Rsm, Scheme::RsmRom] {
        let s = score(tabulated);
        assert!(ti > s, "TI must out-leak {tabulated} statically");
        assert!(s > isw, "{tabulated} must out-leak ISW statically");
    }
    assert_eq!(isw, 0.0, "ISW's static glitch score is exactly zero");
}

#[test]
fn reports_are_byte_stable_across_runs() {
    for scheme in [Scheme::Opt, Scheme::Rsm, Scheme::Isw] {
        let a = analyze(&SboxCircuit::build(scheme));
        let b = analyze(&SboxCircuit::build(scheme));
        assert_eq!(report::json(&a), report::json(&b), "{scheme}");
        assert_eq!(report::human(&a), report::human(&b), "{scheme}");
    }
}
