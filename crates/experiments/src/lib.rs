//! Shared plumbing for the per-figure reproduction binaries.
//!
//! Every binary regenerates one table or figure of the paper: it prints
//! the same rows/series the paper reports and mirrors them into
//! `results/<name>.csv` for plotting. Run them with `--release`; pass a
//! number as the first argument to override the traces-per-class budget
//! (default 64, the paper's 1024-trace protocol).
//!
//! Trace acquisition goes through the [`campaign`] engine: acquisitions
//! are sharded across worker threads (`SCA_WORKERS`, default all cores),
//! persisted as `SCTR` stores under `results/traces/`, and re-served from
//! that cache on every later run of the same cell (`SCA_CACHE=off` to
//! disable, `SCA_CACHE=refresh` to re-simulate but still persist).
//! Failure handling is tunable too: `SCA_RETRIES` (capture retries per
//! trace, default 2), `SCA_CHECKPOINT` (traces between checkpoint syncs,
//! default 64, `0` disables resume), and `SCA_FAULTS` (the deterministic
//! fault-injection harness; see the `campaign` crate docs for the
//! grammar). `SCA_STREAM` switches spectral figures to the bounded-memory
//! streaming fold (`on`/`exact` for the bit-identical exact mode,
//! `welford` for the cheaper online mode, default `off`); streamed cells
//! keep no raw traces, so they are not persisted to the trace store.
//! `SCA_BACKEND` selects the capture engine: `event` (default, the
//! event-driven reference), `bitsliced` (the levelized 64-traces-per-word
//! engine; bit-identical traces, degrades to event-driven with a recorded
//! warning when a netlist is unsupported), or `auto` (bit-sliced when
//! supported, silently event-driven otherwise). The engine and lane
//! utilization of every run land in the summary table and
//! `results/campaign_runs.jsonl`.
//!
//! Run budgets: `SCA_DEADLINE_MS` (wall-clock limit per acquisition),
//! `SCA_MAX_TRACES` (cap on newly captured traces per acquisition), and
//! `SCA_CAPTURE_TIMEOUT_MS` (per-capture watchdog) — all `0`/unset =
//! unlimited. A budget-stopped run flushes its checkpoint and resumes
//! bit-identically on the next invocation.
//!
//! A malformed value never fails silently: by default it warns on
//! stderr, naming the bad value and the default used instead; with
//! `SCA_STRICT=1` (used in CI) a malformed `SCA_WORKERS`, `SCA_RETRIES`,
//! `SCA_CHECKPOINT`, `SCA_FAULTS`, `SCA_BACKEND`, or budget knob is a
//! hard configuration error and the binary exits with status 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use acquisition::ProtocolConfig;
use campaign::{
    Backend, CacheMode, Campaign, CampaignConfig, CampaignError, FaultPlan, RunBudget, SumMode,
};

/// Parse the common CLI: optional traces-per-class override.
pub fn protocol_from_args() -> ProtocolConfig {
    let tpc = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    ProtocolConfig {
        traces_per_class: tpc,
        ..ProtocolConfig::default()
    }
}

/// Parse an environment variable, warning on stderr (naming the bad
/// value and the default used) when it is set but unusable. A typo must
/// never silently fall back.
fn env_parsed<T>(name: &str, default: T) -> T
where
    T: std::str::FromStr + std::fmt::Display + Copy,
{
    match std::env::var(name) {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("warning: {name}={v:?} is not a valid value; using default {default}");
            default
        }),
        Err(_) => default,
    }
}

/// The cache mode named by `SCA_CACHE`, warning on values that are not
/// `off` / `refresh` / `on` instead of silently defaulting.
fn cache_mode_from_env() -> CacheMode {
    match std::env::var("SCA_CACHE") {
        Ok(v) => match v.as_str() {
            "off" => CacheMode::Off,
            "refresh" => CacheMode::WriteOnly,
            "" | "on" => CacheMode::ReadWrite,
            other => {
                eprintln!(
                    "warning: SCA_CACHE={other:?} is not one of off/refresh/on; \
                     using default read-write"
                );
                CacheMode::ReadWrite
            }
        },
        Err(_) => CacheMode::ReadWrite,
    }
}

/// The streaming policy named by `SCA_STREAM`: `(streaming, mode)`.
/// `off`/`0` (default) keeps the batch path; `on`/`1`/`exact` stream
/// with the bit-identical exact fold; `welford` streams with the
/// cheaper online fold. Anything else warns and defaults to off.
fn stream_from_env() -> (bool, SumMode) {
    match std::env::var("SCA_STREAM") {
        Ok(v) => match v.as_str() {
            "" | "0" | "off" => (false, SumMode::Exact),
            "1" | "on" | "exact" => (true, SumMode::Exact),
            "welford" => (true, SumMode::Welford),
            other => {
                eprintln!(
                    "warning: SCA_STREAM={other:?} is not one of off/on/exact/welford; \
                     using default off"
                );
                (false, SumMode::Exact)
            }
        },
        Err(_) => (false, SumMode::Exact),
    }
}

/// The capture engine named by `SCA_BACKEND`: `event` (default) is the
/// event-driven reference engine, `bitsliced` the levelized batch
/// engine (bit-identical traces; unsupported netlists degrade to
/// event-driven with a recorded warning), `auto` picks bit-sliced when
/// supported and falls back silently. Empty/unset is the default;
/// anything else warns (or, strict, is a typed configuration error).
fn backend_from_env(strict: bool) -> Result<Backend, CampaignError> {
    backend_from_value(std::env::var("SCA_BACKEND").ok(), strict)
}

/// Parsing core of [`backend_from_env`], split out so the garbage path
/// is testable without mutating the (thread-shared) environment.
fn backend_from_value(value: Option<String>, strict: bool) -> Result<Backend, CampaignError> {
    let Some(v) = value else {
        return Ok(Backend::Event);
    };
    if v.is_empty() {
        return Ok(Backend::Event);
    }
    match v.parse() {
        Ok(backend) => Ok(backend),
        Err(()) if strict => Err(CampaignError::Config {
            name: "SCA_BACKEND".to_string(),
            value: v,
        }),
        Err(()) => {
            eprintln!(
                "warning: SCA_BACKEND={v:?} is not one of event/bitsliced/auto; \
                 using default event"
            );
            Ok(Backend::Event)
        }
    }
}

/// Whether `SCA_STRICT=1` (or `on`/`true`) is set: malformed
/// configuration becomes a hard [`CampaignError::Config`] instead of a
/// warning plus default. CI runs strict so a typo'd knob fails the job.
pub fn strict_env() -> bool {
    matches!(
        std::env::var("SCA_STRICT").as_deref(),
        Ok("1") | Ok("on") | Ok("true")
    )
}

/// Strict counterpart of [`env_parsed`]: a set-but-unusable value is a
/// typed configuration error rather than a silent (or warned) default.
fn try_env_parsed<T>(name: &str, default: T) -> Result<T, CampaignError>
where
    T: std::str::FromStr,
{
    match std::env::var(name) {
        Ok(v) => v.parse().map_err(|_| CampaignError::Config {
            name: name.to_string(),
            value: v,
        }),
        Err(_) => Ok(default),
    }
}

/// The run budget named by `SCA_DEADLINE_MS` / `SCA_MAX_TRACES` /
/// `SCA_CANCEL` (0 or unset = unlimited), parsed with `parse` (strict
/// error) or `lenient` (warn-and-default) semantics.
fn budget_from_env(strict: bool) -> Result<RunBudget, CampaignError> {
    let (deadline_ms, max_traces) = if strict {
        (
            try_env_parsed("SCA_DEADLINE_MS", 0u64)?,
            try_env_parsed("SCA_MAX_TRACES", 0usize)?,
        )
    } else {
        (
            env_parsed("SCA_DEADLINE_MS", 0u64),
            env_parsed("SCA_MAX_TRACES", 0usize),
        )
    };
    let mut budget = RunBudget::unlimited();
    if deadline_ms > 0 {
        budget = budget.with_time_limit(Duration::from_millis(deadline_ms));
    }
    if max_traces > 0 {
        budget = budget.with_max_new_traces(max_traces);
    }
    Ok(budget)
}

/// The per-capture watchdog named by `SCA_CAPTURE_TIMEOUT_MS` (0 or
/// unset = no watchdog).
fn capture_timeout_from_env(strict: bool) -> Result<Option<Duration>, CampaignError> {
    let ms = if strict {
        try_env_parsed("SCA_CAPTURE_TIMEOUT_MS", 0u64)?
    } else {
        env_parsed("SCA_CAPTURE_TIMEOUT_MS", 0u64)
    };
    Ok((ms > 0).then(|| Duration::from_millis(ms)))
}

/// Strict counterpart of [`campaign_config`]: any malformed
/// `SCA_WORKERS`, `SCA_RETRIES`, `SCA_CHECKPOINT`, `SCA_FAULTS`, or
/// budget knob is returned as a [`CampaignError::Config`] instead of a
/// stderr warning plus default.
pub fn try_campaign_config(protocol: ProtocolConfig) -> Result<CampaignConfig, CampaignError> {
    let (streaming, stream_mode) = stream_from_env();
    let faults = FaultPlan::try_from_env().map_err(|(value, reason)| {
        eprintln!("error: SCA_FAULTS={value:?}: {reason}");
        CampaignError::Config {
            name: "SCA_FAULTS".to_string(),
            value,
        }
    })?;
    Ok(CampaignConfig {
        protocol,
        workers: try_env_parsed("SCA_WORKERS", 0usize)?,
        cache: cache_mode_from_env(),
        max_retries: try_env_parsed("SCA_RETRIES", 2u32)?,
        checkpoint_every: try_env_parsed("SCA_CHECKPOINT", 64usize)?,
        streaming,
        stream_mode,
        faults,
        budget: budget_from_env(true)?,
        capture_timeout: capture_timeout_from_env(true)?,
        backend: backend_from_env(true)?,
        ..CampaignConfig::default()
    })
}

/// The campaign policy shared by every binary: workers from
/// `SCA_WORKERS` (0 or unset = all cores), cache mode from `SCA_CACHE`
/// (`off`, `refresh`, default read-write), capture retries from
/// `SCA_RETRIES`, checkpoint cadence from `SCA_CHECKPOINT` (0 = no
/// checkpoints), fault injection from `SCA_FAULTS`, the streaming
/// analysis mode from `SCA_STREAM` (`off`, `exact`, `welford`), the
/// capture engine from `SCA_BACKEND` (`event`, `bitsliced`, `auto`), run
/// budgets from `SCA_DEADLINE_MS` / `SCA_MAX_TRACES` /
/// `SCA_CAPTURE_TIMEOUT_MS`, stores and the run log under `results/`.
///
/// With `SCA_STRICT=1` a malformed knob exits the process with status 2
/// (see [`try_campaign_config`]); otherwise it warns and defaults.
pub fn campaign_config(protocol: ProtocolConfig) -> CampaignConfig {
    if strict_env() {
        match try_campaign_config(protocol) {
            Ok(config) => return config,
            Err(e) => {
                eprintln!("error: {e} (SCA_STRICT=1 makes this fatal)");
                std::process::exit(2);
            }
        }
    }
    let (streaming, stream_mode) = stream_from_env();
    let budget = budget_from_env(false).expect("lenient budget parsing cannot fail");
    let capture_timeout =
        capture_timeout_from_env(false).expect("lenient watchdog parsing cannot fail");
    CampaignConfig {
        protocol,
        workers: env_parsed("SCA_WORKERS", 0usize),
        cache: cache_mode_from_env(),
        max_retries: env_parsed("SCA_RETRIES", 2u32),
        checkpoint_every: env_parsed("SCA_CHECKPOINT", 64usize),
        streaming,
        stream_mode,
        budget,
        capture_timeout,
        backend: backend_from_env(false).expect("lenient backend parsing cannot fail"),
        ..CampaignConfig::default()
    }
}

/// A [`Campaign`] wired to the common CLI and environment.
pub fn campaign_from_args() -> Campaign {
    Campaign::new(campaign_config(protocol_from_args()))
}

/// Print the campaign's summary table and append its run reports to
/// `results/campaign_runs.jsonl` (best-effort; the figures themselves
/// are the primary artifact).
pub fn finish_campaign(campaign: &Campaign) {
    if campaign.log().reports().is_empty() {
        return;
    }
    println!("\ncampaign report:");
    if let Err(e) = campaign.finish() {
        eprintln!("warning: cannot append campaign log: {e}");
    }
}

/// Escape one CSV field per RFC 4180: fields containing a comma, quote,
/// or line break are quoted, with embedded quotes doubled.
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Join fields into one escaped CSV row (no trailing newline; the sink
/// adds exactly one per row).
pub fn csv_row<I>(fields: I) -> String
where
    I: IntoIterator,
    I::Item: AsRef<str>,
{
    fields
        .into_iter()
        .map(|f| csv_escape(f.as_ref()))
        .collect::<Vec<_>>()
        .join(",")
}

/// A CSV sink under `results/` that echoes nothing (stdout printing is the
/// caller's job — the file is for plotting). All rows go through
/// [`csv_row`], so fields are escaped and every row ends in a newline.
#[derive(Debug)]
pub struct CsvSink {
    path: PathBuf,
    rows: Vec<String>,
}

impl CsvSink {
    /// Start a CSV file named `results/<name>.csv` with a header row.
    pub fn new<I>(name: &str, header: I) -> Self
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut path = PathBuf::from("results");
        path.push(format!("{name}.csv"));
        Self {
            path,
            rows: vec![csv_row(header)],
        }
    }

    /// Append one row of fields.
    pub fn fields<I>(&mut self, fields: I)
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        self.rows.push(csv_row(fields));
    }

    /// Write the file atomically — temp file, fsync, rename — so a crash
    /// or full disk mid-write never leaves a truncated CSV behind
    /// (best-effort; failures are reported, not fatal — the stdout
    /// report is the primary artifact).
    pub fn finish(self) {
        if let Some(dir) = self.path.parent() {
            if let Err(e) = fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
                return;
            }
        }
        let mut contents = String::with_capacity(self.rows.iter().map(|r| r.len() + 1).sum());
        for r in &self.rows {
            contents.push_str(r);
            contents.push('\n');
        }
        match campaign::write_atomic(&self.path, contents.as_bytes()) {
            Ok(()) => eprintln!("wrote {}", self.path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", self.path.display()),
        }
    }
}

/// Render a float in the paper's compact scientific style.
pub fn sci(x: f64) -> String {
    format!("{x:.4e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats_scientific() {
        assert_eq!(sci(0.000123), "1.2300e-4");
    }

    #[test]
    fn default_protocol_is_the_paper() {
        let p = ProtocolConfig::default();
        assert_eq!(p.traces_per_class, 64);
        assert_eq!(p.sampling.samples, 100);
    }

    #[test]
    fn plain_fields_pass_through() {
        assert_eq!(csv_escape("RSM-ROM"), "RSM-ROM");
        assert_eq!(csv_escape("1.25e-3"), "1.25e-3");
        assert_eq!(csv_escape(""), "");
    }

    #[test]
    fn special_fields_are_quoted() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn rows_join_escaped_fields() {
        assert_eq!(csv_row(["a", "b,c", "d"]), "a,\"b,c\",d");
        assert_eq!(csv_row(Vec::<String>::new()), "");
    }

    #[test]
    fn campaign_config_defaults_are_sane() {
        let c = campaign_config(ProtocolConfig::default());
        assert_eq!(c.store_dir, PathBuf::from("results/traces"));
        assert_eq!(c.log_path, PathBuf::from("results/campaign_runs.jsonl"));
        assert_eq!(c.max_retries, 2);
        assert_eq!(c.checkpoint_every, 64);
    }

    #[test]
    fn stream_env_selects_mode_and_defaults_off() {
        assert_eq!(stream_from_env(), (false, SumMode::Exact));
        std::env::set_var("SCA_STREAM", "exact");
        assert_eq!(stream_from_env(), (true, SumMode::Exact));
        std::env::set_var("SCA_STREAM", "welford");
        assert_eq!(stream_from_env(), (true, SumMode::Welford));
        std::env::set_var("SCA_STREAM", "banana");
        assert_eq!(stream_from_env(), (false, SumMode::Exact));
        std::env::remove_var("SCA_STREAM");
    }

    #[test]
    fn budget_knobs_reach_the_campaign_config() {
        // Unique-per-test env names are impossible here (the knobs are
        // fixed), so this test owns all three and restores them; the
        // defaults test above deliberately does not assert on budget.
        std::env::set_var("SCA_DEADLINE_MS", "1500");
        std::env::set_var("SCA_MAX_TRACES", "32");
        std::env::set_var("SCA_CAPTURE_TIMEOUT_MS", "250");
        let c = try_campaign_config(ProtocolConfig::default()).expect("valid knobs");
        assert_eq!(c.budget.time_limit, Some(Duration::from_millis(1500)));
        assert_eq!(c.budget.max_new_traces, Some(32));
        assert_eq!(c.capture_timeout, Some(Duration::from_millis(250)));

        // Garbage values for these fixed knobs are deliberately NOT set
        // here: other tests call campaign_config concurrently, and under
        // SCA_STRICT=1 (the CI fault matrix) a racing garbage value
        // would exit the whole test process. The typed-error path is
        // covered with a private variable name below.

        std::env::remove_var("SCA_DEADLINE_MS");
        std::env::remove_var("SCA_MAX_TRACES");
        std::env::remove_var("SCA_CAPTURE_TIMEOUT_MS");
    }

    #[test]
    fn backend_env_selects_engine_and_defaults_to_event() {
        // Values go through backend_from_value directly: setting a
        // garbage SCA_BACKEND in the shared process environment would
        // race the strict try_campaign_config calls of other tests.
        let get = |v: Option<&str>, strict| backend_from_value(v.map(String::from), strict);
        assert_eq!(get(None, false).unwrap(), Backend::Event);
        assert_eq!(get(None, true).unwrap(), Backend::Event);
        assert_eq!(get(Some(""), true).unwrap(), Backend::Event);
        assert_eq!(get(Some("event"), false).unwrap(), Backend::Event);
        assert_eq!(get(Some("bitsliced"), true).unwrap(), Backend::Bitsliced);
        assert_eq!(get(Some("AUTO"), false).unwrap(), Backend::Auto);
        // Lenient: warn and default; strict: typed error naming the knob.
        assert_eq!(get(Some("banana"), false).unwrap(), Backend::Event);
        let err = get(Some("banana"), true).expect_err("strict garbage is fatal");
        assert!(matches!(err, CampaignError::Config { ref name, ref value }
            if name == "SCA_BACKEND" && value == "banana"));
    }

    #[test]
    fn strict_parsing_returns_typed_config_errors() {
        // A set-but-garbage value is a CampaignError::Config naming the
        // knob; unset falls back to the given default. Unique variable
        // names: the test process' environment is shared across threads.
        std::env::set_var("SCA_TEST_STRICT_BAD", "banana");
        let err = try_env_parsed::<usize>("SCA_TEST_STRICT_BAD", 0).expect_err("typed error");
        assert!(matches!(err, CampaignError::Config { ref name, ref value }
            if name == "SCA_TEST_STRICT_BAD" && value == "banana"));
        std::env::remove_var("SCA_TEST_STRICT_BAD");
        assert_eq!(
            try_env_parsed::<usize>("SCA_TEST_STRICT_UNSET", 4).expect("unset is default"),
            4
        );
    }

    #[test]
    fn env_parsing_warns_and_defaults_on_garbage() {
        // Unique variable names: the test process' environment is shared
        // across threads.
        std::env::set_var("SCA_TEST_ENV_GOOD", "7");
        assert_eq!(env_parsed("SCA_TEST_ENV_GOOD", 0usize), 7);
        std::env::set_var("SCA_TEST_ENV_BAD", "banana");
        assert_eq!(env_parsed("SCA_TEST_ENV_BAD", 3usize), 3);
        assert_eq!(env_parsed("SCA_TEST_ENV_UNSET", 5u32), 5);
        std::env::remove_var("SCA_TEST_ENV_GOOD");
        std::env::remove_var("SCA_TEST_ENV_BAD");
    }
}
