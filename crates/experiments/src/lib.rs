//! Shared plumbing for the per-figure reproduction binaries.
//!
//! Every binary regenerates one table or figure of the paper: it prints
//! the same rows/series the paper reports and mirrors them into
//! `results/<name>.csv` for plotting. Run them with `--release`; pass a
//! number as the first argument to override the traces-per-class budget
//! (default 64, the paper's 1024-trace protocol).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use acquisition::ProtocolConfig;

/// Parse the common CLI: optional traces-per-class override.
pub fn protocol_from_args() -> ProtocolConfig {
    let tpc = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    ProtocolConfig {
        traces_per_class: tpc,
        ..ProtocolConfig::default()
    }
}

/// A CSV sink under `results/` that echoes nothing (stdout printing is the
/// caller's job — the file is for plotting).
#[derive(Debug)]
pub struct CsvSink {
    path: PathBuf,
    rows: Vec<String>,
}

impl CsvSink {
    /// Start a CSV file named `results/<name>.csv` with a header row.
    pub fn new(name: &str, header: &str) -> Self {
        let mut path = PathBuf::from("results");
        path.push(format!("{name}.csv"));
        Self {
            path,
            rows: vec![header.to_string()],
        }
    }

    /// Append one row.
    pub fn row(&mut self, fields: std::fmt::Arguments<'_>) {
        self.rows.push(fields.to_string());
    }

    /// Write the file (best-effort; failures are reported, not fatal —
    /// the stdout report is the primary artifact).
    pub fn finish(self) {
        if let Some(dir) = self.path.parent() {
            if let Err(e) = fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
                return;
            }
        }
        match fs::File::create(&self.path) {
            Ok(mut f) => {
                for r in &self.rows {
                    let _ = writeln!(f, "{r}");
                }
                eprintln!("wrote {}", self.path.display());
            }
            Err(e) => eprintln!("warning: cannot write {}: {e}", self.path.display()),
        }
    }
}

/// Render a float in the paper's compact scientific style.
pub fn sci(x: f64) -> String {
    format!("{x:.4e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats_scientific() {
        assert_eq!(sci(0.000123), "1.2300e-4");
    }

    #[test]
    fn default_protocol_is_the_paper() {
        let p = ProtocolConfig::default();
        assert_eq!(p.traces_per_class, 64);
        assert_eq!(p.sampling.samples, 100);
    }
}
