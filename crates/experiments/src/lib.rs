//! Shared plumbing for the per-figure reproduction binaries.
//!
//! Every binary regenerates one table or figure of the paper: it prints
//! the same rows/series the paper reports and mirrors them into
//! `results/<name>.csv` for plotting. Run them with `--release`; pass a
//! number as the first argument to override the traces-per-class budget
//! (default 64, the paper's 1024-trace protocol).
//!
//! Trace acquisition goes through the [`campaign`] engine: acquisitions
//! are sharded across worker threads (`SCA_WORKERS`, default all cores),
//! persisted as `SCTR` stores under `results/traces/`, and re-served from
//! that cache on every later run of the same cell (`SCA_CACHE=off` to
//! disable, `SCA_CACHE=refresh` to re-simulate but still persist).
//! Failure handling is tunable too: `SCA_RETRIES` (capture retries per
//! trace, default 2), `SCA_CHECKPOINT` (traces between checkpoint syncs,
//! default 64, `0` disables resume), and `SCA_FAULTS` (the deterministic
//! fault-injection harness; see the `campaign` crate docs for the
//! grammar). `SCA_STREAM` switches spectral figures to the bounded-memory
//! streaming fold (`on`/`exact` for the bit-identical exact mode,
//! `welford` for the cheaper online mode, default `off`); streamed cells
//! keep no raw traces, so they are not persisted to the trace store. A
//! malformed value never fails silently: it warns on stderr, naming the
//! bad value and the default used instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use acquisition::ProtocolConfig;
use campaign::{CacheMode, Campaign, CampaignConfig, SumMode};

/// Parse the common CLI: optional traces-per-class override.
pub fn protocol_from_args() -> ProtocolConfig {
    let tpc = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    ProtocolConfig {
        traces_per_class: tpc,
        ..ProtocolConfig::default()
    }
}

/// Parse an environment variable, warning on stderr (naming the bad
/// value and the default used) when it is set but unusable. A typo must
/// never silently fall back.
fn env_parsed<T>(name: &str, default: T) -> T
where
    T: std::str::FromStr + std::fmt::Display + Copy,
{
    match std::env::var(name) {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("warning: {name}={v:?} is not a valid value; using default {default}");
            default
        }),
        Err(_) => default,
    }
}

/// The cache mode named by `SCA_CACHE`, warning on values that are not
/// `off` / `refresh` / `on` instead of silently defaulting.
fn cache_mode_from_env() -> CacheMode {
    match std::env::var("SCA_CACHE") {
        Ok(v) => match v.as_str() {
            "off" => CacheMode::Off,
            "refresh" => CacheMode::WriteOnly,
            "" | "on" => CacheMode::ReadWrite,
            other => {
                eprintln!(
                    "warning: SCA_CACHE={other:?} is not one of off/refresh/on; \
                     using default read-write"
                );
                CacheMode::ReadWrite
            }
        },
        Err(_) => CacheMode::ReadWrite,
    }
}

/// The streaming policy named by `SCA_STREAM`: `(streaming, mode)`.
/// `off`/`0` (default) keeps the batch path; `on`/`1`/`exact` stream
/// with the bit-identical exact fold; `welford` streams with the
/// cheaper online fold. Anything else warns and defaults to off.
fn stream_from_env() -> (bool, SumMode) {
    match std::env::var("SCA_STREAM") {
        Ok(v) => match v.as_str() {
            "" | "0" | "off" => (false, SumMode::Exact),
            "1" | "on" | "exact" => (true, SumMode::Exact),
            "welford" => (true, SumMode::Welford),
            other => {
                eprintln!(
                    "warning: SCA_STREAM={other:?} is not one of off/on/exact/welford; \
                     using default off"
                );
                (false, SumMode::Exact)
            }
        },
        Err(_) => (false, SumMode::Exact),
    }
}

/// The campaign policy shared by every binary: workers from
/// `SCA_WORKERS` (0 or unset = all cores), cache mode from `SCA_CACHE`
/// (`off`, `refresh`, default read-write), capture retries from
/// `SCA_RETRIES`, checkpoint cadence from `SCA_CHECKPOINT` (0 = no
/// checkpoints), fault injection from `SCA_FAULTS`, the streaming
/// analysis mode from `SCA_STREAM` (`off`, `exact`, `welford`), stores
/// and the run log under `results/`.
pub fn campaign_config(protocol: ProtocolConfig) -> CampaignConfig {
    let (streaming, stream_mode) = stream_from_env();
    CampaignConfig {
        protocol,
        workers: env_parsed("SCA_WORKERS", 0usize),
        cache: cache_mode_from_env(),
        max_retries: env_parsed("SCA_RETRIES", 2u32),
        checkpoint_every: env_parsed("SCA_CHECKPOINT", 64usize),
        streaming,
        stream_mode,
        ..CampaignConfig::default()
    }
}

/// A [`Campaign`] wired to the common CLI and environment.
pub fn campaign_from_args() -> Campaign {
    Campaign::new(campaign_config(protocol_from_args()))
}

/// Print the campaign's summary table and append its run reports to
/// `results/campaign_runs.jsonl` (best-effort; the figures themselves
/// are the primary artifact).
pub fn finish_campaign(campaign: &Campaign) {
    if campaign.log().reports().is_empty() {
        return;
    }
    println!("\ncampaign report:");
    if let Err(e) = campaign.finish() {
        eprintln!("warning: cannot append campaign log: {e}");
    }
}

/// Escape one CSV field per RFC 4180: fields containing a comma, quote,
/// or line break are quoted, with embedded quotes doubled.
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Join fields into one escaped CSV row (no trailing newline; the sink
/// adds exactly one per row).
pub fn csv_row<I>(fields: I) -> String
where
    I: IntoIterator,
    I::Item: AsRef<str>,
{
    fields
        .into_iter()
        .map(|f| csv_escape(f.as_ref()))
        .collect::<Vec<_>>()
        .join(",")
}

/// A CSV sink under `results/` that echoes nothing (stdout printing is the
/// caller's job — the file is for plotting). All rows go through
/// [`csv_row`], so fields are escaped and every row ends in a newline.
#[derive(Debug)]
pub struct CsvSink {
    path: PathBuf,
    rows: Vec<String>,
}

impl CsvSink {
    /// Start a CSV file named `results/<name>.csv` with a header row.
    pub fn new<I>(name: &str, header: I) -> Self
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut path = PathBuf::from("results");
        path.push(format!("{name}.csv"));
        Self {
            path,
            rows: vec![csv_row(header)],
        }
    }

    /// Append one row of fields.
    pub fn fields<I>(&mut self, fields: I)
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        self.rows.push(csv_row(fields));
    }

    /// Write the file (best-effort; failures are reported, not fatal —
    /// the stdout report is the primary artifact).
    pub fn finish(self) {
        if let Some(dir) = self.path.parent() {
            if let Err(e) = fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
                return;
            }
        }
        match fs::File::create(&self.path) {
            Ok(mut f) => {
                for r in &self.rows {
                    let _ = writeln!(f, "{r}");
                }
                eprintln!("wrote {}", self.path.display());
            }
            Err(e) => eprintln!("warning: cannot write {}: {e}", self.path.display()),
        }
    }
}

/// Render a float in the paper's compact scientific style.
pub fn sci(x: f64) -> String {
    format!("{x:.4e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats_scientific() {
        assert_eq!(sci(0.000123), "1.2300e-4");
    }

    #[test]
    fn default_protocol_is_the_paper() {
        let p = ProtocolConfig::default();
        assert_eq!(p.traces_per_class, 64);
        assert_eq!(p.sampling.samples, 100);
    }

    #[test]
    fn plain_fields_pass_through() {
        assert_eq!(csv_escape("RSM-ROM"), "RSM-ROM");
        assert_eq!(csv_escape("1.25e-3"), "1.25e-3");
        assert_eq!(csv_escape(""), "");
    }

    #[test]
    fn special_fields_are_quoted() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn rows_join_escaped_fields() {
        assert_eq!(csv_row(["a", "b,c", "d"]), "a,\"b,c\",d");
        assert_eq!(csv_row(Vec::<String>::new()), "");
    }

    #[test]
    fn campaign_config_defaults_are_sane() {
        let c = campaign_config(ProtocolConfig::default());
        assert_eq!(c.store_dir, PathBuf::from("results/traces"));
        assert_eq!(c.log_path, PathBuf::from("results/campaign_runs.jsonl"));
        assert_eq!(c.max_retries, 2);
        assert_eq!(c.checkpoint_every, 64);
    }

    #[test]
    fn stream_env_selects_mode_and_defaults_off() {
        assert_eq!(stream_from_env(), (false, SumMode::Exact));
        std::env::set_var("SCA_STREAM", "exact");
        assert_eq!(stream_from_env(), (true, SumMode::Exact));
        std::env::set_var("SCA_STREAM", "welford");
        assert_eq!(stream_from_env(), (true, SumMode::Welford));
        std::env::set_var("SCA_STREAM", "banana");
        assert_eq!(stream_from_env(), (false, SumMode::Exact));
        std::env::remove_var("SCA_STREAM");
    }

    #[test]
    fn env_parsing_warns_and_defaults_on_garbage() {
        // Unique variable names: the test process' environment is shared
        // across threads.
        std::env::set_var("SCA_TEST_ENV_GOOD", "7");
        assert_eq!(env_parsed("SCA_TEST_ENV_GOOD", 0usize), 7);
        std::env::set_var("SCA_TEST_ENV_BAD", "banana");
        assert_eq!(env_parsed("SCA_TEST_ENV_BAD", 3usize), 3);
        assert_eq!(env_parsed("SCA_TEST_ENV_UNSET", 5u32), 5);
        std::env::remove_var("SCA_TEST_ENV_GOOD");
        std::env::remove_var("SCA_TEST_ENV_BAD");
    }
}
