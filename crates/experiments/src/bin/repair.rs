//! Witness-guided countermeasure repair driver.
//!
//! ```text
//! repair [SUBJECTS...] [--json-dir DIR] [--expect-dir DIR]
//!        [--check] [--bless] [--no-json] [--quiet] [--tpc N] [--seed N]
//!        [--no-confirm]
//! repair --selftest [TPC]
//! ```
//!
//! For each subject the driver runs the beam-search repair loop from
//! `sca-repair`, prints the episode narrative, writes the byte-stable
//! JSON report under `results/repair/`, and — when a repair actually
//! changed the netlist — replays both versions through the bit-sliced
//! power simulator to confirm the peak NICV did not increase.
//!
//! `--check` byte-compares each report against the pinned expectation
//! under `tests/golden/repair/` and exits 1 on drift; after a reviewed
//! change, refresh the pins with `--bless` (or `SCA_BLESS=1`).
//!
//! `--selftest` is the conformance mode CI runs inside the `SCA_FAULTS`
//! injection matrix: every subject must repair deterministically
//! (byte-identical reports across two runs), preserve its function,
//! agree with a from-scratch re-analysis of the repaired netlist, and
//! confirm with a non-increasing NICV peak. Any environment failure
//! exits 2; any conformance mismatch exits 1; panics are a bug.

use std::path::PathBuf;

use sbox_circuits::{InputRole, SboxCircuit, Scheme};
use sca_repair::search::functionally_equivalent;
use sca_repair::{confirm, repair, report, Confirmation, RepairOutcome, SearchConfig};
use sca_verify::{expect, Subject};

/// Subjects the driver knows how to build, in report order.
const SUBJECTS: [&str; 3] = ["ti", "isw", "foreign-masked"];

/// Seed for the NICV confirmation captures (arbitrary, pinned).
const CONFIRM_SEED: u64 = 0xD0E5_11F7;

struct Args {
    subjects: Vec<String>,
    json_dir: PathBuf,
    expect_dir: PathBuf,
    check: bool,
    bless: bool,
    write_json: bool,
    quiet: bool,
    tpc: usize,
    seed: u64,
    do_confirm: bool,
    selftest: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: repair [SUBJECTS...] [--json-dir DIR] [--expect-dir DIR] \
         [--check] [--bless] [--no-json] [--quiet] [--tpc N] [--seed N] \
         [--no-confirm]\n       repair --selftest [TPC]\n  subjects: {} | all",
        SUBJECTS.join(" | ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        subjects: Vec::new(),
        json_dir: PathBuf::from("results/repair"),
        expect_dir: PathBuf::from("tests/golden/repair"),
        check: false,
        bless: expect::blessing(),
        write_json: true,
        quiet: false,
        // 32 traces per class keeps the NICV estimates out of the
        // small-sample noise floor where a genuine repair can show a
        // spuriously negative delta.
        tpc: 32,
        seed: CONFIRM_SEED,
        do_confirm: true,
        selftest: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--selftest" => {
                args.selftest = true;
                if let Some(tpc) = it.next() {
                    match tpc.parse() {
                        Ok(n) => args.tpc = n,
                        Err(_) => usage(),
                    }
                }
            }
            "--json-dir" => match it.next() {
                Some(d) => args.json_dir = PathBuf::from(d),
                None => usage(),
            },
            "--expect-dir" => match it.next() {
                Some(d) => args.expect_dir = PathBuf::from(d),
                None => usage(),
            },
            "--check" => args.check = true,
            "--bless" => args.bless = true,
            "--no-json" => args.write_json = false,
            "--quiet" => args.quiet = true,
            "--no-confirm" => args.do_confirm = false,
            "--tpc" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => args.tpc = n,
                None => usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => args.seed = n,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            "all" => args.subjects.extend(SUBJECTS.iter().map(|s| s.to_string())),
            other => args.subjects.push(other.to_string()),
        }
    }
    if args.subjects.is_empty() {
        args.subjects.extend(SUBJECTS.iter().map(|s| s.to_string()));
    }
    args
}

/// Path of the bundled foreign-netlist fixture, resolved relative to
/// this crate so the driver works from any working directory.
fn foreign_fixture_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/frontend/foreign_masked.yosys.json"
    ))
}

/// Build a named subject, or explain why it cannot be built.
fn build_subject(name: &str) -> Result<Subject, String> {
    match name {
        "ti" => Ok(Subject::of_circuit(&SboxCircuit::build(Scheme::Ti))),
        "isw" => Ok(Subject::of_circuit(&SboxCircuit::build(Scheme::Isw))),
        "foreign-masked" => {
            let path = foreign_fixture_path();
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("fixture {}: {e}", path.display()))?;
            let design = sca_frontend::import_auto(&text).map_err(|e| format!("import: {e:?}"))?;
            Subject::with_roles(
                "foreign-masked",
                design.netlist,
                vec![
                    InputRole::Share { bit: 0, share: 0 },
                    InputRole::Share { bit: 0, share: 1 },
                    InputRole::Share { bit: 1, share: 0 },
                    InputRole::Share { bit: 1, share: 1 },
                ],
                vec![vec![0, 1]],
            )
        }
        other => Err(format!(
            "unknown subject '{other}' (expected {})",
            SUBJECTS.join(" | ")
        )),
    }
}

/// Run one repair episode, with dynamic confirmation when the netlist
/// actually changed.
fn run_episode(
    subject: &Subject,
    tpc: usize,
    seed: u64,
    do_confirm: bool,
) -> Result<(RepairOutcome, Option<Confirmation>), String> {
    let outcome = repair(subject, &SearchConfig::default());
    let confirmation = if do_confirm && outcome.repaired && !outcome.steps.is_empty() {
        Some(confirm(subject, &outcome.subject, tpc, seed)?)
    } else {
        None
    };
    Ok((outcome, confirmation))
}

fn main() {
    let args = parse_args();
    if args.selftest {
        std::process::exit(selftest(args.tpc));
    }

    let mut failures = 0usize;
    for name in &args.subjects {
        let subject = match build_subject(name) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("repair: {e}");
                std::process::exit(2);
            }
        };
        let (outcome, confirmation) =
            match run_episode(&subject, args.tpc, args.seed, args.do_confirm) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("repair: {name}: {e}");
                    std::process::exit(2);
                }
            };
        if !args.quiet {
            print!("{}", report::human(&outcome, confirmation.as_ref()));
        }
        let json = report::json(&outcome, confirmation.as_ref());
        if args.write_json {
            let path = expect::expectation_path(&args.json_dir, name);
            if let Err(e) = expect::bless(&path, &json) {
                eprintln!("repair: writing {}: {e}", path.display());
                std::process::exit(2);
            }
        }
        let pin = expect::expectation_path(&args.expect_dir, name);
        if args.bless {
            if let Err(e) = expect::bless(&pin, &json) {
                eprintln!("repair: blessing {}: {e}", pin.display());
                std::process::exit(2);
            }
            if !args.quiet {
                println!("  blessed {}", pin.display());
            }
        } else if args.check {
            match expect::check(&pin, &json) {
                Ok(()) => {
                    if !args.quiet {
                        println!("  matches {}", pin.display());
                    }
                }
                Err(e) => {
                    eprintln!("repair: {name}: {e}");
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("repair: {failures} subject(s) drifted from pinned expectations");
        std::process::exit(1);
    }
}

/// CI conformance mode; returns the process exit code.
fn selftest(tpc: usize) -> i32 {
    let mut bad = 0usize;
    for name in SUBJECTS {
        let subject = match build_subject(name) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("selftest: {e}");
                return 2;
            }
        };
        let (a, ca) = match run_episode(&subject, tpc, CONFIRM_SEED, true) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("selftest: {name}: {e}");
                return 2;
            }
        };
        let (b, cb) = match run_episode(&subject, tpc, CONFIRM_SEED, true) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("selftest: {name}: {e}");
                return 2;
            }
        };

        // Determinism: two full episodes must render identical bytes.
        let ja = report::json(&a, ca.as_ref());
        if ja != report::json(&b, cb.as_ref()) {
            eprintln!("selftest: {name}: repair episode is not deterministic");
            bad += 1;
        }
        // Every subject in the suite must end free of Error findings.
        if !a.repaired {
            eprintln!("selftest: {name}: not repaired (skipped: {:?})", a.skipped);
            bad += 1;
        }
        // A repair must never change the computed function.
        if !functionally_equivalent(&subject, &a.subject, 256) {
            eprintln!("selftest: {name}: repair changed the computed function");
            bad += 1;
        }
        // The incremental engine's accepted-path analysis must agree
        // with a from-scratch analysis of the repaired netlist.
        let fresh = sca_verify::analyze_subject(&a.subject);
        if sca_verify::report::json(&fresh) != sca_verify::report::json(&a.final_analysis) {
            eprintln!("selftest: {name}: incremental final analysis drifted from from-scratch");
            bad += 1;
        }
        // Dynamic confirmation: the repair must not raise the NICV peak
        // beyond the estimator's small-sample noise. With K classes and
        // N traces the NICV estimate carries a bias floor near
        // (K-1)/N, so glitch-targeted repairs (invisible to the
        // transition-power model) wobble within it; a repair that
        // actually recombined shares would jump far outside it.
        if let Some(c) = ca {
            let classes = subject.num_classes().min(sca_repair::confirm::MAX_CLASSES) as f64;
            let tol = 2.0 * (classes - 1.0) / c.traces as f64;
            if c.repaired_nicv_max > c.base_nicv_max + tol {
                eprintln!(
                    "selftest: {name}: repaired NICV peak rose past noise ({} -> {}, tol {tol})",
                    c.base_nicv_max, c.repaired_nicv_max
                );
                bad += 1;
            }
        }
        println!(
            "selftest: {name}: ok ({} step(s), {} candidate(s), {}/{} dirty gate stats)",
            a.steps.len(),
            a.candidates_tried,
            a.effort.dirty_gates,
            a.effort.total_gates
        );
    }
    if bad > 0 {
        eprintln!("selftest: {bad} conformance failure(s)");
        1
    } else {
        println!("selftest: all {} subjects conform", SUBJECTS.len());
        0
    }
}
