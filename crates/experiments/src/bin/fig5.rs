//! Fig. 5: the two-phase sampling protocol — initial value is a random
//! sharing of (0000)₂, then the final value is applied and 100 samples are
//! captured over 2 ns.

use experiments::CsvSink;
use gatesim::{SamplingConfig, SimConfig, Simulator};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sbox_circuits::{SboxCircuit, Scheme};

fn main() {
    let circuit = SboxCircuit::build(Scheme::Glut);
    let sim = Simulator::new(circuit.netlist(), &SimConfig::default());
    let sampling = SamplingConfig::default();
    let mut rng = SmallRng::seed_from_u64(2022);

    let initial = circuit.encoding().encode(0x0, &mut rng);
    let final_inputs = circuit.encoding().encode(0x9, &mut rng);
    println!("Fig. 5 — trace sampling protocol (GLUT shown)");
    println!("phase 1: settle on a random encoding of class 0");
    println!("  inputs: {}", bits(&initial));
    println!(
        "  (unmasked: {:X})",
        circuit.encoding().unmask_input(&initial)
    );
    println!("phase 2: at t = 0 apply a random encoding of the final value");
    println!("  inputs: {}", bits(&final_inputs));
    println!(
        "  (unmasked: {:X})",
        circuit.encoding().unmask_input(&final_inputs)
    );
    println!(
        "capture: {} samples over {} ps ({} GS/s)",
        sampling.samples,
        sampling.window_ps,
        1000.0 / sampling.period_ps()
    );

    // One session for both the trace and the event record: the second
    // run reuses every scratch buffer the first one warmed up.
    let mut session = sim.session();
    let trace = session.capture(&initial, &final_inputs, &sampling);
    let record = session.transition(&initial, &final_inputs);
    println!(
        "\nresulting trace: {} switching events, {:.1} fJ, settled after {:.0} ps",
        record.events.len(),
        record.total_energy_fj(),
        record.settle_time_ps()
    );
    println!("power trace (mW), one column per 20 ps sample:");
    let mut csv = CsvSink::new("fig5", ["sample", "power_mw"]);
    for (t, p) in trace.iter().enumerate() {
        if t < 30 {
            let bar = "#".repeat((p * 1.0).min(60.0) as usize);
            println!("  T={t:>3} {p:>8.3} {bar}");
        }
        csv.fields([t.to_string(), format!("{p:.6}")]);
    }
    csv.finish();
}

fn bits(v: &[bool]) -> String {
    v.iter().map(|&b| if b { '1' } else { '0' }).collect()
}
