//! Fig. 1: NBTI-induced Vth drift of a PMOS transistor — 6 months of
//! continuous stress versus alternating monthly stress/recovery.

use aging::{AgingConditions, BtiKind, BtiModel, StressSchedule};
use experiments::CsvSink;

fn main() {
    let model = BtiModel::new(BtiKind::Nbti, &AgingConditions::default());
    let continuous = {
        let mut s = StressSchedule::default();
        for _ in 0..6 {
            s.push(aging::StressPhase {
                months: 1.0,
                stressed: true,
            });
        }
        model.trajectory(&s)
    };
    let alternating = model.trajectory(&StressSchedule::alternating(1.0, 3));

    let mut csv = CsvSink::new("fig1", ["month", "continuous_v", "alternating_v"]);
    println!("Fig. 1 — NBTI ΔVth (V), continuous vs alternating stress");
    println!("{:>5} {:>14} {:>14}", "month", "continuous", "alternating");
    for m in 0..6 {
        println!(
            "{:>5} {:>14.5} {:>14.5}",
            m + 1,
            continuous[m],
            alternating[m]
        );
        csv.fields([
            (m + 1).to_string(),
            format!("{:.6}", continuous[m]),
            format!("{:.6}", alternating[m]),
        ]);
    }
    let ratio = alternating[5] / continuous[5];
    println!("final alternating/continuous ratio: {ratio:.3} (recovery credit)");
    csv.finish();
}
