//! CPA baseline: first-order key recovery against every implementation —
//! the attack the paper's leakage metrics predict.

use acquisition::{acquire_cpa, ProtocolConfig};
use experiments::CsvSink;
use sbox_circuits::{SboxCircuit, Scheme};
use sca_attacks::{cpa_attack, guessing_entropy, success_rate_curve, LeakageModel};

fn main() {
    let traces: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1024);
    let key = 0xB;
    let config = ProtocolConfig::default();

    let mut csv = CsvSink::new(
        "cpa",
        [
            "scheme",
            "model",
            "traces",
            "best_guess",
            "key_rank",
            "peak_corr",
            "guessing_entropy",
            "sr_256",
            "sr_all",
        ],
    );
    println!("CPA key recovery (true key = {key:X}, {traces} traces, transition model)");
    println!(
        "{:9} {:>6} {:>5} {:>9} {:>8} {:>8} {:>8}",
        "scheme", "guess", "rank", "peak-ρ", "GE@256", "SR@256", "SR@all"
    );
    for scheme in Scheme::ALL {
        let circuit = SboxCircuit::build(scheme);
        let data = acquire_cpa(&circuit, &config, key, traces);
        // The attacker tries both standard models and keeps the stronger
        // (lower rank of the true key, then higher peak correlation).
        let (model, result) = [LeakageModel::OutputTransition, LeakageModel::HammingWeight]
            .into_iter()
            .map(|m| (m, cpa_attack(&data.plaintexts, &data.traces, m)))
            .min_by(|(_, a), (_, b)| {
                a.key_rank(key).cmp(&b.key_rank(key)).then(
                    b.scores[usize::from(b.best_guess())]
                        .total_cmp(&a.scores[usize::from(a.best_guess())]),
                )
            })
            .expect("two models");
        let rank = result.key_rank(key);
        let ge = guessing_entropy(
            &data.plaintexts,
            &data.traces,
            key,
            model,
            256.min(traces),
            8,
        );
        let sr = success_rate_curve(
            &data.plaintexts,
            &data.traces,
            key,
            model,
            &[256.min(traces), traces],
            8,
        );
        println!(
            "{:9} {:>6X} {:>5} {:>9.4} {:>8.2} {:>8.2} {:>8.2}",
            scheme.label(),
            result.best_guess(),
            rank,
            result.scores[usize::from(result.best_guess())],
            ge,
            sr[0].1,
            sr[1].1
        );
        csv.fields([
            scheme.label().to_string(),
            "transition".to_string(),
            traces.to_string(),
            format!("{:X}", result.best_guess()),
            rank.to_string(),
            format!("{:.6}", result.scores[usize::from(result.best_guess())]),
            format!("{ge:.4}"),
            format!("{:.4}", sr[0].1),
            format!("{:.4}", sr[1].1),
        ]);
        eprintln!("attacked {scheme}");
    }
    println!("\nunprotected implementations should fall to first-order CPA;");
    println!("masked ones should hold at this trace budget.");
    csv.finish();
}
