//! Static-vs-dynamic cross-validation of the `sca-verify` glitch model.
//!
//! For every scheme, each gate gets two numbers:
//!
//! * **static** — the analyzer's energy-weighted glitch score
//!   (`sca_verify::Scores::gate_glitch`), computed from the netlist alone;
//! * **dynamic** — the multi-bit spectral leakage of the gate's switching
//!   energy: drive the event-driven simulator over the paper's classified
//!   stimulus protocol, average each gate's per-transition supply energy
//!   per class, Walsh–Hadamard-transform the 16 class means, and keep
//!   `Σ a_u²` over the glitch modes `wH(u) > 1`.
//!
//! The two are rank-correlated (Spearman, midranks for ties) per scheme
//! and pooled; rows go to `results/verify/correlation.csv`, the scheme
//! summary to `results/verify/correlation_summary.csv`. A positive pooled
//! coefficient is the acceptance bar: the static model must rank gates
//! the way the simulator actually leaks.

use acquisition::{classified_schedule, ProtocolConfig, NUM_CLASSES};
use experiments::{sci, CsvSink};
use gatesim::Simulator;
use leakage_core::{spectrum_of, stats::spearman};
use sbox_circuits::{SboxCircuit, Scheme};
use sca_verify::analyze;

/// Per-gate dynamic multi-bit spectral leakage under the classified
/// stimulus protocol (fJ² in spectral units).
fn dynamic_multibit(circuit: &SboxCircuit, config: &ProtocolConfig) -> Vec<f64> {
    let netlist = circuit.netlist();
    let sim = Simulator::new(netlist, &config.sim);
    let mut session = sim.session();
    let mut energy = vec![[0.0f64; NUM_CLASSES]; netlist.gates().len()];
    let mut counts = [0usize; NUM_CLASSES];
    for stimulus in classified_schedule(circuit, config) {
        let record = session.transition(&stimulus.initial, &stimulus.final_inputs);
        let class = usize::from(stimulus.label);
        counts[class] += 1;
        for e in &record.events {
            energy[e.gate.index()][class] += e.energy_fj;
        }
    }
    energy
        .iter()
        .map(|per_class| {
            let means: Vec<f64> = per_class
                .iter()
                .zip(&counts)
                .map(|(&sum, &n)| sum / n as f64)
                .collect();
            spectrum_of(&means)
                .iter()
                .enumerate()
                .filter(|(u, _)| u.count_ones() > 1)
                .map(|(_, &a)| a * a)
                .sum()
        })
        .collect()
}

fn main() {
    let tpc = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let config = ProtocolConfig {
        traces_per_class: tpc,
        ..ProtocolConfig::default()
    };

    let mut csv = CsvSink::new(
        "verify/correlation",
        [
            "scheme",
            "gate",
            "cell",
            "net",
            "static_glitch",
            "dynamic_multibit",
        ],
    );
    let mut summary = CsvSink::new(
        "verify/correlation_summary",
        [
            "scheme",
            "gates",
            "spearman",
            "static_score",
            "dynamic_multibit_total",
        ],
    );
    println!(
        "static-vs-dynamic glitch cross-validation, {} traces/class",
        config.traces_per_class
    );
    println!(
        "{:9} {:>6} {:>10} {:>14} {:>14}",
        "scheme", "gates", "spearman", "static", "dyn multi-bit"
    );

    let mut pooled_static = Vec::new();
    let mut pooled_dynamic = Vec::new();
    let mut static_scores = Vec::new();
    for scheme in Scheme::ALL {
        let circuit = SboxCircuit::build(scheme);
        let analysis = analyze(&circuit);
        let dynamic = dynamic_multibit(&circuit, &config);
        let statics = &analysis.scores.gate_glitch;
        assert_eq!(statics.len(), dynamic.len());

        let netlist = circuit.netlist();
        for (g, (&s, &d)) in statics.iter().zip(&dynamic).enumerate() {
            let gate = &netlist.gates()[g];
            csv.fields([
                scheme.label().to_string(),
                g.to_string(),
                gate.cell().mnemonic().to_string(),
                netlist.nets()[gate.output().index()]
                    .name()
                    .unwrap_or("?")
                    .to_string(),
                format!("{s:.6e}"),
                format!("{d:.6e}"),
            ]);
        }

        let rho = spearman(statics, &dynamic);
        let dyn_total: f64 = dynamic.iter().sum();
        println!(
            "{:9} {:>6} {:>10.4} {:>14} {:>14}",
            scheme.label(),
            statics.len(),
            rho,
            sci(analysis.scores.scheme_score()),
            sci(dyn_total)
        );
        summary.fields([
            scheme.label().to_string(),
            statics.len().to_string(),
            format!("{rho:.6}"),
            format!("{:.6e}", analysis.scores.scheme_score()),
            format!("{dyn_total:.6e}"),
        ]);
        static_scores.push((scheme, analysis.scores.scheme_score()));
        pooled_static.extend_from_slice(statics);
        pooled_dynamic.extend(dynamic);
    }

    let pooled = spearman(&pooled_static, &pooled_dynamic);
    println!(
        "\npooled Spearman over {} gates: {pooled:.4}",
        pooled_static.len()
    );
    summary.fields([
        "ALL".to_string(),
        pooled_static.len().to_string(),
        format!("{pooled:.6}"),
        String::new(),
        String::new(),
    ]);
    assert!(
        pooled > 0.0,
        "static glitch scores must rank with dynamic multi-bit leakage"
    );

    println!("\nstatic scheme ordering (most leaky first):");
    static_scores.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (scheme, score) in &static_scores {
        println!("  {:8} {}", scheme.label(), sci(*score));
    }

    csv.finish();
    summary.finish();
}
