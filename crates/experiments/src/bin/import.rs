//! Import an external netlist (Yosys JSON or structural EDIF) and run
//! it through the full measurement stack: capture, spectrum, and the
//! `sca-verify` masking report.
//!
//! ```text
//! import <file> [--scheme NAME | --sidecar PATH] [--format yosys|edif]
//!        [--tpc N] [--no-capture]
//! import --selftest [TPC]
//! ```
//!
//! With `--scheme` (or a `--sidecar` declaring one), the imported
//! netlist binds to that scheme's input encoding and the campaign
//! acquires its classified trace set under a cache label keyed by the
//! *netlist content hash* (`import-<scheme>-<digest>`): re-importing the
//! same file hits the trace store, importing a modified file misses it.
//! Without a scheme the tool stops after structural import and reports
//! the netlist's statistics.
//!
//! `--selftest` is the conformance mode CI runs (including under the
//! `SCA_FAULTS` injection matrix): every hand-built scheme is exported
//! through both writers, re-imported, and checked for structural
//! identity, bit-identical captures on both simulation backends,
//! byte-identical `sca-verify` reports, and content-hash cache keying.
//! Any typed import failure exits 2; any conformance mismatch exits 1;
//! panics are a bug.

use acquisition::{acquire, acquire_bitsliced};
use campaign::Campaign;
use experiments::{campaign_config, finish_campaign};
use leakage_core::ClassifiedTraces;
use sbox_circuits::{SboxCircuit, Scheme};
use sca_frontend::{
    import_str, netlist_digest, sidecar_toml, structural_diff, to_edif, to_yosys_json,
    EncodingSidecar, FrontendError, SourceFormat,
};

use acquisition::ProtocolConfig;

/// Parsed command line. Manual parsing: the shared
/// `experiments::protocol_from_args` helper reads `args[1]` as a trace
/// count, which would eat the file path.
struct Args {
    file: Option<String>,
    scheme: Option<String>,
    sidecar: Option<String>,
    format: Option<SourceFormat>,
    tpc: usize,
    capture: bool,
    selftest: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: import <file> [--scheme NAME | --sidecar PATH] \
         [--format yosys|edif] [--tpc N] [--no-capture]\n       import --selftest [TPC]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        file: None,
        scheme: None,
        sidecar: None,
        format: None,
        tpc: 16,
        capture: true,
        selftest: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--selftest" => {
                args.selftest = true;
                if let Some(tpc) = it.next() {
                    match tpc.parse() {
                        Ok(n) => args.tpc = n,
                        Err(_) => usage(),
                    }
                }
            }
            "--scheme" => args.scheme = it.next().or_else(|| usage()),
            "--sidecar" => args.sidecar = it.next().or_else(|| usage()),
            "--format" => match it.next().as_deref() {
                Some("yosys") | Some("yosys-json") | Some("json") => {
                    args.format = Some(SourceFormat::YosysJson)
                }
                Some("edif") => args.format = Some(SourceFormat::Edif),
                _ => usage(),
            },
            "--tpc" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => args.tpc = n,
                None => usage(),
            },
            "--no-capture" => args.capture = false,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            other if args.file.is_none() => args.file = Some(other.to_string()),
            _ => usage(),
        }
    }
    args
}

fn protocol(tpc: usize) -> ProtocolConfig {
    ProtocolConfig {
        traces_per_class: tpc,
        ..ProtocolConfig::default()
    }
}

/// The content-hash campaign label for an imported circuit.
fn import_label(circuit: &SboxCircuit) -> String {
    format!(
        "import-{}-{:016x}",
        circuit.scheme().label().to_lowercase(),
        netlist_digest(circuit.netlist())
    )
}

fn main() {
    let args = parse_args();
    let code = if args.selftest {
        selftest(args.tpc)
    } else {
        run_import(&args)
    };
    std::process::exit(code);
}

/// Import one file, report its structure, and (when a scheme is known)
/// capture + verify it. Typed diagnostics exit 2; nothing panics.
fn run_import(args: &Args) -> i32 {
    let Some(path) = &args.file else { usage() };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            let err = FrontendError::Io {
                path: path.clone(),
                message: e.to_string(),
            };
            eprintln!("import: {err}");
            return 2;
        }
    };
    let result = match args.format {
        Some(format) => import_str(&text, format),
        None => sca_frontend::import_auto(&text),
    };
    let design = match result {
        Ok(d) => d,
        Err(e) => {
            eprintln!("import: {e}");
            return 2;
        }
    };
    for warning in &design.warnings {
        eprintln!("import: warning: {warning}");
    }
    let stats = design.netlist.stats();
    println!(
        "imported `{}` ({}): {} inputs, {} outputs, {} gates, depth {}",
        design.netlist.name(),
        design.format,
        design.netlist.num_inputs(),
        design.netlist.num_outputs(),
        design.netlist.gates().len(),
        stats.delay_gates,
    );

    // Resolve the encoding: an explicit sidecar file wins, then
    // `--scheme`, else stop after the structural import.
    let sidecar = match (&args.sidecar, &args.scheme) {
        (Some(path), _) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!(
                        "import: {}",
                        FrontendError::Io {
                            path: path.clone(),
                            message: e.to_string(),
                        }
                    );
                    return 2;
                }
            };
            match EncodingSidecar::parse(&text) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("import: {e}");
                    return 2;
                }
            }
        }
        (None, Some(name)) => match EncodingSidecar::parse(&format!("scheme = \"{name}\"\n")) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("import: {e}");
                return 2;
            }
        },
        (None, None) => None,
    };
    let Some(sidecar) = sidecar else {
        println!("no scheme declared (--scheme/--sidecar); stopping after structural import");
        return 0;
    };

    let circuit = match sidecar.bind(design.netlist) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("import: {e}");
            return 2;
        }
    };
    println!(
        "bound to scheme {} ({} shares/bit)",
        circuit.scheme().label(),
        circuit.encoding().shares_per_bit()
    );

    let analysis = sca_verify::analyze(&circuit);
    print!("{}", sca_verify::report::human(&analysis));

    if !args.capture {
        return 0;
    }
    let label = import_label(&circuit);
    println!("campaign label: {label}");
    let mut campaign = Campaign::new(campaign_config(protocol(args.tpc)));
    let outcome = campaign.acquire_circuit_aged(&circuit, &label, 0.0);
    println!(
        "captured {} traces (cache hit: {}); total leakage power {:.3e}",
        outcome.traces.len(),
        outcome.cache_hit,
        outcome.spectrum.total_leakage_power(),
    );
    finish_campaign(&campaign);
    0
}

/// The conformance selftest: export → re-import → compare, for every
/// scheme, both formats, both backends, plus content-hash cache keying.
fn selftest(tpc: usize) -> i32 {
    let config = protocol(tpc);
    let mut failures = 0usize;
    let mut campaign = Campaign::new(campaign_config(config.clone()));

    for scheme in Scheme::ALL {
        let label = scheme.label();
        let native = SboxCircuit::build(scheme);

        // Yosys JSON round trip.
        let json = to_yosys_json(native.netlist());
        let imported = match import_str(&json, SourceFormat::YosysJson) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("selftest: {label}: yosys-json import failed: {e}");
                return 2;
            }
        };
        if let Some(diff) = structural_diff(native.netlist(), &imported.netlist) {
            eprintln!("selftest: {label}: yosys-json structural drift: {diff}");
            failures += 1;
            continue;
        }

        // EDIF round trip.
        let edif = to_edif(native.netlist());
        match import_str(&edif, SourceFormat::Edif) {
            Ok(d) => {
                if let Some(diff) = structural_diff(native.netlist(), &d.netlist) {
                    eprintln!("selftest: {label}: edif structural drift: {diff}");
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("selftest: {label}: edif import failed: {e}");
                return 2;
            }
        }

        // Sidecar bind (ground-truth roles included).
        let sidecar = match EncodingSidecar::parse(&sidecar_toml(&native)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("selftest: {label}: sidecar failed: {e}");
                return 2;
            }
        };
        let circuit = match sidecar.bind(imported.netlist) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("selftest: {label}: sidecar bind failed: {e}");
                return 2;
            }
        };

        // Event-driven captures must be bit-identical.
        let native_traces = acquire(&native, &config);
        let import_traces = acquire(&circuit, &config);
        if let Some(diff) = trace_diff(&native_traces, &import_traces) {
            eprintln!("selftest: {label}: event capture drift: {diff}");
            failures += 1;
        }

        // Bit-sliced captures must agree with the event backend too.
        match (
            acquire_bitsliced(&native, &config),
            acquire_bitsliced(&circuit, &config),
        ) {
            (Ok(n), Ok(i)) => {
                if let Some(diff) = trace_diff(&n, &i) {
                    eprintln!("selftest: {label}: bitsliced capture drift: {diff}");
                    failures += 1;
                }
            }
            (Err(n), Err(i)) => {
                // Both backends must reject for the same reason.
                if n.to_string() != i.to_string() {
                    eprintln!("selftest: {label}: bitsliced rejection drift: `{n}` vs `{i}`");
                    failures += 1;
                }
            }
            (Ok(_), Err(e)) | (Err(e), Ok(_)) => {
                eprintln!("selftest: {label}: bitsliced support drift: {e}");
                failures += 1;
            }
        }

        // The verifier must issue byte-identical diagnostics.
        let native_report = sca_verify::report::json(&sca_verify::analyze(&native));
        let import_report = sca_verify::report::json(&sca_verify::analyze(&circuit));
        if native_report != import_report {
            eprintln!("selftest: {label}: sca-verify report drift");
            failures += 1;
        }

        // Campaign capture under the content-hash label: the second
        // acquisition of the same imported netlist must hit the cache
        // (when caching is enabled) and agree trace-for-trace.
        let cache_label = import_label(&circuit);
        let first = campaign.acquire_circuit_aged(&circuit, &cache_label, 0.0);
        let second = campaign.acquire_circuit_aged(&circuit, &cache_label, 0.0);
        if first.partial.is_none() && second.partial.is_none() {
            if let Some(diff) = trace_diff(&first.traces, &second.traces) {
                eprintln!("selftest: {label}: campaign re-acquisition drift: {diff}");
                failures += 1;
            }
        }
        println!(
            "selftest: {label}: ok (campaign label {cache_label}, cache hit on re-acquire: {})",
            second.cache_hit
        );
    }

    finish_campaign(&campaign);
    if failures > 0 {
        eprintln!("selftest: {failures} conformance failure(s)");
        1
    } else {
        println!("selftest: all schemes conform");
        0
    }
}

/// First difference between two classified sets, comparing f64s bit for
/// bit.
fn trace_diff(a: &ClassifiedTraces, b: &ClassifiedTraces) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("trace count {} vs {}", a.len(), b.len()));
    }
    for (i, ((ca, ta), (cb, tb))) in a.iter().zip(b.iter()).enumerate() {
        if ca != cb {
            return Some(format!("trace {i} class {ca} vs {cb}"));
        }
        if ta.len() != tb.len() {
            return Some(format!("trace {i} samples {} vs {}", ta.len(), tb.len()));
        }
        for (s, (x, y)) in ta.iter().zip(tb).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Some(format!("trace {i} sample {s}: {x:e} vs {y:e}"));
            }
        }
    }
    None
}
