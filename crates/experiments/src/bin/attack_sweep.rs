//! Campaign-scale key-recovery sweep: CPA, DPA, and MLPA against every
//! scheme at several device ages, in one streaming pass per cell.
//!
//! For each `(scheme, age)` the campaign folds the attack accumulators
//! of all three distinguishers alongside the spectral state, then
//! reports measurements-to-disclosure, the success-rate and
//! guessing-entropy curves, and the recovered key. The closing table
//! ranks the schemes by MLPA measurements-to-disclosure — the paper's
//! protection ordering (unprotected fastest to fall, masked schemes
//! holding out).
//!
//! `arg1` is the per-trial trace budget (default 256).

use acquisition::ProtocolConfig;
use campaign::{AttackPlan, Campaign, SumMode};
use experiments::{campaign_config, finish_campaign, CsvSink};
use sbox_circuits::Scheme;
use sca_attacks::{Distinguisher, LeakageModel};

fn main() {
    let traces: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);
    let key = 0x5;
    let ages_months = [0.0f64, 24.0, 60.0];
    let plan = AttackPlan {
        key,
        traces,
        trials: 4,
        distinguishers: vec![
            Distinguisher::Cpa(LeakageModel::OutputTransition),
            Distinguisher::Dpa { bit: 0 },
            Distinguisher::Mlpa,
        ],
        sr_threshold: 0.8,
        mode: SumMode::Exact,
    };
    let mut campaign = Campaign::new(campaign_config(ProtocolConfig::default()));

    let mut summary = CsvSink::new(
        "attacks/summary",
        [
            "scheme",
            "age_months",
            "distinguisher",
            "mtd",
            "recovered",
            "trials_recovered",
            "trials",
            "final_sr",
            "final_ge",
            "mean_tlp",
        ],
    );
    let mut curves = CsvSink::new(
        "attacks/curves",
        [
            "scheme",
            "age_months",
            "distinguisher",
            "traces",
            "success_rate",
            "guessing_entropy",
        ],
    );

    println!(
        "Streaming key recovery: {} traces/trial x {} trials, true key {key:X}",
        plan.traces, plan.trials
    );
    println!(
        "{:9} {:>4} {:>16} {:>5} {:>9} {:>8} {:>8}",
        "scheme", "age", "distinguisher", "mtd", "recovered", "final-sr", "final-ge"
    );

    let mut mlpa_fresh_mtd: Vec<(Scheme, Option<usize>)> = Vec::new();
    for scheme in Scheme::ALL {
        let outcomes = campaign.attack_sweep(scheme, &ages_months, &plan);
        for outcome in &outcomes {
            for report in &outcome.reports {
                let (final_sr, final_ge) = report
                    .success_rate
                    .last()
                    .zip(report.guessing_entropy.last())
                    .map(|(&(_, sr), &(_, ge))| (sr, ge))
                    .unwrap_or((0.0, 15.0));
                let mtd_text = report
                    .mtd
                    .map_or_else(|| "-".to_string(), |m| m.to_string());
                println!(
                    "{:9} {:>4} {:>16} {:>5} {:>9} {:>8.2} {:>8.2}",
                    scheme.label(),
                    outcome.age_months,
                    report.distinguisher.label(),
                    mtd_text,
                    format!("{:X}", report.recovered),
                    final_sr,
                    final_ge
                );
                summary.fields([
                    scheme.label().to_string(),
                    format!("{}", outcome.age_months),
                    report.distinguisher.label().to_string(),
                    mtd_text.clone(),
                    format!("{:X}", report.recovered),
                    report.trials_recovered.to_string(),
                    outcome.trials.to_string(),
                    format!("{final_sr:.3}"),
                    format!("{final_ge:.3}"),
                    format!("{:.6e}", outcome.mean_total_leakage_power),
                ]);
                for (&(n, sr), &(_, ge)) in report.success_rate.iter().zip(&report.guessing_entropy)
                {
                    curves.fields([
                        scheme.label().to_string(),
                        format!("{}", outcome.age_months),
                        report.distinguisher.label().to_string(),
                        n.to_string(),
                        format!("{sr:.3}"),
                        format!("{ge:.3}"),
                    ]);
                }
            }
            if outcome.age_months == 0.0 {
                if let Some(r) = outcome.report(Distinguisher::Mlpa) {
                    mlpa_fresh_mtd.push((scheme, r.mtd));
                }
            }
        }
        eprintln!("swept {scheme}");
    }
    summary.finish();
    curves.finish();

    // The headline ordering: fresh-device MLPA MTD, weakest scheme first
    // (undisclosed schemes sort last).
    mlpa_fresh_mtd.sort_by_key(|&(_, mtd)| mtd.unwrap_or(usize::MAX));
    let ranking: Vec<String> = mlpa_fresh_mtd
        .iter()
        .map(|(s, mtd)| match mtd {
            Some(m) => format!("{} ({m})", s.label()),
            None => format!("{} (>{})", s.label(), plan.traces),
        })
        .collect();
    println!("MLPA measurements-to-disclosure, fresh device:");
    println!("  {}", ranking.join(" < "));
    finish_campaign(&campaign);
}
