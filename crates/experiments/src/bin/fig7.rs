//! Fig. 7: total leakage power per implementation for fresh and 1–4-year
//! aged devices, split into single-bit and multi-bit (glitch) components,
//! with the single-bit/total ratios reported in §V-B.2.
//!
//! The sweep goes through `run_aged_spectra`, so `SCA_STREAM=exact`
//! reproduces the figure bit-for-bit in bounded memory (the 35-cell
//! sweep never holds more than one in-flight trace per worker).

use experiments::{campaign_from_args, finish_campaign, sci, CsvSink};
use sbox_circuits::Scheme;

fn main() {
    let mut campaign = campaign_from_args();
    let ages = [0.0, 12.0, 24.0, 36.0, 48.0];

    let mut csv = CsvSink::new(
        "fig7",
        [
            "scheme",
            "age_months",
            "total",
            "single_bit",
            "multi_bit",
            "single_bit_ratio",
        ],
    );
    println!(
        "Fig. 7 — total leakage power over device age, {} traces/class",
        campaign.config().protocol.traces_per_class
    );
    println!(
        "{:9} {:>5} {:>12} {:>12} {:>12} {:>8}",
        "scheme", "age", "total", "1-bit", "multi-bit", "1b/total"
    );

    let mut ratio_by_age: Vec<(f64, Vec<f64>, Vec<f64>)> =
        ages.iter().map(|&a| (a, Vec::new(), Vec::new())).collect();
    let mut fresh_totals = Vec::new();
    for scheme in Scheme::ALL {
        let outcomes = campaign.run_aged_spectra(scheme, &ages);
        for (i, aged) in outcomes.iter().enumerate() {
            let sp = &aged.spectrum;
            let (total, single, multi) = (
                sp.total_leakage_power(),
                sp.total_single_bit(),
                sp.total_multi_bit(),
            );
            println!(
                "{:9} {:>5.0} {:>12} {:>12} {:>12} {:>8.4}",
                scheme.label(),
                aged.age_months,
                sci(total),
                sci(single),
                sci(multi),
                sp.single_bit_ratio()
            );
            csv.fields([
                scheme.label().to_string(),
                aged.age_months.to_string(),
                format!("{total:.6e}"),
                format!("{single:.6e}"),
                format!("{multi:.6e}"),
                format!("{:.6}", sp.single_bit_ratio()),
            ]);
            if scheme.is_protected() {
                ratio_by_age[i].1.push(sp.single_bit_ratio());
            } else {
                ratio_by_age[i].2.push(sp.single_bit_ratio());
            }
            if aged.age_months == 0.0 {
                fresh_totals.push((scheme, total));
            }
        }
        eprintln!("aged sweep done for {scheme}");
    }

    println!("\naverage single-bit/total ratio (the §V-B.2 statistic):");
    println!("{:>6} {:>12} {:>12}", "age", "protected", "unprotected");
    for (age, prot, unprot) in &ratio_by_age {
        let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        println!("{:>6.0} {:>12.4} {:>12.4}", age, avg(prot), avg(unprot));
    }

    println!("\nfresh-device security ordering (least leaky first):");
    fresh_totals.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (s, total) in &fresh_totals {
        println!("  {:8} {}", s.label(), sci(*total));
    }
    csv.finish();
    finish_campaign(&campaign);
}
