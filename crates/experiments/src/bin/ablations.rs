//! Ablations of the power-model design choices called out in DESIGN.md:
//! absorbed-glitch energy fraction, process-variation σ, measurement
//! noise, and trace budget — each swept against the LUT (unprotected) and
//! ISW (masked) leakage estimates.

use acquisition::{LeakageStudy, ProtocolConfig};
use experiments::{sci, CsvSink};
use gatesim::SimConfig;
use sbox_circuits::Scheme;

fn leak(config: ProtocolConfig, scheme: Scheme) -> f64 {
    LeakageStudy::new(config)
        .run(scheme)
        .spectrum
        .total_leakage_power()
}

fn main() {
    let mut csv = CsvSink::new("ablations", ["knob", "value", "lut", "isw"]);
    println!("Power-model ablations (total leakage, LUT vs ISW)\n");

    println!("absorbed-glitch energy fraction:");
    for absorbed in [0.0, 0.15, 0.35, 0.7] {
        let cfg = ProtocolConfig {
            sim: SimConfig {
                absorbed_energy_fraction: absorbed,
                ..SimConfig::default()
            },
            ..ProtocolConfig::default()
        };
        let (l, i) = (leak(cfg.clone(), Scheme::Lut), leak(cfg, Scheme::Isw));
        println!("  {absorbed:>4}: LUT {:>10}  ISW {:>10}", sci(l), sci(i));
        csv.fields([
            "absorbed".into(),
            absorbed.to_string(),
            format!("{l:.6e}"),
            format!("{i:.6e}"),
        ]);
    }

    println!("process-variation σ:");
    for sigma in [0.0, 0.05, 0.1, 0.2] {
        let cfg = ProtocolConfig {
            sim: SimConfig {
                process_sigma: sigma,
                ..SimConfig::default()
            },
            ..ProtocolConfig::default()
        };
        let (l, i) = (leak(cfg.clone(), Scheme::Lut), leak(cfg, Scheme::Isw));
        println!("  {sigma:>4}: LUT {:>10}  ISW {:>10}", sci(l), sci(i));
        csv.fields([
            "sigma".into(),
            sigma.to_string(),
            format!("{l:.6e}"),
            format!("{i:.6e}"),
        ]);
    }

    println!("measurement noise σ (mW):");
    for noise in [0.0, 0.5, 2.0] {
        let cfg = ProtocolConfig {
            sim: SimConfig {
                noise_mw: noise,
                ..SimConfig::default()
            },
            ..ProtocolConfig::default()
        };
        let (l, i) = (leak(cfg.clone(), Scheme::Lut), leak(cfg, Scheme::Isw));
        println!("  {noise:>4}: LUT {:>10}  ISW {:>10}", sci(l), sci(i));
        csv.fields([
            "noise".into(),
            noise.to_string(),
            format!("{l:.6e}"),
            format!("{i:.6e}"),
        ]);
    }

    println!("traces per class (estimation floor):");
    for tpc in [16usize, 64, 256] {
        let cfg = ProtocolConfig {
            traces_per_class: tpc,
            ..ProtocolConfig::default()
        };
        let (l, i) = (leak(cfg.clone(), Scheme::Lut), leak(cfg, Scheme::Isw));
        println!("  {tpc:>4}: LUT {:>10}  ISW {:>10}", sci(l), sci(i));
        csv.fields([
            "traces_per_class".into(),
            tpc.to_string(),
            format!("{l:.6e}"),
            format!("{i:.6e}"),
        ]);
    }
    csv.finish();
}
