//! Success-rate curves: CPA success probability versus trace count, per
//! implementation — the classic security graph behind the paper's claim
//! that "points of interest … increase the probability of attack
//! success".

use acquisition::ProtocolConfig;
use campaign::Campaign;
use experiments::{campaign_config, finish_campaign, CsvSink};
use sbox_circuits::Scheme;
use sca_attacks::{success_rate_curve, LeakageModel};

fn main() {
    let max_traces: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1024)
        .max(1);
    let key = 0x5;
    let mut campaign = Campaign::new(campaign_config(ProtocolConfig::default()));
    let mut counts: Vec<usize> = [16usize, 32, 64, 128, 256, 512, 1024]
        .into_iter()
        .filter(|&c| c <= max_traces)
        .collect();
    if counts.is_empty() {
        // A budget below the smallest snapshot (the CI fault matrix runs
        // the sweep with 2 traces) still gets one snapshot at the full
        // budget instead of tripping the empty-counts assert downstream.
        counts.push(max_traces);
    }
    let mut header = vec!["scheme".to_string()];
    header.extend(counts.iter().map(|c| format!("sr_{c}")));
    let mut csv = CsvSink::new("sr_curves", header);
    println!("CPA success rate vs traces (transition model, true key {key:X})");
    print!("{:9}", "scheme");
    for c in &counts {
        print!(" {c:>6}");
    }
    println!();
    for scheme in Scheme::ALL {
        let data = campaign.acquire_cpa(scheme, key, max_traces);
        let curve = success_rate_curve(
            &data.plaintexts,
            &data.traces,
            key,
            LeakageModel::OutputTransition,
            &counts,
            8,
        );
        print!("{:9}", scheme.label());
        for (_, sr) in &curve {
            print!(" {sr:>6.2}");
        }
        println!();
        let mut row = vec![scheme.label().to_string()];
        row.extend(curve.iter().map(|(_, sr)| format!("{sr:.3}")));
        csv.fields(row);
        eprintln!("swept {scheme}");
    }
    csv.finish();
    finish_campaign(&campaign);
}
