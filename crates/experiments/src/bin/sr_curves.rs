//! Success-rate curves: CPA success probability versus trace count, per
//! implementation — the classic security graph behind the paper's claim
//! that "points of interest … increase the probability of attack
//! success".

use acquisition::{acquire_cpa, ProtocolConfig};
use experiments::CsvSink;
use sbox_circuits::{SboxCircuit, Scheme};
use sca_attacks::{success_rate_curve, LeakageModel};

fn main() {
    let max_traces: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1024);
    let key = 0x5;
    let counts: Vec<usize> = [16usize, 32, 64, 128, 256, 512, 1024]
        .into_iter()
        .filter(|&c| c <= max_traces)
        .collect();
    let mut csv = CsvSink::new(
        "sr_curves",
        &format!(
            "scheme,{}",
            counts
                .iter()
                .map(|c| format!("sr_{c}"))
                .collect::<Vec<_>>()
                .join(",")
        ),
    );
    println!("CPA success rate vs traces (transition model, true key {key:X})");
    print!("{:9}", "scheme");
    for c in &counts {
        print!(" {c:>6}");
    }
    println!();
    for scheme in Scheme::ALL {
        let circuit = SboxCircuit::build(scheme);
        let data = acquire_cpa(&circuit, &ProtocolConfig::default(), key, max_traces);
        let curve = success_rate_curve(
            &data.plaintexts,
            &data.traces,
            key,
            LeakageModel::OutputTransition,
            &counts,
            8,
        );
        print!("{:9}", scheme.label());
        for (_, sr) in &curve {
            print!(" {sr:>6.2}");
        }
        println!();
        csv.row(format_args!(
            "{},{}",
            scheme.label(),
            curve
                .iter()
                .map(|(_, sr)| format!("{sr:.3}"))
                .collect::<Vec<_>>()
                .join(",")
        ));
        eprintln!("swept {scheme}");
    }
    csv.finish();
}
