//! `scrub` — verify and self-heal the on-disk trace store.
//!
//! Walks every `SCTR` file under `results/traces/` (the shared campaign
//! store), verifies header, per-record, and whole-file checksums, and
//! repairs what it can: damaged records are re-captured seed-stably from
//! the header's protocol seed so a healed store is bit-identical to one
//! that was never damaged. Files it cannot heal safely (foreign
//! configuration, tampered name, unsalvageable header) are renamed
//! aside with a `.quarantined` suffix.
//!
//! Exit status: `0` when every store verified (clean or healed), `1`
//! when anything had to be quarantined, `2` on a strict configuration
//! error (`SCA_STRICT=1`).
//!
//! `scrub --selftest` runs the heal path end to end against a throwaway
//! store in a temp directory — capture, corrupt one byte, scrub, and
//! require the healed file to be byte-identical to the original — then
//! checks that an unsalvageable file is quarantined, not trusted. CI
//! runs this to prove the recovery machinery on every push.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use acquisition::ProtocolConfig;
use campaign::{Campaign, CampaignConfig, RecordFate};
use experiments::{campaign_from_args, finish_campaign};
use sbox_circuits::Scheme;

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--selftest") {
        return selftest();
    }
    let mut campaign = campaign_from_args();
    let report = campaign.scrub();
    print!("{report}");
    finish_campaign(&campaign);
    if report.all_verified() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Prove the heal path on a throwaway store: a single flipped byte must
/// be detected and healed back to the exact original bytes, and an
/// unsalvageable file must be quarantined rather than served.
fn selftest() -> ExitCode {
    let dir = std::env::temp_dir().join(format!("sca-scrub-selftest-{}", std::process::id()));
    let result = selftest_in(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    match result {
        Ok(()) => {
            println!("scrub selftest: ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("scrub selftest FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn selftest_in(dir: &Path) -> Result<(), String> {
    let protocol = ProtocolConfig {
        traces_per_class: 2,
        ..ProtocolConfig::default()
    };
    let config = CampaignConfig {
        protocol,
        store_dir: dir.join("traces"),
        log_path: dir.join("runs.jsonl"),
        workers: 1,
        ..CampaignConfig::default()
    };
    let mut campaign = Campaign::new(config);

    // Capture a small classified store and snapshot its exact bytes.
    let outcome = campaign.acquire(Scheme::Lut);
    if outcome.partial.is_some() {
        return Err("selftest acquisition was interrupted".into());
    }
    let store = single_store(&dir.join("traces"))?;
    let pristine = std::fs::read(&store).map_err(|e| format!("cannot read store: {e}"))?;

    // Flip one byte in the record region (past the ~64-byte header) and
    // require the scrub to notice, heal, and restore the exact bytes.
    let mut damaged = pristine.clone();
    let offset = pristine.len() / 2;
    damaged[offset] ^= 0xFF;
    std::fs::write(&store, &damaged).map_err(|e| format!("cannot corrupt store: {e}"))?;

    let report = campaign.scrub();
    if report.healed() != 1 || report.quarantined() != 0 {
        return Err(format!("expected exactly one heal, got: {report}"));
    }
    let healed = std::fs::read(&store).map_err(|e| format!("cannot re-read store: {e}"))?;
    if healed != pristine {
        return Err("healed store is not byte-identical to the pristine capture".into());
    }

    // Destroy the header: this must be quarantined, never trusted.
    let mut wrecked = pristine;
    wrecked[0] ^= 0xFF;
    std::fs::write(&store, &wrecked).map_err(|e| format!("cannot wreck store: {e}"))?;
    let report = campaign.scrub();
    let quarantined = report
        .outcomes
        .iter()
        .any(|o| matches!(o.fate, RecordFate::Quarantined { .. }));
    if !quarantined || report.all_verified() {
        return Err(format!("expected a quarantine, got: {report}"));
    }
    if store.exists() {
        return Err("quarantined store was left in place".into());
    }
    Ok(())
}

/// The single `.sctr` file the selftest capture produced.
fn single_store(dir: &Path) -> Result<PathBuf, String> {
    let mut stores: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot list {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "sctr"))
        .collect();
    if stores.len() != 1 {
        return Err(format!("expected one store file, found {}", stores.len()));
    }
    Ok(stores.pop().expect("checked length"))
}
