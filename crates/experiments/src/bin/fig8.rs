//! Fig. 8: leakage power of the ISW implementation over 4 years of usage —
//! leakage decreases with age, fastest in the first year.

use experiments::{campaign_from_args, finish_campaign, sci, CsvSink};
use sbox_circuits::Scheme;

fn main() {
    let mut campaign = campaign_from_args();
    let ages = [0.0, 12.0, 24.0, 36.0, 48.0];
    let outcomes = campaign.run_aged(Scheme::Isw, &ages);

    let mut csv = CsvSink::new(
        "fig8",
        [
            "sample", "month0", "month12", "month24", "month36", "month48",
        ],
    );
    println!("Fig. 8 — ISW LeakagePower(T) at ages 0–48 months");
    print!("{:>4}", "T");
    for a in &ages {
        print!(" {:>11}", format!("{a:.0} mo"));
    }
    println!();
    let series: Vec<Vec<f64>> = outcomes
        .iter()
        .map(|o| o.spectrum.leakage_power_series())
        .collect();
    for t in 0..100 {
        if t < 20 {
            print!("{t:>4}");
            for s in &series {
                print!(" {:>11}", sci(s[t]));
            }
            println!();
        }
        let mut row = vec![t.to_string()];
        row.extend(series.iter().map(|s| format!("{:.6e}", s[t])));
        csv.fields(row);
    }

    println!("\ntotal leakage vs age:");
    let totals: Vec<f64> = outcomes
        .iter()
        .map(|o| o.spectrum.total_leakage_power())
        .collect();
    for (o, total) in outcomes.iter().zip(&totals) {
        println!("  {:>3.0} months: {}", o.age_months, sci(*total));
    }
    let y1 = totals[0] - totals[1];
    let y4 = totals[3] - totals[4];
    println!(
        "degradation year 1: {} vs year 4: {} (fast-then-slow: {})",
        sci(y1),
        sci(y4),
        y1 > y4
    );
    csv.finish();
    finish_campaign(&campaign);
}
