//! Table I: gate-level specification of the seven S-box implementations.
//!
//! Prints our generated netlists' gate mix, area, depth and random-bit
//! budget next to the paper's published numbers.

use experiments::CsvSink;
use sbox_circuits::{SboxCircuit, Scheme};
use sbox_netlist::NetlistStats;

/// The paper's Table I, in our column order:
/// (AND, OR, XOR, INV, BUF, NAND, NOR, XNOR, total, equ, delay, random).
const PAPER: [(Scheme, [u32; 8], u32, f64, u32, u32); 7] = [
    (Scheme::Lut, [18, 7, 0, 7, 0, 0, 0, 0], 32, 41.0, 8, 0),
    (Scheme::Opt, [2, 2, 9, 1, 0, 0, 0, 0], 14, 29.0, 8, 0),
    (
        Scheme::Glut,
        [580, 180, 0, 12, 0, 0, 0, 0],
        772,
        1183.0,
        15,
        8,
    ),
    (Scheme::Rsm, [134, 74, 0, 20, 0, 0, 0, 0], 228, 373.5, 11, 4),
    (
        Scheme::RsmRom,
        [0, 0, 0, 510, 0, 16, 716, 0],
        1242,
        1121.0,
        120,
        4,
    ),
    (Scheme::Isw, [16, 0, 34, 7, 0, 0, 0, 0], 57, 112.5, 17, 4),
    (
        Scheme::Ti,
        [800, 0, 647, 0, 1, 0, 0, 2],
        1450,
        2423.5,
        9,
        12,
    ),
];

fn main() {
    let mut csv = CsvSink::new(
        "table1",
        [
            "scheme",
            "and",
            "or",
            "xor",
            "inv",
            "buf",
            "nand",
            "nor",
            "xnor",
            "total",
            "equ",
            "delay_gates",
            "delay_ps",
            "random_bits",
        ],
    );
    println!("Table I — gate-level specification (ours vs paper)");
    println!(
        "{:9} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>8} {:>6} {:>8} {:>4}",
        "scheme",
        "AND",
        "OR",
        "XOR",
        "INV",
        "BUF",
        "NAND",
        "NOR",
        "XNOR",
        "total",
        "equ",
        "delay",
        "ps",
        "rnd"
    );
    for (scheme, fam, total, equ, delay, rnd) in PAPER {
        let circuit = SboxCircuit::build(scheme);
        let stats = circuit.netlist().stats();
        let ours: Vec<usize> = NetlistStats::TABLE_ONE_FAMILIES
            .iter()
            .map(|f| stats.family_count(f))
            .collect();
        println!(
            "{:9} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>8.1} {:>6} {:>8.0} {:>4}   (ours)",
            scheme.label(),
            ours[0],
            ours[1],
            ours[2],
            ours[3],
            ours[4],
            ours[5],
            ours[6],
            ours[7],
            stats.total_gates,
            stats.equivalent_gates,
            stats.delay_gates,
            stats.delay_ps,
            scheme.random_bits()
        );
        println!(
            "{:9} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>8.1} {:>6} {:>8} {:>4}   (paper)",
            "", fam[0], fam[1], fam[2], fam[3], fam[4], fam[5], fam[6], fam[7], total, equ,
            delay, "-", rnd
        );
        let mut row = vec![scheme.label().to_string()];
        row.extend(ours.iter().map(usize::to_string));
        row.extend([
            stats.total_gates.to_string(),
            format!("{:.1}", stats.equivalent_gates),
            stats.delay_gates.to_string(),
            format!("{:.0}", stats.delay_ps),
            scheme.random_bits().to_string(),
        ]);
        csv.fields(row);
    }
    csv.finish();
}
