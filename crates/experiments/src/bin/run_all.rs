//! Run every reproduction binary in sequence (light configuration).
//!
//! The binaries share the campaign trace cache under `results/traces/`:
//! the first binary to need a given `(implementation, age)` cell
//! simulates and persists it, every later binary reads it back, so each
//! distinct acquisition happens at most once per sweep. The per-run
//! reports land in `results/campaign_runs.jsonl`; a cache summary over
//! this sweep's lines is printed at the end.

use std::path::Path;
use std::process::Command;

fn jsonl_lines(path: &Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .map(|s| s.lines().map(str::to_string).collect())
        .unwrap_or_default()
}

fn main() {
    let bins = [
        "table1",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "theorem1",
        "cpa",
        "template",
        "metrics",
        "ablations",
        "balanced",
        "second_order",
        "sr_curves",
    ];
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let log_path = Path::new("results/campaign_runs.jsonl");
    let lines_before = jsonl_lines(log_path).len();
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================");
        let status = Command::new(exe_dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => failures.push(format!("{bin}: exit {s}")),
            Err(e) => failures.push(format!("{bin}: {e}")),
        }
    }

    let after = jsonl_lines(log_path);
    let new_lines = &after[lines_before.min(after.len())..];
    if !new_lines.is_empty() {
        let hits = new_lines
            .iter()
            .filter(|l| l.contains("\"cache_hit\":true"))
            .count();
        println!(
            "\ncampaign cache over this sweep: {hits} hits / {} misses across {} runs",
            new_lines.len() - hits,
            new_lines.len()
        );
        println!("(per-run timings in {})", log_path.display());
    }

    if failures.is_empty() {
        println!("\nall experiments completed; CSVs in results/");
    } else {
        eprintln!("\nfailures: {failures:?}");
        std::process::exit(1);
    }
}
