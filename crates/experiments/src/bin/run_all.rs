//! Run every reproduction binary in sequence (light configuration).

use std::process::Command;

fn main() {
    let bins = [
        "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "theorem1",
        "cpa", "template", "metrics", "ablations", "balanced", "second_order", "sr_curves",
    ];
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================");
        let status = Command::new(exe_dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => failures.push(format!("{bin}: exit {s}")),
            Err(e) => failures.push(format!("{bin}: {e}")),
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; CSVs in results/");
    } else {
        eprintln!("\nfailures: {failures:?}");
        std::process::exit(1);
    }
}
