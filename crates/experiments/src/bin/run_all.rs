//! Run every reproduction binary in sequence (light configuration).
//!
//! The binaries share the campaign trace cache under `results/traces/`:
//! the first binary to need a given `(implementation, age)` cell
//! simulates and persists it, every later binary reads it back, so each
//! distinct acquisition happens at most once per sweep. The per-run
//! reports land in `results/campaign_runs.jsonl`; a cache summary over
//! this sweep's lines is printed at the end.
//!
//! The sweep is failure-isolated: one crashing experiment records its
//! error and the rest still run. A pass/fail summary table closes the
//! sweep, and the exit status is non-zero iff anything failed. CLI
//! arguments (the traces-per-class override) are forwarded to every
//! binary.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

fn jsonl_lines(path: &Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .map(|s| s.lines().map(str::to_string).collect())
        .unwrap_or_default()
}

/// One experiment's outcome in the sweep summary.
struct SweepResult {
    bin: &'static str,
    outcome: Result<(), String>,
    seconds: f64,
}

fn main() {
    let bins = [
        "table1",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "theorem1",
        "cpa",
        "template",
        "metrics",
        "ablations",
        "balanced",
        "second_order",
        "sr_curves",
        "attack_sweep",
    ];
    // Locating our own directory can only fail in exotic environments;
    // degrade to bare names (resolved via PATH) rather than crashing the
    // whole sweep before it starts.
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(Path::to_path_buf))
        .unwrap_or_else(|| {
            eprintln!("warning: cannot locate own binary directory; relying on PATH");
            PathBuf::new()
        });
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let log_path = Path::new("results/campaign_runs.jsonl");
    let lines_before = jsonl_lines(log_path).len();

    let mut results: Vec<SweepResult> = Vec::new();
    for bin in bins {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================");
        let started = Instant::now();
        let status = Command::new(exe_dir.join(bin)).args(&forwarded).status();
        let outcome = match status {
            Ok(s) if s.success() => Ok(()),
            Ok(s) => Err(format!("exit {s}")),
            Err(e) => Err(e.to_string()),
        };
        if let Err(e) = &outcome {
            eprintln!("error: {bin} failed ({e}); continuing with the remaining experiments");
        }
        results.push(SweepResult {
            bin,
            outcome,
            seconds: started.elapsed().as_secs_f64(),
        });
    }

    let after = jsonl_lines(log_path);
    let new_lines = &after[lines_before.min(after.len())..];
    if !new_lines.is_empty() {
        let hits = new_lines
            .iter()
            .filter(|l| l.contains("\"cache_hit\":true"))
            .count();
        println!(
            "\ncampaign cache over this sweep: {hits} hits / {} misses across {} runs",
            new_lines.len() - hits,
            new_lines.len()
        );
        println!("(per-run timings in {})", log_path.display());
    }

    let failed = results.iter().filter(|r| r.outcome.is_err()).count();
    println!("\nsweep summary:");
    println!(
        "{:<14} {:>6} {:>9}  detail",
        "experiment", "status", "time(s)"
    );
    for r in &results {
        let (status, detail) = match &r.outcome {
            Ok(()) => ("pass", String::new()),
            Err(e) => ("FAIL", e.clone()),
        };
        println!("{:<14} {:>6} {:>9.1}  {detail}", r.bin, status, r.seconds);
    }
    println!(
        "{failed} failed / {} passed of {} experiments",
        results.len() - failed,
        results.len()
    );

    if failed == 0 {
        println!("all experiments completed; CSVs in results/");
    } else {
        std::process::exit(1);
    }
}
