//! Profiled template attack per implementation: the strongest first-order
//! adversary, needing no leakage model at all.
//!
//! Profiling uses a clone device with a known key; the attack set comes
//! from the target. Unprotected circuits must fall with a handful of
//! traces; masked ones force the adversary to higher orders.

use acquisition::{acquire, acquire_cpa, ProtocolConfig};
use experiments::CsvSink;
use sbox_circuits::{SboxCircuit, Scheme};
use sca_attacks::template::{template_attack, TemplateSet};

fn main() {
    let attack_traces: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);
    let key = 0xA;
    let mut csv = CsvSink::new(
        "template",
        ["scheme", "attack_traces", "best_guess", "rank"],
    );
    println!("template attack (profiling: 64/class on a clone; true key {key:X})");
    println!(
        "{:9} {:>7} {:>6} {:>5}",
        "scheme", "traces", "guess", "rank"
    );
    for scheme in Scheme::ALL {
        let circuit = SboxCircuit::build(scheme);
        // Profiling set on the clone (same die model, different mask seed).
        let profiling = acquire(
            &circuit,
            &ProtocolConfig {
                seed: 0xFACE,
                ..ProtocolConfig::default()
            },
        );
        let templates = TemplateSet::profile(&profiling);
        // Attack set with the secret key folded in.
        let data = acquire_cpa(&circuit, &ProtocolConfig::default(), key, attack_traces);
        let result = template_attack(&templates, &data.plaintexts, &data.traces);
        println!(
            "{:9} {:>7} {:>6X} {:>5}",
            scheme.label(),
            attack_traces,
            result.best_guess(),
            result.key_rank(key)
        );
        csv.fields([
            scheme.label().to_string(),
            attack_traces.to_string(),
            format!("{:X}", result.best_guess()),
            result.key_rank(key).to_string(),
        ]);
        eprintln!("attacked {scheme}");
    }
    println!("\nprofiled attacks need no leakage model: every unprotected circuit");
    println!("must fall; the masked ones survive first-order template matching.");
    csv.finish();
}
