//! Fig. 6: `LeakagePower(T)` over the first 20 sample points for every
//! implementation — the "points of interest" where leakage shows up.

use experiments::{campaign_from_args, finish_campaign, sci, CsvSink};
use sbox_circuits::Scheme;

fn main() {
    let mut campaign = campaign_from_args();
    let mut series = Vec::new();
    for scheme in Scheme::ALL {
        let outcome = campaign.acquire(scheme);
        series.push((scheme, outcome.spectrum.leakage_power_series()));
        eprintln!("measured {scheme}");
    }

    let mut header = vec!["sample".to_string()];
    header.extend(
        Scheme::ALL
            .iter()
            .map(|s| s.label().to_lowercase().replace('-', "_")),
    );
    let mut csv = CsvSink::new("fig6", header);
    println!(
        "Fig. 6 — LeakagePower(T) = Σ_u≠0 a_u²(T), first 20 samples, {} traces/class",
        campaign.config().protocol.traces_per_class
    );
    print!("{:>4}", "T");
    for (s, _) in &series {
        print!(" {:>11}", s.label());
    }
    println!();
    for t in 0..100 {
        if t < 20 {
            print!("{t:>4}");
            for (_, lp) in &series {
                print!(" {:>11}", sci(lp[t]));
            }
            println!();
        }
        let mut row = vec![t.to_string()];
        row.extend(series.iter().map(|(_, lp)| format!("{:.6e}", lp[t])));
        csv.fields(row);
    }
    println!("\npoints of interest (argmax per scheme):");
    for (s, lp) in &series {
        let (t, v) = lp
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty");
        println!("  {:8} peak at T={t:<3} ({})", s.label(), sci(*v));
    }
    csv.finish();
    finish_campaign(&campaign);
}
