//! Higher-order attack demonstration (paper §II-A: "implementations that
//! are protected against dth-order attacks can be still vulnerable to
//! higher-order attacks"): first- vs second-order CPA against ISW.

use acquisition::{acquire_cpa, ProtocolConfig};
use experiments::CsvSink;
use sbox_circuits::{SboxCircuit, Scheme};
use sca_attacks::second_order::{second_order_cpa, window_pairs};
use sca_attacks::{cpa_attack, LeakageModel};

fn main() {
    let traces: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2048);
    let key = 0x6;
    let config = ProtocolConfig::default();
    let circuit = SboxCircuit::build(Scheme::Isw);
    let data = acquire_cpa(&circuit, &config, key, traces);

    println!("ISW, true key {key:X}, {traces} traces");
    let mut csv = CsvSink::new("second_order", ["order", "best_guess", "rank", "peak_corr"]);

    let first = cpa_attack(
        &data.plaintexts,
        &data.traces,
        LeakageModel::OutputTransition,
    );
    println!(
        "1st-order CPA : guess {:X}, rank {}, peak ρ {:.4}",
        first.best_guess(),
        first.key_rank(key),
        first.scores[usize::from(first.best_guess())]
    );
    csv.fields([
        "1".to_string(),
        format!("{:X}", first.best_guess()),
        first.key_rank(key).to_string(),
        format!("{:.6}", first.scores[usize::from(first.best_guess())]),
    ]);

    // Combine the active window (first 16 samples — ISW settles in ~300 ps).
    let pairs = window_pairs(0..16);
    let second = second_order_cpa(
        &data.plaintexts,
        &data.traces,
        &pairs,
        LeakageModel::OutputTransition,
    );
    println!(
        "2nd-order CPA : guess {:X}, rank {}, peak ρ {:.4}  ({} sample pairs)",
        second.best_guess(),
        second.key_rank(key),
        second.scores[usize::from(second.best_guess())],
        pairs.len()
    );
    csv.fields([
        "2".to_string(),
        format!("{:X}", second.best_guess()),
        second.key_rank(key).to_string(),
        format!("{:.6}", second.scores[usize::from(second.best_guess())]),
    ]);
    println!(
        "\nsecond-order rank {} vs first-order rank {}: the centered product\nrecombines the two ISW shares.",
        second.key_rank(key),
        first.key_rank(key)
    );
    csv.finish();
}
