//! Auxiliary side-channel metrics: SNR / NICV per scheme, and the
//! PRESENT S-box confusion coefficients that make it "the most leaking
//! function in symmetric cryptography" (paper §IV, citing Fei et al.).

use experiments::{campaign_from_args, finish_campaign, CsvSink};
use leakage_core::metrics::{confusion_contrast, nicv, snr};
use present_cipher::SBOX;
use sbox_circuits::Scheme;

fn main() {
    let mut campaign = campaign_from_args();
    let mut csv = CsvSink::new(
        "metrics",
        ["scheme", "max_snr", "max_nicv", "argmax_sample"],
    );
    println!(
        "SNR / NICV per implementation ({} traces/class)",
        campaign.config().protocol.traces_per_class
    );
    println!(
        "{:9} {:>10} {:>10} {:>8}",
        "scheme", "max SNR", "max NICV", "at T"
    );
    for scheme in Scheme::ALL {
        let set = campaign.acquire(scheme).traces;
        let s = snr(&set);
        let v = nicv(&set);
        let (t, &max_nicv) = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty");
        // Deterministic traces (unmasked LUT variants) have exactly zero
        // within-class variance under the compensated metrics pipeline,
        // so their SNR is a genuine infinity — report it as such instead
        // of silently dropping it to the finite maximum.
        let max_snr = s.iter().cloned().fold(0.0, f64::max);
        let snr_text = if max_snr.is_infinite() {
            "inf".to_string()
        } else {
            format!("{max_snr:.4}")
        };
        println!(
            "{:9} {:>10} {:>10.4} {:>8}",
            scheme.label(),
            snr_text,
            max_nicv,
            t
        );
        csv.fields([
            scheme.label().to_string(),
            format!("{max_snr:.6}"),
            format!("{max_nicv:.6}"),
            t.to_string(),
        ]);
        eprintln!("measured {scheme}");
    }

    println!("\nPRESENT S-box confusion-coefficient contrast per output bit:");
    for bit in 0..4 {
        let (mean, var) = confusion_contrast(&SBOX, bit);
        println!("  bit {bit}: mean κ = {mean:.4}, Var κ = {var:.5}");
    }
    println!("non-degenerate variance of κ across key pairs = good CPA distinguishability.");
    csv.finish();
    finish_campaign(&campaign);
}
