//! Glitch ablation via delay balancing: re-run the leakage study on
//! buffer-balanced variants of each netlist.
//!
//! The paper's introduction contrasts two schools: *eliminate* glitches
//! (conservative, e.g. GliFreD) versus *tolerate* them (TI). This
//! experiment quantifies the split directly: whatever leakage survives
//! delay balancing is value/amplitude leakage; the remainder was
//! glitch-borne.

use acquisition::LeakageStudy;
use experiments::{protocol_from_args, sci, CsvSink};
use sbox_circuits::{SboxCircuit, Scheme};
use sbox_netlist::timing;
use sbox_netlist::transform::balance_delays;

fn main() {
    let config = protocol_from_args();
    let study = LeakageStudy::new(config.clone());
    let mut csv = CsvSink::new(
        "balanced",
        [
            "scheme",
            "leak_plain",
            "leak_balanced",
            "skew_plain_ps",
            "skew_balanced_ps",
            "gates_plain",
            "gates_balanced",
        ],
    );
    println!(
        "Delay-balancing ablation ({} traces/class)",
        config.traces_per_class
    );
    println!(
        "{:9} {:>12} {:>12} {:>9} {:>10} {:>8} {:>9}",
        "scheme", "plain", "balanced", "skew(ps)", "skew-bal", "gates", "gates-bal"
    );
    // RSM-ROM's synchronization chains already are its balancing; the
    // giant tabulated netlists balloon under buffering — study the four
    // compact schemes where the question is sharpest.
    for scheme in [Scheme::Lut, Scheme::Opt, Scheme::Isw, Scheme::Ti] {
        let plain = SboxCircuit::build(scheme);
        let skew_plain = timing::analyze(plain.netlist()).total_skew_ps(plain.netlist());
        let balanced_nl = balance_delays(plain.netlist(), 6.0).expect("balance");
        let skew_bal = timing::analyze(&balanced_nl).total_skew_ps(&balanced_nl);
        let gates_plain = plain.netlist().gates().len();
        let gates_bal = balanced_nl.gates().len();
        let balanced = SboxCircuit::from_parts(scheme, balanced_nl);

        let leak_plain = study.run(scheme).spectrum.total_leakage_power();
        let traces = acquisition::acquire(&balanced, &config);
        let leak_balanced = leakage_core::LeakageSpectrum::from_class_means(&traces.class_means())
            .total_leakage_power();
        println!(
            "{:9} {:>12} {:>12} {:>9.0} {:>10.0} {:>8} {:>9}",
            scheme.label(),
            sci(leak_plain),
            sci(leak_balanced),
            skew_plain,
            skew_bal,
            gates_plain,
            gates_bal
        );
        csv.fields([
            scheme.label().to_string(),
            format!("{leak_plain:.6e}"),
            format!("{leak_balanced:.6e}"),
            format!("{skew_plain:.1}"),
            format!("{skew_bal:.1}"),
            gates_plain.to_string(),
            gates_bal.to_string(),
        ]);
        eprintln!("balanced {scheme}");
    }
    println!(
        "\nleakage removed by balancing is glitch-borne; the remainder is value/amplitude leakage."
    );
    csv.finish();
}
