//! Fig. 3: convergence of the ISW leakage coefficients with the number of
//! traces — the estimate stabilizes by 1024 traces.

use acquisition::LeakageStudy;
use experiments::{protocol_from_args, CsvSink};
use leakage_core::convergence::{coefficient_convergence, doubling_counts};
use sbox_circuits::Scheme;

fn main() {
    // Use the full 1024-trace budget regardless of CLI override: the sweep
    // slices prefixes of it.
    let mut config = protocol_from_args();
    config.traces_per_class = config.traces_per_class.max(64);
    let study = LeakageStudy::new(config);
    let outcome = study.run(Scheme::Isw);

    // Reference sample: the most leaking instant.
    let series = outcome.spectrum.leakage_power_series();
    let t_ref = series
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(t, _)| t)
        .unwrap_or(0);

    let counts = doubling_counts(16, outcome.traces.len());
    let sweep = coefficient_convergence(&outcome.traces, &counts, t_ref);

    let mut header = vec!["traces".to_string(), "rms_error".to_string()];
    header.extend((0..16).map(|u| format!("a{u}")));
    let mut csv = CsvSink::new("fig3", header);
    println!("Fig. 3 — ISW coefficient convergence at sample T={t_ref}");
    println!("{:>7} {:>12}  a_u (u = 1..15)", "traces", "rms vs 1024");
    for point in &sweep {
        print!("{:>7} {:>12.5}  ", point.traces, point.rms_error_vs_final);
        for a in &point.coefficients[1..6] {
            print!("{a:>8.4}");
        }
        println!("  …");
        let mut row = vec![
            point.traces.to_string(),
            format!("{:.6}", point.rms_error_vs_final),
        ];
        row.extend(point.coefficients.iter().map(|a| format!("{a:.6}")));
        csv.fields(row);
    }
    let first = sweep.first().expect("non-empty").rms_error_vs_final;
    let half = sweep[sweep.len() / 2].rms_error_vs_final;
    println!(
        "rms error at {} traces: {first:.4}; at {} traces: {half:.4} — rapid convergence",
        sweep[0].traces,
        sweep[sweep.len() / 2].traces
    );
    csv.finish();
}
