//! Fig. 4: ISW leakage coefficients per sample — the multi-bit
//! (bit-1·bit-2 conjunction, `u = 0110`) component dominates.

use acquisition::LeakageStudy;
use experiments::{protocol_from_args, CsvSink};
use sbox_circuits::Scheme;

fn main() {
    let study = LeakageStudy::new(protocol_from_args());
    let outcome = study.run(Scheme::Isw);
    let spectrum = &outcome.spectrum;

    let mut header = vec!["sample".to_string()];
    header.extend((1..16).map(|u| format!("a{u}")));
    let mut csv = CsvSink::new("fig4", header);
    println!("Fig. 4 — ISW leakage coefficients a_u(T) (u ≠ 0)");
    println!("showing the 6 strongest sources; all 15 in results/fig4.csv");
    let dominant = spectrum.dominant_sources();
    print!("{:>6}", "T");
    for (u, _) in dominant.iter().take(6) {
        print!(" u={u:>2}({u:04b})");
    }
    println!();
    for t in 0..spectrum.samples() {
        if t % 2 == 0 && t <= 30 {
            print!("{t:>6}");
            for (u, _) in dominant.iter().take(6) {
                print!(" {:>10.4}", spectrum.coefficient(*u, t));
            }
            println!();
        }
        let mut row = vec![t.to_string()];
        row.extend((1..16).map(|u| format!("{:.6}", spectrum.coefficient(u, t))));
        csv.fields(row);
    }
    println!("\nsource ranking by window-summed energy:");
    for (u, e) in dominant.iter().take(8) {
        let kind = if (*u as u32).count_ones() == 1 {
            "single-bit"
        } else {
            "multi-bit (glitch-type)"
        };
        println!("  u={u:2} ({u:04b})  {e:10.4e}  {kind}");
    }
    let (top, _) = dominant[0];
    if (top as u32).count_ones() > 1 {
        println!("→ the dominant source is a bit interaction, as in the paper's Fig. 4");
    }
    csv.finish();
}
