//! Theorem 1: a random Boolean splitting of any order leaks the LSB of the
//! Hamming weight — exhaustive check and Monte-Carlo correlations.

use leakage_core::theorem1::{lsb_parity_correlation, squared_hw_correlation, verify_exhaustively};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!("Theorem 1 — LSB(w_H(x₀…x_d)) = x for every random splitting");
    let mut rng = SmallRng::seed_from_u64(1);
    println!(
        "{:>6} {:>12} {:>16} {:>18}",
        "order", "sharings", "corr(LSB(HW),x)", "corr((HW-μ)²,x)"
    );
    for d in 1..=8usize {
        let checked = verify_exhaustively(d);
        let parity = lsb_parity_correlation(d, 20_000, &mut rng);
        let squared = squared_hw_correlation(d, 20_000, &mut rng);
        println!("{d:>6} {checked:>12} {parity:>16.4} {squared:>18.4}");
    }
    println!("\nthe parity of an additive (Hamming-weight-like) leakage discloses the");
    println!("unmasked bit at ANY masking order; a non-parity statistic (the squared");
    println!("centred weight) does not — masking moves the leak, it cannot erase it.");
}
