//! Fig. 2: average power of ISW classified by the 16 unmasked final
//! values, 100 samples over 2 ns.

use experiments::{campaign_from_args, finish_campaign, CsvSink};
use sbox_circuits::Scheme;

fn main() {
    let mut campaign = campaign_from_args();
    let outcome = campaign.acquire(Scheme::Isw);
    let means = outcome.traces.class_means();

    let mut header = vec!["sample".to_string()];
    header.extend((0..16).map(|c| format!("class{c}")));
    let mut csv = CsvSink::new("fig2", header);
    println!(
        "Fig. 2 — ISW average power per class (mW), {} traces/class",
        campaign.config().protocol.traces_per_class
    );
    println!("showing every 5th of 100 samples; full resolution in results/fig2.csv");
    print!("{:>6}", "T");
    for c in 0..16 {
        print!(" {c:>7}");
    }
    println!();
    for t in 0..100 {
        if t % 5 == 0 {
            print!("{t:>6}");
            for mean in &means {
                print!(" {:>7.3}", mean[t]);
            }
            println!();
        }
        let mut row = vec![t.to_string()];
        row.extend(means.iter().map(|m| format!("{:.6}", m[t])));
        csv.fields(row);
    }
    // The headline property of the figure: the 16 class curves separate.
    let energies: Vec<f64> = means.iter().map(|m| m.iter().sum::<f64>() * 20.0).collect();
    let min = energies.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = energies.iter().cloned().fold(0.0, f64::max);
    println!("class mean energies span {min:.1} – {max:.1} fJ (classes are distinguishable)");
    csv.finish();
    finish_campaign(&campaign);
}
