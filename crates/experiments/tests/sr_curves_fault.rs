//! Regression: `sr_curves` under the CI fault matrix.
//!
//! The fault-injection matrix runs every reproduction binary with a
//! tiny trace budget (`run_all -- 2`) and transient capture panics
//! armed (`SCA_FAULTS=panic%0.05`, `SCA_STRICT=1`). A budget below the
//! smallest success-rate snapshot (16) used to leave the snapshot list
//! empty and trip the `no snapshot counts` assert in the attack
//! engine; the binary must instead degrade to a single snapshot at the
//! full budget and exit cleanly.

use std::process::Command;

fn run_sr_curves(max_traces: &str) -> std::process::Output {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "sr-curves-fault-{}-{max_traces}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp cwd");
    let out = Command::new(env!("CARGO_BIN_EXE_sr_curves"))
        .arg(max_traces)
        .current_dir(&dir)
        .env("SCA_FAULTS", "seed=7,panic%0.05")
        .env("SCA_STRICT", "1")
        .output()
        .expect("spawn sr_curves");
    let _ = std::fs::remove_dir_all(&dir);
    out
}

#[test]
fn survives_tiny_budget_under_injected_panics() {
    let out = run_sr_curves("2");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "sr_curves 2 failed under fault injection\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("no snapshot counts"),
        "empty-counts assert resurfaced:\n{stderr}"
    );
    // The degraded run still produces one snapshot column, at the
    // full 2-trace budget, for every scheme.
    assert!(
        stdout.contains(" 2") && stdout.contains("TI"),
        "expected a single sr column at 2 traces:\n{stdout}"
    );
}

#[test]
fn zero_budget_clamps_to_one_trace() {
    let out = run_sr_curves("0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "sr_curves 0 failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
}
