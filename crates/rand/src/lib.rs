//! A workspace-local, dependency-free re-implementation of the subset of
//! the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the external
//! `rand` crate cannot be fetched; this crate is wired in through a path
//! dependency under the same package name and keeps every call site
//! unchanged. It provides:
//!
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool` over a `next_u64` core;
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64` (SplitMix64 expansion,
//!   matching upstream's seeding recipe);
//! * [`rngs::SmallRng`] — xoshiro256++, the same algorithm upstream's
//!   64-bit `SmallRng` wraps;
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! Streams are deterministic in the seed, which is all the workspace
//! relies on (acquisition protocols and process-variation sampling are
//! seeded explicitly everywhere).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an `Rng`'s raw output
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u16 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() as i32) < 0
    }
}

impl Standard for f64 {
    /// 53 random mantissa bits scaled into `[0, 1)`, as upstream does.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every output is in range.
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Unbiased uniform draw from `[0, span)` by rejection sampling on the
/// top bits (`span > 0`).
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of span that fits in u64; values at or above it
    // would bias the modulus and are re-drawn.
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// A source of randomness (the merged `RngCore` + `Rng` surface of
/// upstream `rand` that this workspace uses).
pub trait Rng {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` uniformly from its `Standard`
    /// distribution (`[0, 1)` for floats, the full domain for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample(self) < p
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it through SplitMix64 (the recipe
    /// upstream `rand` 0.8 uses, so small seeds still decorrelate).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step (Vigna's reference constants).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++ (the algorithm
    /// behind upstream `SmallRng` on 64-bit targets).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl Rng for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 16];
        for _ in 0..1_000 {
            let v: u8 = rng.gen_range(0..16);
            assert!(v < 16);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 16 values should appear");
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(3..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn uniform_rejection_is_unbiased_enough() {
        // span = 3 does not divide 2^64; chi-square-ish sanity check.
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[rng.gen_range(0..3usize)] += 1;
        }
        for &c in &counts {
            let expect = n as f64 / 3.0;
            assert!((c as f64 - expect).abs() < 0.05 * expect, "{counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "64 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn bool_and_gen_bool_are_balanced() {
        let mut rng = SmallRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
        let biased = (0..10_000).filter(|_| rng.gen_bool(0.1)).count();
        assert!((700..1_300).contains(&biased), "biased {biased}");
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng>(mut rng: R) -> u64 {
            rng.next_u64()
        }
        let mut rng = SmallRng::seed_from_u64(5);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
