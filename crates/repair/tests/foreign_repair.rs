//! End-to-end repair of a frontend-imported foreign netlist.
//!
//! `foreign_masked.yosys.json` is a hand-written 2-share XOR gadget with
//! two injected defects: gate `g_t1` recombines both shares of secret
//! bit 0 (`t1 = a1 ⊕ a0`, a class-constant), and the output boundary
//! carries no fresh randomness. The repair searcher must fix both — by
//! re-associating the XOR chain and refreshing the output shares —
//! without changing the computed function.

use sbox_circuits::InputRole;
use sca_repair::search::{functionally_equivalent, repair, SearchConfig};
use sca_verify::{RuleId, Severity, Subject};

fn foreign_subject() -> Subject {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/frontend/foreign_masked.yosys.json"
    );
    let text = std::fs::read_to_string(path).expect("fixture readable");
    let design = sca_frontend::import_auto(&text).expect("fixture imports");
    Subject::with_roles(
        "foreign-masked",
        design.netlist,
        vec![
            InputRole::Share { bit: 0, share: 0 },
            InputRole::Share { bit: 0, share: 1 },
            InputRole::Share { bit: 1, share: 0 },
            InputRole::Share { bit: 1, share: 1 },
        ],
        vec![vec![0, 1]],
    )
    .expect("contract well-formed")
}

#[test]
fn foreign_import_diagnoses_both_injected_defects() {
    let subject = foreign_subject();
    let analysis = sca_verify::analyze_subject(&subject);
    assert!(
        analysis.count(RuleId::ValueBias) >= 1,
        "t1 is class-constant"
    );
    assert!(
        analysis.count(RuleId::GlitchLocal) >= 1,
        "t1's fan-in joint leaks"
    );
    assert_eq!(analysis.count(RuleId::GxBoundary), 1, "no boundary refresh");
    assert_eq!(analysis.error_count(), 4);
}

#[test]
fn foreign_netlist_repairs_via_rotation_and_refresh() {
    let subject = foreign_subject();
    let outcome = repair(&subject, &SearchConfig::default());
    assert!(outcome.repaired, "skipped: {:?}", outcome.skipped);
    assert_eq!(outcome.final_analysis.error_count(), 0);
    assert!(outcome.final_analysis.verdicts.value_first_order);
    assert!(outcome.final_analysis.verdicts.glitch_first_order());
    assert_eq!(outcome.steps.len(), 2, "steps: {:?}", outcome.steps);
    let names: Vec<&str> = outcome.steps.iter().map(|s| s.patch.as_str()).collect();
    assert!(
        names.iter().any(|n| n.starts_with("xor-rotate")),
        "one step must re-associate the recombining chain: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("refresh-")),
        "one step must refresh the boundary: {names:?}"
    );
    // Function preserved end to end.
    assert!(functionally_equivalent(&subject, &outcome.subject, 256));
    // The known honest residue: the rotated chain still recombines both
    // shares structurally (SD-RECOMB warning), which the Error-free
    // verdict does not hide.
    assert!(outcome
        .final_analysis
        .diagnostics
        .iter()
        .all(|d| d.severity != Severity::Error),);
}
