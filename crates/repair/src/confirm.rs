//! Dynamic confirmation of a repair: did the NICV actually drop?
//!
//! Static soundness arguments have models; models have edges. After the
//! searcher accepts a patch sequence, this module replays base and
//! repaired subjects through the bit-sliced gate-level power simulator
//! under identical stimulus recipes and compares their class-conditional
//! NICV (the paper's dynamic leakage metric). A real repair shows a
//! non-increasing NICV peak; a model-gaming "repair" shows up here as a
//! delta near zero or negative.
//!
//! Everything is seeded and noise-free, so the resulting floats are
//! byte-stable and safe to pin in golden reports.

use gatesim::{SamplingConfig, SimConfig, Simulator, LANES};
use leakage_core::{metrics, ClassifiedTraces};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sca_verify::Subject;

/// Cap on distinguisher classes: NICV wants a handful of well-populated
/// classes, not `2^secret_bits` singletons.
pub const MAX_CLASSES: usize = 16;

/// NICV comparison between the base and repaired subjects.
#[derive(Debug, Clone, Copy)]
pub struct Confirmation {
    /// Traces captured per subject.
    pub traces: usize,
    /// Samples per trace.
    pub samples: usize,
    /// Peak NICV of the base subject.
    pub base_nicv_max: f64,
    /// Peak NICV of the repaired subject.
    pub repaired_nicv_max: f64,
    /// `base − repaired`: positive when the repair reduced the dynamic
    /// class leakage at its worst sample.
    pub delta: f64,
}

/// Capture `traces_per_class` transition traces per class for both
/// subjects and compare peak NICV.
///
/// # Errors
///
/// Returns a description when either netlist is outside the bit-sliced
/// backend's support window.
pub fn confirm(
    base: &Subject,
    repaired: &Subject,
    traces_per_class: usize,
    seed: u64,
) -> Result<Confirmation, String> {
    let sampling = SamplingConfig::default();
    let (base_max, traces) = peak_nicv(base, traces_per_class, seed, &sampling)?;
    let (repaired_max, _) = peak_nicv(repaired, traces_per_class, seed, &sampling)?;
    Ok(Confirmation {
        traces,
        samples: sampling.samples,
        base_nicv_max: base_max,
        repaired_nicv_max: repaired_max,
        delta: base_max - repaired_max,
    })
}

fn peak_nicv(
    subject: &Subject,
    traces_per_class: usize,
    seed: u64,
    sampling: &SamplingConfig,
) -> Result<(f64, usize), String> {
    let classes = subject.num_classes().min(MAX_CLASSES);
    let mask_bits = subject.mask_bits();
    let mask_mask = if mask_bits == 0 {
        0
    } else if mask_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << mask_bits) - 1
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    // Transition stimuli: a random previous (class, mask) state settles,
    // then the labelled class is applied under a freshly drawn mask — the
    // class-conditional variance NICV measures is exactly the distance
    // leakage the masking should have randomized away.
    let all_classes = subject.num_classes() as u64;
    let mut stimuli: Vec<(usize, Vec<bool>, Vec<bool>)> = Vec::new();
    for i in 0..classes * traces_per_class {
        let class = i % classes;
        let prev_class: u64 = rng.gen::<u64>() % all_classes;
        let before: u64 = rng.gen::<u64>() & mask_mask;
        let after: u64 = rng.gen::<u64>() & mask_mask;
        stimuli.push((
            class,
            subject.encode(prev_class, before),
            subject.encode(class as u64, after),
        ));
    }

    let config = SimConfig::default();
    let sim = Simulator::new(subject.netlist(), &config);
    let mut session = sim
        .bitsliced_session()
        .map_err(|_| "netlist outside the bit-sliced backend's support window".to_string())?;
    let mut set = ClassifiedTraces::new(classes, sampling.samples);
    for (chunk_idx, chunk) in stimuli.chunks(LANES).enumerate() {
        let lanes: Vec<gatesim::LaneStimulus<'_>> = chunk
            .iter()
            .enumerate()
            .map(|(j, (_, before, after))| gatesim::LaneStimulus {
                initial: before,
                final_inputs: after,
                noise_seed: seed ^ ((chunk_idx * LANES + j) as u64),
            })
            .collect();
        let (traces, _) = session.capture_batch(&lanes, sampling);
        for ((class, _, _), trace) in chunk.iter().zip(traces) {
            set.push(*class, trace.clone());
        }
    }
    let peak = metrics::nicv(&set).into_iter().fold(0.0f64, f64::max);
    Ok((peak, set.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_circuits::{SboxCircuit, Scheme};

    #[test]
    fn confirmation_is_deterministic_and_orders_lut_above_isw() {
        let lut = Subject::of_circuit(&SboxCircuit::build(Scheme::Lut));
        let isw = Subject::of_circuit(&SboxCircuit::build(Scheme::Isw));
        let a = confirm(&lut, &isw, 8, 7).expect("both capture");
        let b = confirm(&lut, &isw, 8, 7).expect("both capture");
        assert_eq!(a.base_nicv_max.to_bits(), b.base_nicv_max.to_bits());
        assert_eq!(a.delta.to_bits(), b.delta.to_bits());
        // Unprotected LUT leaks its class hard; masked ISW does not.
        assert!(
            a.base_nicv_max > a.repaired_nicv_max,
            "LUT NICV {} should exceed ISW NICV {}",
            a.base_nicv_max,
            a.repaired_nicv_max
        );
    }
}
