//! Repair-episode reports: a human narrative and a byte-stable JSON
//! document.
//!
//! Like `sca_verify::report`, the JSON is hand-rolled (the workspace is
//! offline, no serde) with fixed key order and Rust's shortest-round-trip
//! float `Display`, so identical episodes render identical bytes — the
//! property the golden suite under `tests/golden/repair/` pins.

use std::fmt::Write as _;

use sca_verify::{Analysis, RuleId, Severity};

use crate::confirm::Confirmation;
use crate::search::RepairOutcome;

/// Version tag of the JSON schema, bumped on layout changes so stale
/// pinned expectations fail loudly rather than diffing confusingly.
pub const SCHEMA: &str = "sca-repair/1";

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn severity_counts(a: &Analysis) -> (usize, usize, usize) {
    let of = |s: Severity| a.diagnostics.iter().filter(|d| d.severity == s).count();
    (
        of(Severity::Error),
        of(Severity::Warning),
        of(Severity::Advice),
    )
}

fn json_analysis_summary(out: &mut String, key: &str, a: &Analysis, indent: &str) {
    let (errors, warnings, advice) = severity_counts(a);
    let _ = writeln!(out, "{indent}\"{key}\": {{");
    let _ = writeln!(out, "{indent}  \"errors\": {errors},");
    let _ = writeln!(out, "{indent}  \"warnings\": {warnings},");
    let _ = writeln!(out, "{indent}  \"advice\": {advice},");
    let _ = writeln!(out, "{indent}  \"depth\": \"{}\",", a.depth.label());
    let _ = writeln!(out, "{indent}  \"error_rules\": [");
    let error_rules: Vec<RuleId> = RuleId::ALL
        .into_iter()
        .filter(|r| r.severity() == Severity::Error && a.count(*r) > 0)
        .collect();
    for (i, rule) in error_rules.iter().enumerate() {
        let comma = if i + 1 < error_rules.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "{indent}    {{\"rule\": \"{}\", \"count\": {}, \"max_measure\": {}}}{comma}",
            rule.code(),
            a.count(*rule),
            a.max_measure(*rule)
        );
    }
    let _ = writeln!(out, "{indent}  ]");
    let _ = writeln!(out, "{indent}}},");
}

/// Render the stable JSON document for one repair episode, optionally
/// with its dynamic confirmation.
pub fn json(outcome: &RepairOutcome, confirmation: Option<&Confirmation>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"subject\": \"{}\",", esc(&outcome.label));
    let _ = writeln!(
        out,
        "  \"netlist\": \"{}\",",
        esc(&outcome.initial.netlist_name)
    );
    let _ = writeln!(out, "  \"repaired\": {},", outcome.repaired);
    json_analysis_summary(&mut out, "initial", &outcome.initial, "  ");
    let _ = writeln!(out, "  \"patch_trace\": [");
    for (i, step) in outcome.steps.iter().enumerate() {
        let comma = if i + 1 < outcome.steps.len() { "," } else { "" };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"step\": {},", i + 1);
        let _ = writeln!(out, "      \"patch\": \"{}\",", esc(&step.patch));
        let _ = writeln!(
            out,
            "      \"description\": \"{}\",",
            esc(&step.description)
        );
        let _ = writeln!(out, "      \"cost_fj\": {},", step.cost_fj);
        let _ = writeln!(out, "      \"added_gates\": {},", step.added_gates);
        let _ = writeln!(out, "      \"added_inputs\": {},", step.added_inputs);
        let _ = writeln!(out, "      \"errors_before\": {},", step.errors_before);
        let _ = writeln!(out, "      \"errors_after\": {}", step.errors_after);
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ],");
    json_analysis_summary(&mut out, "final", &outcome.final_analysis, "  ");
    let _ = writeln!(out, "  \"total_cost_fj\": {},", outcome.total_cost_fj);
    let _ = writeln!(out, "  \"candidates_tried\": {},", outcome.candidates_tried);
    let _ = writeln!(out, "  \"skipped\": [");
    for (i, s) in outcome.skipped.iter().enumerate() {
        let comma = if i + 1 < outcome.skipped.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(out, "    \"{}\"{comma}", esc(s));
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"effort\": {{");
    let _ = writeln!(out, "    \"reanalyses\": {},", outcome.effort.reanalyses);
    let _ = writeln!(out, "    \"dirty_gates\": {},", outcome.effort.dirty_gates);
    let _ = writeln!(out, "    \"total_gates\": {}", outcome.effort.total_gates);
    let _ = writeln!(out, "  }},");
    match confirmation {
        Some(c) => {
            let _ = writeln!(out, "  \"confirmation\": {{");
            let _ = writeln!(out, "    \"traces\": {},", c.traces);
            let _ = writeln!(out, "    \"samples\": {},", c.samples);
            let _ = writeln!(out, "    \"base_nicv_max\": {},", c.base_nicv_max);
            let _ = writeln!(out, "    \"repaired_nicv_max\": {},", c.repaired_nicv_max);
            let _ = writeln!(out, "    \"delta\": {}", c.delta);
            let _ = writeln!(out, "  }}");
        }
        None => {
            let _ = writeln!(out, "  \"confirmation\": null");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render the human-readable episode narrative.
pub fn human(outcome: &RepairOutcome, confirmation: Option<&Confirmation>) -> String {
    let mut out = String::new();
    let (errors, warnings, _) = severity_counts(&outcome.initial);
    let _ = writeln!(
        out,
        "{} ({}): {} error(s), {} warning(s) before repair",
        outcome.label, outcome.initial.netlist_name, errors, warnings
    );
    for (i, step) in outcome.steps.iter().enumerate() {
        let _ = writeln!(
            out,
            "  step {}: {} [{:.1} fJ, +{} gates, +{} fresh] errors {} -> {}",
            i + 1,
            step.patch,
            step.cost_fj,
            step.added_gates,
            step.added_inputs,
            step.errors_before,
            step.errors_after
        );
        let _ = writeln!(out, "          {}", step.description);
    }
    let (errors, warnings, _) = severity_counts(&outcome.final_analysis);
    let verdict = if outcome.repaired {
        "REPAIRED"
    } else {
        "NOT REPAIRED"
    };
    let _ = writeln!(
        out,
        "  {verdict}: {} error(s), {} warning(s) remain; total cost {:.1} fJ over {} candidate(s)",
        errors, warnings, outcome.total_cost_fj, outcome.candidates_tried
    );
    if outcome.effort.reanalyses > 0 {
        let _ = writeln!(
            out,
            "  incremental effort: {} re-analyses touched {}/{} gate statistics",
            outcome.effort.reanalyses, outcome.effort.dirty_gates, outcome.effort.total_gates
        );
    }
    if let Some(c) = confirmation {
        let _ = writeln!(
            out,
            "  dynamic confirmation: peak NICV {:.6} -> {:.6} (delta {:+.6}) over {} traces",
            c.base_nicv_max, c.repaired_nicv_max, c.delta, c.traces
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{repair, SearchConfig};
    use sbox_circuits::{SboxCircuit, Scheme};
    use sca_verify::Subject;

    #[test]
    fn json_is_byte_stable_and_carries_the_schema() {
        let subject = Subject::of_circuit(&SboxCircuit::build(Scheme::Ti));
        let a = repair(&subject, &SearchConfig::default());
        let b = repair(&subject, &SearchConfig::default());
        assert_eq!(json(&a, None), json(&b, None));
        assert!(json(&a, None).starts_with("{\n  \"schema\": \"sca-repair/1\""));
        let h = human(&a, None);
        assert!(h.contains("REPAIRED"), "{h}");
    }
}
