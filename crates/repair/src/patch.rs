//! Candidate countermeasure patches, synthesized at witness sites.
//!
//! Every generator takes a diagnosed [`Subject`] and produces candidates
//! whose gate and net ids are stable with respect to the base: new
//! structure (fresh inputs, refresh XORs) is *appended*, pin rewires and
//! barrier marks edit in place, and nothing is ever interleaved. Id
//! stability is what makes two things work downstream:
//!
//! * the incremental re-analyzer aligns the candidate against the base and
//!   re-runs only the edit's fan-out cone;
//! * the beam search compares Error sets across candidates by
//!   `(rule, gate, net)` keys, which would be meaningless under id drift.
//!
//! The families:
//!
//! | name            | anchored at              | edit                                         |
//! |-----------------|--------------------------|----------------------------------------------|
//! | `refresh-shared`| all GX-BOUNDARY groups   | 1 fresh bit XORed into two shares per group  |
//! | `refresh-group` | one GX-BOUNDARY group    | 1 fresh bit XORed into two shares of it      |
//! | `refresh-ring`  | one GX-BOUNDARY group    | k−1 fresh bits chained across all k shares   |
//! | `affine-remap`  | one GX-BOUNDARY group    | an *existing* fresh bit re-used as refresh   |
//! | `xor-rotate`    | VALUE-BIAS/GLITCH-LOCAL  | re-associate an XOR chain through the anchor |
//! | `barrier`       | GLITCH-LOCAL gate        | mark the gate as a synchronization barrier   |

use std::collections::BTreeSet;

use sbox_circuits::InputRole;
use sbox_netlist::{transform, CellType, NetId, Netlist, NetlistBuilder};
use sca_verify::score::energy_weight;
use sca_verify::{Analysis, RuleId, Subject};

/// Energy-equivalent cost of one fresh random bit (the RNG, its routing,
/// and the refresh register pressure), in femtojoules. Tuned so a fresh
/// bit costs about as much as ten XOR2 evaluations: randomness is the
/// scarce resource in masked designs.
pub const FRESH_COST_FJ: f64 = 25.0;

/// Energy-equivalent cost of turning a gate into a synchronization
/// barrier (a registered/precharged cell in place of a combinational
/// one), in femtojoules.
pub const BARRIER_COST_FJ: f64 = 12.0;

/// Cap on witness anchors expanded per rule, keeping the candidate set
/// bounded on heavily-leaking subjects. Diagnostics arrive
/// strongest-first, so the cap keeps the worst sites.
const MAX_ANCHORS_PER_RULE: usize = 8;

/// One candidate patch: the edited subject plus its cost accounting.
#[derive(Debug, Clone)]
pub struct Patch {
    /// Short machine-stable identifier, e.g. `refresh-group(b2)`.
    pub name: String,
    /// Human-readable description of the edit.
    pub description: String,
    /// Gates added by the patch.
    pub added_gates: usize,
    /// Fresh-randomness inputs added by the patch.
    pub added_inputs: usize,
    /// Energy-model cost: added-gate switching energy plus
    /// [`FRESH_COST_FJ`] per added input (or [`BARRIER_COST_FJ`] per
    /// barrier mark).
    pub cost_fj: f64,
    /// The patched subject, ready for re-analysis.
    pub subject: Subject,
}

/// The candidate set one generation pass produced, with notes about
/// anchors that had to be skipped (non-XOR shapes, would-be cycles, …).
#[derive(Debug, Clone, Default)]
pub struct GeneratedPatches {
    /// Viable candidates.
    pub patches: Vec<Patch>,
    /// Why particular anchors produced no candidate.
    pub notes: Vec<String>,
}

/// Synthesize every candidate patch the diagnostics of `analysis` anchor
/// on `subject`.
pub fn generate(subject: &Subject, analysis: &Analysis) -> GeneratedPatches {
    let mut out = GeneratedPatches::default();
    generate_refreshes(subject, analysis, &mut out);
    generate_xor_rotations(subject, analysis, &mut out);
    generate_barriers(subject, analysis, &mut out);
    out
}

/// Output groups implicated by a GX-BOUNDARY finding, by matching each
/// finding's anchor net against the group's first output port.
fn flagged_groups(subject: &Subject, analysis: &Analysis) -> Vec<usize> {
    let gx = analysis.of_rule(RuleId::GxBoundary);
    subject
        .output_groups()
        .iter()
        .enumerate()
        .filter(|(_, ports)| match ports.first() {
            Some(&p) => {
                let anchor = subject.netlist().outputs()[p].1.index();
                gx.iter().any(|d| d.location.net == anchor)
            }
            None => false,
        })
        .map(|(g, _)| g)
        .collect()
}

/// Where a refresh XOR takes its random operand from.
#[derive(Debug, Clone, Copy)]
enum RefreshSrc {
    /// The `i`-th fresh input this patch appends.
    New(usize),
    /// An existing primary-input net (affine remap reuse).
    Existing(usize),
}

fn generate_refreshes(subject: &Subject, analysis: &Analysis, out: &mut GeneratedPatches) {
    let flagged: Vec<usize> = flagged_groups(subject, analysis)
        .into_iter()
        .filter(|&g| {
            let ok = subject.output_groups()[g].len() >= 2;
            if !ok {
                out.notes.push(format!(
                    "group {g}: single output share, boundary refresh impossible"
                ));
            }
            ok
        })
        .collect();
    if flagged.is_empty() {
        return;
    }

    // refresh-shared: one fresh bit amortized across every flagged group.
    // Only distinct from refresh-group when more than one group is flagged.
    if flagged.len() >= 2 {
        let mut assigns = Vec::new();
        for &g in &flagged {
            let ports = &subject.output_groups()[g];
            assigns.push((ports[0], vec![RefreshSrc::New(0)]));
            assigns.push((ports[1], vec![RefreshSrc::New(0)]));
        }
        let bits: Vec<String> = flagged.iter().map(|g| format!("b{g}")).collect();
        push_refresh(
            subject,
            "refresh-shared".to_string(),
            format!(
                "XOR one shared fresh mask into two shares of output bits {}",
                bits.join(",")
            ),
            1,
            &assigns,
            out,
        );
    }

    for &g in &flagged {
        let ports = &subject.output_groups()[g];
        // refresh-group: a private fresh bit into the first two shares.
        push_refresh(
            subject,
            format!("refresh-group(b{g})"),
            format!("XOR a fresh mask into shares 0 and 1 of output bit {g}"),
            1,
            &[
                (ports[0], vec![RefreshSrc::New(0)]),
                (ports[1], vec![RefreshSrc::New(0)]),
            ],
            out,
        );
        // refresh-ring: a chain refresh across all k shares (k ≥ 3).
        let k = ports.len();
        if k >= 3 {
            let mut assigns = vec![(ports[0], vec![RefreshSrc::New(0)])];
            for (i, &port) in ports.iter().enumerate().take(k - 1).skip(1) {
                assigns.push((port, vec![RefreshSrc::New(i - 1), RefreshSrc::New(i)]));
            }
            assigns.push((ports[k - 1], vec![RefreshSrc::New(k - 2)]));
            push_refresh(
                subject,
                format!("refresh-ring(b{g})"),
                format!(
                    "chain {} fresh masks across all {k} shares of output bit {g}",
                    k - 1
                ),
                k - 1,
                &assigns,
                out,
            );
        }
        // affine-remap: re-use the last declared fresh input as the
        // refresh operand — zero new randomness. Sound here because a
        // flagged group's cone union holds *no* fresh bit, so the reused
        // one is independent of everything the group computes.
        let existing_fresh = subject
            .roles()
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, InputRole::Fresh))
            .map(|(i, _)| i)
            .next_back();
        if let Some(pos) = existing_fresh {
            let net = subject.netlist().inputs()[pos].index();
            push_refresh(
                subject,
                format!("affine-remap(b{g})"),
                format!(
                    "remap shares 0 and 1 of output bit {g} by the existing fresh input '{}'",
                    input_name(subject.netlist(), pos)
                ),
                0,
                &[
                    (ports[0], vec![RefreshSrc::Existing(net)]),
                    (ports[1], vec![RefreshSrc::Existing(net)]),
                ],
                out,
            );
        }
    }
}

fn input_name(netlist: &Netlist, pos: usize) -> String {
    let net = netlist.inputs()[pos];
    match netlist.net(net).name() {
        Some(n) => n.to_string(),
        None => format!("in{pos}"),
    }
}

/// Build a refresh patch: clone the base netlist id-stably, append
/// `fresh_count` fresh inputs, and XOR the listed sources into each listed
/// output port. Pushes the patch, or a note on failure.
fn push_refresh(
    subject: &Subject,
    name: String,
    description: String,
    fresh_count: usize,
    assigns: &[(usize, Vec<RefreshSrc>)],
    out: &mut GeneratedPatches,
) {
    match build_refresh(subject, &name, description, fresh_count, assigns) {
        Ok(p) => out.patches.push(p),
        Err(e) => out.notes.push(format!("{name}: {e}")),
    }
}

fn build_refresh(
    subject: &Subject,
    name: &str,
    description: String,
    fresh_count: usize,
    assigns: &[(usize, Vec<RefreshSrc>)],
) -> Result<Patch, String> {
    let base = subject.netlist();
    let (mut b, map) = clone_netlist(base)?;
    let base_inputs = base.num_inputs();
    let fresh: Vec<NetId> = (0..fresh_count)
        .map(|i| b.input(format!("fix_r{}", base_inputs + i)))
        .collect();
    let base_gates = base.gates().len();
    // Per-port redirect of the emitted output net.
    let mut redirect: Vec<Option<NetId>> = vec![None; base.num_outputs()];
    for (port, srcs) in assigns {
        let old = base
            .outputs()
            .get(*port)
            .ok_or_else(|| format!("output port {port} out of range"))?
            .1;
        let mut cur = map[old.index()].ok_or("output net unmapped")?;
        for src in srcs {
            let operand = match src {
                RefreshSrc::New(i) => *fresh.get(*i).ok_or("fresh operand out of range")?,
                RefreshSrc::Existing(n) => map
                    .get(*n)
                    .copied()
                    .flatten()
                    .ok_or("existing operand unmapped")?,
            };
            cur = b.xor(cur, operand);
        }
        redirect[*port] = Some(cur);
    }
    for (port, (pname, net)) in base.outputs().iter().enumerate() {
        let dst = match redirect[port] {
            Some(n) => n,
            None => map[net.index()].ok_or("output net unmapped")?,
        };
        b.output(pname.clone(), dst);
    }
    let patched = b.finish().map_err(|e| e.to_string())?;
    let added_gates = patched.gates().len() - base_gates;
    let cost_fj = (base_gates..patched.gates().len())
        .map(|g| energy_weight(&patched, g))
        .sum::<f64>()
        + FRESH_COST_FJ * fresh_count as f64;
    let mut roles = subject.roles().to_vec();
    roles.extend(std::iter::repeat_n(InputRole::Fresh, fresh_count));
    let mut cand = Subject::with_roles(
        subject.label(),
        patched,
        roles,
        subject.output_groups().to_vec(),
    )?;
    copy_barriers(subject, &mut cand);
    Ok(Patch {
        name: name.to_string(),
        description,
        added_gates,
        added_inputs: fresh_count,
        cost_fj,
        subject: cand,
    })
}

/// Re-emit the base netlist with identical ids: inputs in port order,
/// gates in id order (creation order, topological for every netlist this
/// workspace builds or imports). Returns the builder mid-flight plus the
/// old-net-index → new-net-id map, so callers can append patch structure
/// before emitting outputs.
fn clone_netlist(base: &Netlist) -> Result<(NetlistBuilder, Vec<Option<NetId>>), String> {
    let mut b = NetlistBuilder::new(base.name());
    let mut map: Vec<Option<NetId>> = vec![None; base.nets().len()];
    for (i, &net) in base.inputs().iter().enumerate() {
        let name = match base.net(net).name() {
            Some(n) => n.to_string(),
            None => format!("in{i}"),
        };
        map[net.index()] = Some(b.input(name));
    }
    for (g, gate) in base.gates().iter().enumerate() {
        let pins: Result<Vec<NetId>, String> = gate
            .inputs()
            .iter()
            .map(|n| map[n.index()].ok_or_else(|| format!("gate {g}: pin drawn from a later net")))
            .collect();
        let out = b.gate(gate.cell(), &pins?);
        map[gate.output().index()] = Some(out);
    }
    Ok((b, map))
}

fn copy_barriers(base: &Subject, cand: &mut Subject) {
    for g in 0..base.netlist().gates().len() {
        if base.is_barrier(g) {
            cand.mark_barrier(g);
        }
    }
}

/// Witness gate anchors of a rule, strongest-first, capped.
fn anchors(analysis: &Analysis, rule: RuleId, out: &mut GeneratedPatches) -> Vec<usize> {
    let all: Vec<usize> = analysis
        .of_rule(rule)
        .iter()
        .filter_map(|d| d.location.gate)
        .collect();
    let mut seen = BTreeSet::new();
    let mut kept = Vec::new();
    for g in all {
        if seen.insert(g) {
            kept.push(g);
        }
    }
    if kept.len() > MAX_ANCHORS_PER_RULE {
        out.notes.push(format!(
            "{}: {} anchors, expanding strongest {MAX_ANCHORS_PER_RULE}",
            rule.code(),
            kept.len()
        ));
        kept.truncate(MAX_ANCHORS_PER_RULE);
    }
    kept
}

fn generate_xor_rotations(subject: &Subject, analysis: &Analysis, out: &mut GeneratedPatches) {
    let mut sites = anchors(analysis, RuleId::ValueBias, out);
    for g in anchors(analysis, RuleId::GlitchLocal, out) {
        if !sites.contains(&g) {
            sites.push(g);
        }
    }
    for g in sites {
        match xor_rotate_variants(subject, g) {
            Ok(patches) => out.patches.extend(patches),
            Err(e) => out.notes.push(format!("xor-rotate(g{g}): {e}")),
        }
    }
}

/// Re-associate the XOR chain `v = (x ⊕ y) ⊕ z` through the anchor gate
/// `u = x ⊕ y`: variant A computes `(x ⊕ z) ⊕ y`, variant B
/// `(y ⊕ z) ⊕ x`. The anchor's output must feed exactly one gate and no
/// primary output, so the chain value — and the netlist function — is
/// preserved while the intermediate distribution changes.
fn xor_rotate_variants(subject: &Subject, g: usize) -> Result<Vec<Patch>, String> {
    let netlist = subject.netlist();
    let gate = netlist
        .gates()
        .get(g)
        .ok_or_else(|| format!("gate {g} out of range"))?;
    if gate.cell() != CellType::Xor2 {
        return Err(format!("anchor is {}, not XOR2", gate.cell().mnemonic()));
    }
    let out_net = gate.output();
    if netlist.outputs().iter().any(|(_, n)| *n == out_net) {
        return Err("anchor drives a primary output".to_string());
    }
    let loads = netlist.net(out_net).loads();
    if loads.len() != 1 {
        return Err(format!("anchor output has {} loads, need 1", loads.len()));
    }
    let c_id = loads[0];
    let consumer = netlist.gate(c_id);
    if consumer.cell() != CellType::Xor2 {
        return Err(format!(
            "consumer is {}, not XOR2",
            consumer.cell().mnemonic()
        ));
    }
    let z_pin = consumer
        .inputs()
        .iter()
        .position(|&n| n != out_net)
        .ok_or("consumer reads the anchor on both pins")?;
    let z = consumer.inputs()[z_pin];
    let g_id = netlist
        .net(out_net)
        .driver()
        .ok_or("anchor output has no driver")?;
    let (x, y) = (gate.inputs()[0], gate.inputs()[1]);

    let mut patches = Vec::new();
    for (variant, anchor_pin, displaced) in [("A", 1usize, y), ("B", 0usize, x)] {
        if z == displaced {
            // Rotating z into the place it already occupies is the
            // identity; skip silently.
            continue;
        }
        let step1 = match transform::rewire_input(netlist, g_id, anchor_pin, z) {
            Ok(n) => n,
            // z is driven downstream of the anchor: rotating it in would
            // create a cycle. Not an error, just an infeasible variant.
            Err(_) => continue,
        };
        let rotated =
            transform::rewire_input(&step1, c_id, z_pin, displaced).map_err(|e| e.to_string())?;
        let mut cand = Subject::with_roles(
            subject.label(),
            rotated,
            subject.roles().to_vec(),
            subject.output_groups().to_vec(),
        )?;
        copy_barriers(subject, &mut cand);
        patches.push(Patch {
            name: format!("xor-rotate(g{g},{variant})"),
            description: format!(
                "re-associate the XOR chain through gate {g} (variant {variant}): rotate operand '{}' into the anchor",
                net_label(netlist, z)
            ),
            added_gates: 0,
            added_inputs: 0,
            cost_fj: 0.0,
            subject: cand,
        });
    }
    Ok(patches)
}

fn net_label(netlist: &Netlist, net: NetId) -> String {
    match netlist.net(net).name() {
        Some(n) => n.to_string(),
        None => format!("net{}", net.index()),
    }
}

fn generate_barriers(subject: &Subject, analysis: &Analysis, out: &mut GeneratedPatches) {
    for g in anchors(analysis, RuleId::GlitchLocal, out) {
        if subject.is_barrier(g) {
            out.notes
                .push(format!("barrier(g{g}): gate is already a barrier"));
            continue;
        }
        let mut cand = subject.clone();
        cand.mark_barrier(g);
        out.patches.push(Patch {
            name: format!("barrier(g{g})"),
            description: format!(
                "register gate {g}'s output (synchronization barrier): its race window no longer reaches a probe"
            ),
            added_gates: 0,
            added_inputs: 0,
            cost_fj: BARRIER_COST_FJ,
            subject: cand,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_circuits::{SboxCircuit, Scheme};
    use sca_verify::analyze_subject;

    #[test]
    fn ti_generates_boundary_refreshes_with_stable_ids() {
        let subject = Subject::of_circuit(&SboxCircuit::build(Scheme::Ti));
        let analysis = analyze_subject(&subject);
        let gen = generate(&subject, &analysis);
        assert!(gen.patches.iter().any(|p| p.name == "refresh-shared"));
        assert!(gen
            .patches
            .iter()
            .any(|p| p.name.starts_with("refresh-group")));
        for p in &gen.patches {
            let base = subject.netlist();
            let cand = p.subject.netlist();
            // Id stability: every base gate survives at its own index.
            for (g, bg) in base.gates().iter().enumerate() {
                assert_eq!(cand.gates()[g].cell(), bg.cell(), "{}", p.name);
            }
            assert_eq!(p.added_gates, cand.gates().len() - base.gates().len());
            assert!(p.cost_fj > 0.0, "{} should cost energy", p.name);
        }
    }

    #[test]
    fn refresh_preserves_the_recombined_function() {
        let circuit = SboxCircuit::build(Scheme::Ti);
        let subject = Subject::of_circuit(&circuit);
        let analysis = analyze_subject(&subject);
        let gen = generate(&subject, &analysis);
        let patch = gen
            .patches
            .iter()
            .find(|p| p.name == "refresh-shared")
            .expect("TI flags all four boundary groups");
        for t in 0..16u64 {
            let mask = (t * 0x9e37) & ((1 << subject.mask_bits()) - 1);
            let extra = t & 1;
            let base_out = subject.netlist().evaluate(&subject.encode(t, mask));
            let cand_mask = mask | extra << subject.mask_bits();
            let cand_out = patch
                .subject
                .netlist()
                .evaluate(&patch.subject.encode(t, cand_mask));
            for (g, ports) in subject.output_groups().iter().enumerate() {
                let xor = |vals: &[bool]| ports.iter().fold(false, |a, &p| a ^ vals[p]);
                assert_eq!(xor(&base_out), xor(&cand_out), "t={t} group {g}");
            }
        }
    }
}
