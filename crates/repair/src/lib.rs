//! Witness-guided countermeasure auto-repair.
//!
//! The static analyzer ([`sca_verify`]) tells a designer *where* a masked
//! netlist leaks — which gate recombines shares, which output boundary
//! composes unsoundly. This crate closes the loop: it reads those
//! diagnostics, synthesizes candidate countermeasure patches *anchored at
//! the witness sites*, and re-verifies each candidate until the Error set
//! is empty.
//!
//! The pipeline has three stages:
//!
//! 1. **Patch generation** ([`patch`]): six generator families — fresh-mask
//!    refreshes at flagged output boundaries (shared, per-group, and ring
//!    topologies), affine share remapping that reuses an existing refresh
//!    bit, XOR re-association that splits a recombining associativity
//!    chain, and synchronization-barrier insertion at glitching gates.
//!    Every patch keeps gate and net ids stable (new structure is appended,
//!    never interleaved), so diagnostics on a candidate map one-to-one onto
//!    the base.
//! 2. **Beam search** ([`search`]): candidates are scored by an energy
//!    cost (added-gate switching energy plus a per-fresh-bit randomness
//!    tax) and accepted only if their Error set is a *strict subset* of the
//!    parent's — repairs must monotonically shrink the problem, never trade
//!    one Error for another. Re-verification runs through
//!    [`sca_verify::Baseline::reanalyze`], the incremental cone-scoped
//!    engine, so a search over dozens of candidates costs a fraction of as
//!    many from-scratch analyses.
//! 3. **Dynamic confirmation** ([`confirm`]): the accepted repair is
//!    replayed through the bit-sliced gate-level power simulator and the
//!    class-conditional NICV of base and repaired netlists are compared —
//!    the static verdict is cross-checked against the paper's own dynamic
//!    leakage metric.
//!
//! [`report`] renders the whole episode (initial diagnosis, patch trace,
//! final verdict, NICV delta) as a byte-stable JSON document pinned by the
//! golden suite under `tests/golden/repair/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confirm;
pub mod patch;
pub mod report;
pub mod search;

pub use confirm::{confirm, Confirmation};
pub use patch::{generate, GeneratedPatches, Patch, BARRIER_COST_FJ, FRESH_COST_FJ};
pub use search::{repair, RepairOutcome, SearchConfig, SearchEffort, StepRecord};
