//! Beam search over candidate patches, driven by incremental re-analysis.
//!
//! A repair episode starts from the diagnosed base subject and explores
//! patch sequences up to [`SearchConfig::max_steps`] deep. The invariants:
//!
//! * **Monotone progress.** A candidate is kept only if its Error set —
//!   keyed `(rule, gate, net)`, meaningful because every generator keeps
//!   ids stable — is a strict subset of its parent's. Repairs shrink the
//!   problem; they never trade one Error for another.
//! * **Function preservation.** Every candidate is checked against the
//!   *original* subject on a deterministic sample of (class, mask) pairs:
//!   the XOR of each output share group must match. A patch that fixes
//!   leakage by changing the computed function is a miscompile, not a
//!   repair.
//! * **Cheapest first.** At the first depth where any candidate clears
//!   all Errors, the cheapest such candidate (by cumulative energy cost)
//!   wins and the search stops: a two-step repair is never preferred over
//!   an affordable one-step repair.
//!
//! Re-verification goes through one [`Baseline`] of the original subject,
//! so every candidate pays only for the cone its patch dirtied.

use std::collections::BTreeSet;

use sca_verify::{Analysis, Baseline, Severity, Subject};

use crate::patch::{generate, Patch};

/// Tuning knobs of the repair search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Candidates carried to the next depth.
    pub beam_width: usize,
    /// Maximum patch-sequence length.
    pub max_steps: usize,
    /// Mask-space cap: candidates whose mask space outgrows this many
    /// bits would fall out of exhaustive depth (and enumeration budget),
    /// so they are skipped with a note.
    pub max_mask_bits: usize,
    /// (class, mask) samples for the function-preservation check.
    pub preservation_samples: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            beam_width: 4,
            max_steps: 4,
            max_mask_bits: sca_verify::subject::MAX_MASK_BITS,
            preservation_samples: 64,
        }
    }
}

/// One accepted patch in the repair sequence.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Patch identifier ([`Patch::name`]).
    pub patch: String,
    /// Human-readable description of the edit.
    pub description: String,
    /// Energy cost of this step.
    pub cost_fj: f64,
    /// Gates this step added.
    pub added_gates: usize,
    /// Fresh inputs this step added.
    pub added_inputs: usize,
    /// Error-severity findings before the step.
    pub errors_before: usize,
    /// Error-severity findings after the step.
    pub errors_after: usize,
}

/// Work accounting across the whole search — the observability hook for
/// the incremental-analysis speedup claim.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchEffort {
    /// Candidate re-analyses performed.
    pub reanalyses: usize,
    /// Sum of gates whose statistics were actually recomputed.
    pub dirty_gates: usize,
    /// Sum of gates a from-scratch run would have recomputed.
    pub total_gates: usize,
}

/// The result of one repair episode.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// Subject label.
    pub label: String,
    /// Whether the final subject clears every Error-severity rule.
    pub repaired: bool,
    /// Diagnosis of the original subject.
    pub initial: Analysis,
    /// Diagnosis of the final subject (equals `initial` when no patch was
    /// accepted).
    pub final_analysis: Analysis,
    /// The final subject: patched when `repaired`, otherwise the base.
    pub subject: Subject,
    /// The accepted patch sequence, in application order.
    pub steps: Vec<StepRecord>,
    /// Total energy cost of the accepted sequence.
    pub total_cost_fj: f64,
    /// Candidates that were generated and re-analyzed.
    pub candidates_tried: usize,
    /// Anchors and candidates that were skipped, with reasons.
    pub skipped: Vec<String>,
    /// Incremental-analysis work accounting.
    pub effort: SearchEffort,
}

type ErrorKey = (&'static str, Option<usize>, usize);

fn error_keys(analysis: &Analysis) -> BTreeSet<ErrorKey> {
    analysis
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| (d.rule.code(), d.location.gate, d.location.net))
        .collect()
}

struct State {
    subject: Subject,
    analysis: Analysis,
    errors: BTreeSet<ErrorKey>,
    steps: Vec<StepRecord>,
    cost: f64,
}

/// Deterministic sampled check that `cand` still computes the base
/// function: for each sampled (class, mask) pair the XOR over every
/// output share group must agree. Mask bits the candidate added beyond
/// the base's are exercised too — a refresh must cancel for *any* value
/// of its fresh bits.
pub fn functionally_equivalent(base: &Subject, cand: &Subject, samples: usize) -> bool {
    if cand.output_groups() != base.output_groups() {
        return false;
    }
    let classes = base.num_classes() as u64;
    let base_bits = base.mask_bits();
    let extra_bits = cand.mask_bits().saturating_sub(base_bits);
    let mut x = 0x243f_6a88_85a3_08d3u64; // deterministic LCG stream
    for _ in 0..samples {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let t = (x >> 33) % classes;
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mask = if base_bits == 0 {
            0
        } else {
            (x >> 7) & ((1u64 << base_bits) - 1)
        };
        let extra = if extra_bits == 0 {
            0
        } else {
            (x >> 49) & ((1u64 << extra_bits) - 1)
        };
        let base_out = base.netlist().evaluate(&base.encode(t, mask));
        let cand_out = cand
            .netlist()
            .evaluate(&cand.encode(t, mask | extra << base_bits));
        for ports in base.output_groups() {
            let bx = ports.iter().fold(false, |a, &p| a ^ base_out[p]);
            let cx = ports.iter().fold(false, |a, &p| a ^ cand_out[p]);
            if bx != cx {
                return false;
            }
        }
    }
    true
}

/// Run the full diagnose → patch → re-verify loop on `subject`.
pub fn repair(subject: &Subject, config: &SearchConfig) -> RepairOutcome {
    let baseline = Baseline::new(subject.clone());
    let initial = baseline.base_analysis();
    let initial_errors = error_keys(&initial);
    let mut outcome = RepairOutcome {
        label: subject.label().to_string(),
        repaired: initial_errors.is_empty(),
        final_analysis: initial.clone(),
        subject: subject.clone(),
        initial,
        steps: Vec::new(),
        total_cost_fj: 0.0,
        candidates_tried: 0,
        skipped: Vec::new(),
        effort: SearchEffort::default(),
    };
    if outcome.repaired {
        return outcome;
    }

    let mut beam = vec![State {
        subject: subject.clone(),
        analysis: outcome.initial.clone(),
        errors: initial_errors,
        steps: Vec::new(),
        cost: 0.0,
    }];

    for _depth in 0..config.max_steps {
        let mut solutions: Vec<State> = Vec::new();
        let mut next: Vec<State> = Vec::new();
        for state in &beam {
            let generated = generate(&state.subject, &state.analysis);
            outcome.skipped.extend(generated.notes);
            for patch in generated.patches {
                if let Some(state) =
                    try_candidate(subject, state, patch, &baseline, config, &mut outcome)
                {
                    if state.errors.is_empty() {
                        solutions.push(state);
                    } else {
                        next.push(state);
                    }
                }
            }
        }
        if let Some(best) = solutions.into_iter().min_by(|a, b| {
            a.cost
                .total_cmp(&b.cost)
                .then(a.steps.len().cmp(&b.steps.len()))
        }) {
            outcome.repaired = true;
            outcome.final_analysis = best.analysis;
            outcome.subject = best.subject;
            outcome.steps = best.steps;
            outcome.total_cost_fj = best.cost;
            return outcome;
        }
        next.sort_by(|a, b| {
            a.errors
                .len()
                .cmp(&b.errors.len())
                .then(a.cost.total_cmp(&b.cost))
        });
        next.truncate(config.beam_width);
        if next.is_empty() {
            break;
        }
        beam = next;
    }
    outcome
}

/// Re-verify one candidate; `None` when it is skipped or fails the
/// monotone-progress / preservation gates.
fn try_candidate(
    original: &Subject,
    parent: &State,
    patch: Patch,
    baseline: &Baseline,
    config: &SearchConfig,
    outcome: &mut RepairOutcome,
) -> Option<State> {
    if patch.subject.mask_bits() > config.max_mask_bits {
        outcome.skipped.push(format!(
            "{}: mask space would grow to {} bits (cap {})",
            patch.name,
            patch.subject.mask_bits(),
            config.max_mask_bits
        ));
        return None;
    }
    outcome.candidates_tried += 1;
    if !functionally_equivalent(original, &patch.subject, config.preservation_samples) {
        outcome
            .skipped
            .push(format!("{}: changes the computed function", patch.name));
        return None;
    }
    let (analysis, effort) = baseline.reanalyze(&patch.subject);
    outcome.effort.reanalyses += 1;
    outcome.effort.dirty_gates += effort.dirty_gates;
    outcome.effort.total_gates += effort.total_gates;
    let errors = error_keys(&analysis);
    if errors.len() >= parent.errors.len() || !errors.is_subset(&parent.errors) {
        return None;
    }
    let mut steps = parent.steps.clone();
    steps.push(StepRecord {
        patch: patch.name,
        description: patch.description,
        cost_fj: patch.cost_fj,
        added_gates: patch.added_gates,
        added_inputs: patch.added_inputs,
        errors_before: parent.errors.len(),
        errors_after: errors.len(),
    });
    Some(State {
        subject: patch.subject,
        analysis,
        errors,
        steps,
        cost: parent.cost + patch.cost_fj,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_circuits::{SboxCircuit, Scheme};

    #[test]
    fn isw_is_already_clean_and_returns_untouched() {
        let subject = Subject::of_circuit(&SboxCircuit::build(Scheme::Isw));
        let outcome = repair(&subject, &SearchConfig::default());
        assert!(outcome.repaired);
        assert!(outcome.steps.is_empty());
        assert_eq!(outcome.total_cost_fj, 0.0);
        assert_eq!(outcome.candidates_tried, 0);
    }

    #[test]
    fn ti_boundary_composition_repairs_in_one_refresh_step() {
        let subject = Subject::of_circuit(&SboxCircuit::build(Scheme::Ti));
        let outcome = repair(&subject, &SearchConfig::default());
        assert!(outcome.repaired, "skipped: {:?}", outcome.skipped);
        assert_eq!(outcome.initial.error_count(), 4, "TI: 4 GX-BOUNDARY errors");
        assert_eq!(outcome.final_analysis.error_count(), 0);
        assert!(outcome.final_analysis.verdicts.glitch_first_order());
        assert_eq!(outcome.steps.len(), 1, "one shared refresh suffices");
        assert!(outcome.steps[0].patch.starts_with("refresh-"));
        // The repair must be functionally invisible.
        assert!(functionally_equivalent(&subject, &outcome.subject, 128));
        // And the incremental engine must have saved most of the work.
        assert!(
            outcome.effort.dirty_gates * 2 < outcome.effort.total_gates,
            "incremental re-analysis should touch a minority of gates: {:?}",
            outcome.effort
        );
    }

    #[test]
    fn preservation_check_rejects_a_function_change() {
        let subject = Subject::of_circuit(&SboxCircuit::build(Scheme::Ti));
        let mut b = sbox_netlist::NetlistBuilder::new("broken");
        let base = subject.netlist();
        let mut map = std::collections::HashMap::new();
        for (i, &net) in base.inputs().iter().enumerate() {
            map.insert(net.index(), b.input(format!("in{i}")));
        }
        for gate in base.gates() {
            let pins: Vec<_> = gate.inputs().iter().map(|n| map[&n.index()]).collect();
            map.insert(gate.output().index(), b.gate(gate.cell(), &pins));
        }
        for (i, (name, net)) in base.outputs().iter().enumerate() {
            let out = map[&net.index()];
            // Invert one output share: the group XOR flips.
            let out = if i == 0 { b.not(out) } else { out };
            b.output(name.clone(), out);
        }
        let broken = Subject::with_roles(
            "broken",
            b.finish().expect("valid"),
            subject.roles().to_vec(),
            subject.output_groups().to_vec(),
        )
        .expect("contract");
        assert!(!functionally_equivalent(&subject, &broken, 64));
    }
}
