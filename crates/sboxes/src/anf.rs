//! Algebraic Normal Form utilities (Möbius transform) for the threshold
//! implementation.

/// The ANF of a single-output boolean function given as a truth table of
/// `2ⁿ` bits: returns the set of monomials, each a variable mask `m`
/// (bit `i` of `m` set ⇒ variable `i` is in the monomial; `m = 0` is the
/// constant 1).
///
/// # Panics
///
/// Panics if `table.len()` is not a power of two.
///
/// # Example
///
/// ```
/// use sbox_circuits::anf::monomials;
///
/// // f(x0, x1) = x0 ⊕ x0·x1  → monomials {0b01, 0b11}.
/// let f = [false, true, false, false];
/// assert_eq!(monomials(&f), vec![0b01, 0b11]);
/// ```
pub fn monomials(table: &[bool]) -> Vec<u32> {
    let n = table.len();
    assert!(n.is_power_of_two(), "table length must be a power of two");
    let mut coeffs: Vec<bool> = table.to_vec();
    // Möbius transform (in-place butterfly over F₂).
    let mut h = 1;
    while h < n {
        for block in (0..n).step_by(2 * h) {
            for i in block..block + h {
                coeffs[i + h] ^= coeffs[i];
            }
        }
        h *= 2;
    }
    coeffs
        .iter()
        .enumerate()
        .filter(|(_, &c)| c)
        .map(|(m, _)| m as u32)
        .collect()
}

/// Evaluate an ANF (list of monomials) on a packed input word.
pub fn evaluate_anf(monomials: &[u32], x: u32) -> bool {
    monomials.iter().fold(false, |acc, &m| acc ^ (x & m == m))
}

/// Algebraic degree of an ANF.
pub fn degree(monomials: &[u32]) -> u32 {
    monomials.iter().map(|m| m.count_ones()).max().unwrap_or(0)
}

/// The ANF monomial lists of the four PRESENT S-box output bits
/// (LSB-first).
pub fn present_sbox_anf() -> [Vec<u32>; 4] {
    std::array::from_fn(|bit| {
        let table: Vec<bool> = (0..16u8)
            .map(|t| (present_cipher::sbox(t) >> bit) & 1 == 1)
            .collect();
        monomials(&table)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anf_round_trips_on_random_functions() {
        let mut state = 0x1234_5678u32;
        for _ in 0..20 {
            let table: Vec<bool> = (0..32)
                .map(|_| {
                    state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    state >> 31 == 1
                })
                .collect();
            let anf = monomials(&table);
            for (x, &fx) in table.iter().enumerate() {
                assert_eq!(evaluate_anf(&anf, x as u32), fx);
            }
        }
    }

    #[test]
    fn present_sbox_anf_reproduces_the_sbox() {
        let anf = present_sbox_anf();
        for t in 0..16u8 {
            let mut v = 0u8;
            for (bit, m) in anf.iter().enumerate() {
                v |= u8::from(evaluate_anf(m, u32::from(t))) << bit;
            }
            assert_eq!(v, present_cipher::sbox(t), "t={t}");
        }
    }

    #[test]
    fn present_sbox_has_degree_three() {
        for m in present_sbox_anf() {
            assert!(degree(&m) <= 3);
        }
        assert!(present_sbox_anf().iter().any(|m| degree(m) == 3));
    }

    #[test]
    fn constant_bits_match_sbox_of_zero() {
        // S(0) = 0xC: output bits 2 and 3 have the constant-1 monomial.
        let anf = present_sbox_anf();
        assert!(!anf[0].contains(&0));
        assert!(!anf[1].contains(&0));
        assert!(anf[2].contains(&0));
        assert!(anf[3].contains(&0));
    }
}
