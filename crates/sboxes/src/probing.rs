//! First-order probing analysis of the masked netlists.
//!
//! For every internal net, compute the conditional distribution of its
//! *value* given the unmasked class `t`, exhaustively over the mask space.
//! A net whose distribution depends on `t` is a first-order probe point:
//! an adversary measuring just that net's (average) value learns something
//! about the secret. This is the "bit probing model" the paper notes
//! masking schemes are usually assessed in — and the static counterpart of
//! the dynamic (glitch) leakage the simulator measures.
//!
//! # Deprecation note
//!
//! This module is kept for API stability, but it is now a thin wrapper
//! over [`crate::exhaustive`], which performs the same enumeration once
//! and also collects the per-gate fan-in joint distributions the
//! `sca-verify` crate needs for glitch-extended probing. New analyses
//! should consume [`crate::exhaustive::SweepCounts`] (or the `sca-verify`
//! diagnostics) directly; the value-bias numbers here are bit-identical
//! to [`crate::exhaustive::SweepCounts::net_value_bias`].

use sbox_netlist::Netlist;

use crate::SboxCircuit;

/// The probing profile of one netlist: per-net worst-case bias.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbingProfile {
    /// For each net: `max_t |P(net = 1 | t) − P(net = 1 | 0)|` over all
    /// classes, with the probability taken over the full mask space.
    pub value_bias: Vec<f64>,
}

impl ProbingProfile {
    /// The largest bias over all *driven* (internal/output) nets.
    pub fn max_bias(&self, netlist: &Netlist) -> f64 {
        self.value_bias
            .iter()
            .enumerate()
            .filter(|(i, _)| netlist.nets()[*i].driver().is_some())
            .map(|(_, &b)| b)
            .fold(0.0, f64::max)
    }

    /// Nets whose bias exceeds `threshold`, most biased first.
    pub fn biased_nets(&self, threshold: f64) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self
            .value_bias
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, b)| b > threshold)
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }
}

/// Exhaustively evaluate the circuit over its whole (class × mask) space
/// and profile every net's class-conditional value distribution.
///
/// # Panics
///
/// Panics if the scheme has more than 16 mask bits (the enumeration would
/// exceed 2²⁰ evaluations).
pub fn analyze(circuit: &SboxCircuit) -> ProbingProfile {
    let counts = crate::exhaustive::sweep(circuit);
    ProbingProfile {
        value_bias: counts.net_value_bias(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheme;

    #[test]
    fn unprotected_nets_are_maximally_biased() {
        let profile = analyze(&SboxCircuit::build(Scheme::Opt));
        let circuit = SboxCircuit::build(Scheme::Opt);
        // With no masks, every output net's value is a deterministic
        // function of t: bias 1 for at least one net.
        assert_eq!(profile.max_bias(circuit.netlist()), 1.0);
    }

    #[test]
    fn isw_nets_are_unbiased_in_the_value_domain() {
        // ISW's first-order security: every single wire's value
        // distribution is class-independent (the leakage the paper finds
        // is *dynamic* — glitches — not value bias).
        let circuit = SboxCircuit::build(Scheme::Isw);
        let profile = analyze(&circuit);
        assert!(
            profile.max_bias(circuit.netlist()) < 1e-9,
            "max bias {}",
            profile.max_bias(circuit.netlist())
        );
    }

    #[test]
    fn ti_nets_are_unbiased_in_the_value_domain() {
        let circuit = SboxCircuit::build(Scheme::Ti);
        let profile = analyze(&circuit);
        assert!(
            profile.max_bias(circuit.netlist()) < 1e-9,
            "max bias {}",
            profile.max_bias(circuit.netlist())
        );
    }

    #[test]
    fn tabulated_masking_has_static_product_bias() {
        // The flat SOP of a masked table necessarily contains product
        // terms that pin (A_i, MI_i) pairs — their mean activity is
        // class-dependent. This is the structural root of the paper's
        // "tabulated masking provides less security" finding.
        let circuit = SboxCircuit::build(Scheme::Rsm);
        let profile = analyze(&circuit);
        let max = profile.max_bias(circuit.netlist());
        assert!(max > 0.01, "expected product-term bias, got {max}");
        // But the *outputs* stay perfectly masked.
        for (_, net) in circuit.netlist().outputs() {
            assert!(
                profile.value_bias[net.index()] < 1e-9,
                "masked output is biased"
            );
        }
    }
}
