//! The full PRESENT round-1 datapath in gates: 64-bit add-round-key,
//! sixteen S-box instances, and the pLayer bit permutation.
//!
//! The paper's testbed "implemented the add-round-key and S-Box operations
//! in the first round of the PRESENT cipher" — this module provides that
//! datapath at full width (the per-nibble leakage studies use the single
//! S-box generators, which keep Table I's gate counts exact).

use sbox_netlist::{NetId, Netlist, NetlistBuilder};

use crate::{lut, opt};

/// Which unprotected S-box realization to instantiate per nibble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundSboxStyle {
    /// Two-level lookup logic in every nibble slice.
    Lut,
    /// The 14-gate optimized circuit in every nibble slice.
    Opt,
}

/// Build the round-1 datapath: inputs `p0..p63` (plaintext) and
/// `k0..k63` (round key K1), outputs `c0..c63` = `pLayer(S(p ⊕ k))`.
pub fn build_round_one(style: RoundSboxStyle) -> Netlist {
    let mut b = NetlistBuilder::new(match style {
        RoundSboxStyle::Lut => "present_round1_lut",
        RoundSboxStyle::Opt => "present_round1_opt",
    });
    let p = b.input_bus("p", 64);
    let k = b.input_bus("k", 64);
    // Add-round-key.
    let state: Vec<NetId> = p.iter().zip(&k).map(|(&pi, &ki)| b.xor(pi, ki)).collect();
    // Sixteen S-box slices.
    let mut substituted: Vec<NetId> = Vec::with_capacity(64);
    for nibble in 0..16 {
        let slice = &state[4 * nibble..4 * nibble + 4];
        let outs = match style {
            RoundSboxStyle::Lut => lut::emit(&mut b, slice),
            RoundSboxStyle::Opt => opt::emit(&mut b, slice),
        };
        substituted.extend(outs);
    }
    // pLayer: pure rewiring — output bit P(i) is input bit i.
    let mut permuted = vec![substituted[63]; 64];
    for (i, &net) in substituted.iter().enumerate().take(63) {
        permuted[i * 16 % 63] = net;
    }
    permuted[63] = substituted[63];
    b.output_bus("c", &permuted);
    b.finish().expect("round-1 datapath is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use present_cipher::{player, sbox_layer};

    fn reference_round1(p: u64, k: u64) -> u64 {
        player(sbox_layer(p ^ k))
    }

    fn eval(nl: &Netlist, p: u64, k: u64) -> u64 {
        let inputs: Vec<bool> = (0..64)
            .map(|i| (p >> i) & 1 == 1)
            .chain((0..64).map(|i| (k >> i) & 1 == 1))
            .collect();
        nl.evaluate(&inputs)
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn round_one_matches_the_cipher_reference() {
        for style in [RoundSboxStyle::Lut, RoundSboxStyle::Opt] {
            let nl = build_round_one(style);
            for (p, k) in [
                (0u64, 0u64),
                (u64::MAX, 0),
                (0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210),
                (0xDEAD_BEEF_0BAD_F00D, 0x0F0F_0F0F_F0F0_F0F0),
            ] {
                assert_eq!(eval(&nl, p, k), reference_round1(p, k), "{style:?}");
            }
        }
    }

    #[test]
    fn round_one_has_sixteen_slices_plus_key_addition() {
        let nl = build_round_one(RoundSboxStyle::Opt);
        let stats = nl.stats();
        // 64 key XORs + 16 × 9 S-box XORs.
        assert_eq!(stats.family_count("XOR"), 64 + 16 * 9);
        assert_eq!(stats.family_count("AND"), 16 * 2);
        assert_eq!(stats.num_inputs, 128);
        assert_eq!(stats.num_outputs, 64);
    }
}
