//! Shared exhaustive (class × mask) sweep over a masked S-box circuit.
//!
//! Both the value-probing profile ([`crate::probing`]) and the `sca-verify`
//! static analyzer need the same raw statistics, taken exhaustively over
//! the scheme's mask space: for every net, how often it evaluates to 1
//! under each unmasked class `t`, and for every gate, the joint
//! distribution of its fan-in values under each class. This module
//! computes both in a single pass so the two analyses share one
//! enumeration and cannot drift apart.
//!
//! The per-gate fan-in joint distribution is the static stand-in for a
//! *glitch-extended* probe in its tightest local form: during the race
//! window after an input transition, a gate's output can transiently
//! expose any Boolean function of its direct fan-in, so an adversary
//! probing the output effectively observes the fan-in *tuple*, not just
//! the settled value. A class-dependent tuple distribution is therefore
//! transient leakage even when every individual net is value-unbiased.

use crate::SboxCircuit;

/// Number of unmasked input classes (PRESENT S-box nibble values).
pub const NUM_CLASSES: usize = 16;

/// Maximum cell fan-in, hence `2^4` joint fan-in patterns per gate.
pub const MAX_FANIN_PATTERNS: usize = 16;

/// Raw class-conditional counts from one exhaustive sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCounts {
    mask_count: u32,
    net_ones: Vec<[u32; NUM_CLASSES]>,
    gate_patterns: Vec<[[u32; MAX_FANIN_PATTERNS]; NUM_CLASSES]>,
}

impl SweepCounts {
    /// Number of mask words enumerated per class.
    pub fn mask_count(&self) -> u32 {
        self.mask_count
    }

    /// `net_ones()[net][t]` counts the mask words under which net `net`
    /// evaluates to 1 given class `t`.
    pub fn net_ones(&self) -> &[[u32; NUM_CLASSES]] {
        &self.net_ones
    }

    /// `gate_patterns()[gate][t][p]` counts the mask words under which
    /// gate `gate`'s fan-in nets spell the bit pattern `p` (pin 0 = LSB)
    /// given class `t`.
    pub fn gate_patterns(&self) -> &[[[u32; MAX_FANIN_PATTERNS]; NUM_CLASSES]] {
        &self.gate_patterns
    }

    /// Per-net worst-case value bias:
    /// `max_t |P(net = 1 | t) − P(net = 1 | 0)|`.
    ///
    /// This reproduces the arithmetic of the original
    /// [`crate::probing::analyze`] term for term, so the rebased profile
    /// stays bit-identical to the historical one.
    pub fn net_value_bias(&self) -> Vec<f64> {
        let denom = f64::from(self.mask_count);
        self.net_ones
            .iter()
            .map(|per_class| {
                let p0 = f64::from(per_class[0]) / denom;
                per_class
                    .iter()
                    .map(|&c| (f64::from(c) / denom - p0).abs())
                    .fold(0.0, f64::max)
            })
            .collect()
    }

    /// Per-gate worst-case *transient* bias: the largest total-variation
    /// distance between the fan-in joint distribution under class `t` and
    /// under class 0, over all `t`.
    ///
    /// Zero means a glitch-extended probe on the gate's output (local
    /// race-window model) learns nothing about the class; 1 means some
    /// class is perfectly distinguishable.
    pub fn gate_joint_bias(&self) -> Vec<f64> {
        let denom = f64::from(self.mask_count);
        self.gate_patterns
            .iter()
            .map(|per_class| {
                (1..NUM_CLASSES)
                    .map(|t| {
                        (0..MAX_FANIN_PATTERNS)
                            .map(|p| {
                                (f64::from(per_class[t][p]) - f64::from(per_class[0][p])).abs()
                                    / denom
                            })
                            .sum::<f64>()
                            / 2.0
                    })
                    .fold(0.0, f64::max)
            })
            .collect()
    }

    /// Per-gate class-variance mass of the fan-in joint distribution:
    /// `Σ_p Var_t(P(pattern = p | t))`.
    ///
    /// The static analogue of the dynamic class-variance the
    /// Walsh–Hadamard decomposition measures — a graded "how much does the
    /// joint distribution move with the class" score, where
    /// [`SweepCounts::gate_joint_bias`] is the worst-case version.
    pub fn gate_class_variance(&self) -> Vec<f64> {
        let denom = f64::from(self.mask_count);
        self.gate_patterns
            .iter()
            .map(|per_class| {
                (0..MAX_FANIN_PATTERNS)
                    .map(|p| {
                        let probs: Vec<f64> = (0..NUM_CLASSES)
                            .map(|t| f64::from(per_class[t][p]) / denom)
                            .collect();
                        let mean = probs.iter().sum::<f64>() / NUM_CLASSES as f64;
                        probs.iter().map(|q| (q - mean) * (q - mean)).sum::<f64>()
                            / NUM_CLASSES as f64
                    })
                    .sum()
            })
            .collect()
    }
}

/// Exhaustively evaluate the circuit over its whole (class × mask) space.
///
/// # Panics
///
/// Panics if the scheme has more than 16 mask bits (the enumeration would
/// exceed 2²⁰ evaluations).
pub fn sweep(circuit: &SboxCircuit) -> SweepCounts {
    let encoding = circuit.encoding();
    let netlist = circuit.netlist();
    let mask_bits = encoding.mask_bits();
    assert!(mask_bits <= 16, "mask space too large to enumerate");
    let mask_count = 1u32 << mask_bits;
    let mut net_ones = vec![[0u32; NUM_CLASSES]; netlist.nets().len()];
    let mut gate_patterns = vec![[[0u32; MAX_FANIN_PATTERNS]; NUM_CLASSES]; netlist.gates().len()];
    for t in 0..NUM_CLASSES as u8 {
        for mask in 0..mask_count {
            let inputs = encoding.encode_masked(t, mask);
            let values = netlist.evaluate_nets(&inputs);
            for (slot, &v) in net_ones.iter_mut().zip(&values) {
                slot[usize::from(t)] += u32::from(v);
            }
            for (gate, slot) in netlist.gates().iter().zip(gate_patterns.iter_mut()) {
                let mut pattern = 0usize;
                for (pin, net) in gate.inputs().iter().enumerate() {
                    pattern |= usize::from(values[net.index()]) << pin;
                }
                slot[usize::from(t)][pattern] += 1;
            }
        }
    }
    SweepCounts {
        mask_count,
        net_ones,
        gate_patterns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheme;

    #[test]
    fn counts_are_complete_and_consistent() {
        let circuit = SboxCircuit::build(Scheme::Rsm);
        let counts = sweep(&circuit);
        assert_eq!(counts.mask_count(), 16);
        // Every (gate, class) row sums to the mask count.
        for per_class in counts.gate_patterns() {
            for row in per_class {
                assert_eq!(row.iter().sum::<u32>(), counts.mask_count());
            }
        }
        // A gate's output-net ones must match the histogram mass on the
        // patterns its cell maps to 1 — spot-check via bias consistency:
        // any net with value bias also shows up as fan-in bias of its
        // sinks or output-pattern bias of its driver.
        assert_eq!(
            counts.net_ones().len(),
            circuit.netlist().nets().len(),
            "one slot per net"
        );
    }

    #[test]
    fn unprotected_joint_distributions_are_deterministic() {
        let circuit = SboxCircuit::build(Scheme::Lut);
        let counts = sweep(&circuit);
        // No masks: each class puts its whole mass on a single pattern.
        for per_class in counts.gate_patterns() {
            for row in per_class {
                assert_eq!(row.iter().filter(|&&c| c > 0).count(), 1);
            }
        }
        assert!(counts.gate_joint_bias().contains(&1.0));
    }

    #[test]
    fn isw_and_ti_gates_have_classless_joints() {
        for scheme in [Scheme::Isw, Scheme::Ti] {
            let counts = sweep(&SboxCircuit::build(scheme));
            let max = counts
                .gate_joint_bias()
                .iter()
                .fold(0.0f64, |a, &b| a.max(b));
            assert!(max < 1e-12, "{scheme}: local transient bias {max}");
        }
    }

    #[test]
    fn tabulated_masking_has_transient_bias() {
        for scheme in [Scheme::Glut, Scheme::Rsm, Scheme::RsmRom] {
            let counts = sweep(&SboxCircuit::build(scheme));
            let max = counts
                .gate_joint_bias()
                .iter()
                .fold(0.0f64, |a, &b| a.max(b));
            assert!(max > 0.1, "{scheme}: expected transient bias, got {max}");
        }
    }

    #[test]
    fn class_variance_is_zero_iff_joint_bias_is_zero() {
        let counts = sweep(&SboxCircuit::build(Scheme::Glut));
        for (bias, var) in counts
            .gate_joint_bias()
            .iter()
            .zip(counts.gate_class_variance())
        {
            assert_eq!(*bias == 0.0, var == 0.0);
        }
    }
}
