//! Global lookup-table masking: `Y = S(A ⊕ MI) ⊕ MO` as one tabulated
//! 12-input function.
//!
//! The masked table is synthesized as *flat two-level logic* directly over
//! the 12 masked inputs. This is the security-critical property of
//! tabulated masking: no internal net ever carries an unmasked
//! intermediate — every product term is a function of masked values only,
//! so first-order leakage can arise solely from mask-averaged glitch
//! interactions, which is exactly what the paper measures for GLUT.

use present_cipher::SBOX;
use sbox_netlist::synth::TruthTable;
use sbox_netlist::{Netlist, NetlistBuilder};

/// The GLUT output for unpacked nibbles (reference model).
pub fn glut_output(a: u8, mi: u8, mo: u8) -> u8 {
    SBOX[usize::from((a ^ mi) & 0xF)] ^ (mo & 0xF)
}

/// Build the GLUT netlist (`a0..3`, `mi0..3`, `mo0..3` → `y0..3`).
pub fn build() -> Netlist {
    let tt = TruthTable::from_fn(12, 4, |w| {
        let a = (w & 0xF) as u8;
        let mi = ((w >> 4) & 0xF) as u8;
        let mo = ((w >> 8) & 0xF) as u8;
        u64::from(glut_output(a, mi, mo))
    });
    let mut b = NetlistBuilder::new("sbox_glut");
    let a = b.input_bus("a", 4);
    let mi = b.input_bus("mi", 4);
    let mo = b.input_bus("mo", 4);
    let inputs: Vec<_> = a.into_iter().chain(mi).chain(mo).collect();
    // Cap the Quine–McCluskey merging: the masked table's cubes stop
    // shrinking after a few rounds (XOR structure), and full primality on
    // 12 variables costs minutes for no area gain.
    let y = tt.synthesize_sop_with_cap(&mut b, &inputs, 6);
    b.output_bus("y", &y);
    b.finish().expect("GLUT synthesis is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_relation_holds_exhaustively() {
        let nl = build();
        for word in 0..(1u64 << 12) {
            let a = (word & 0xF) as u8;
            let mi = ((word >> 4) & 0xF) as u8;
            let mo = ((word >> 8) & 0xF) as u8;
            let y = nl.evaluate_word(word) as u8;
            assert_eq!(
                y ^ mo,
                SBOX[usize::from(a ^ mi)],
                "a={a:X} mi={mi:X} mo={mo:X}"
            );
        }
    }

    #[test]
    fn gate_mix_matches_table_one_style() {
        let stats = build().stats();
        // Paper: 580 AND / 180 OR / 12 INV, 772 gates, no XOR. Two-level
        // synthesis of the same table lands in the same range.
        assert_eq!(stats.family_count("XOR"), 0);
        assert_eq!(stats.family_count("XNOR"), 0);
        assert_eq!(stats.family_count("INV"), 12, "shared literal inverters");
        assert!(stats.family_count("AND") >= 400, "{stats}");
        assert!(stats.family_count("OR") >= 100, "{stats}");
    }

    #[test]
    fn no_net_deterministically_demasks() {
        // No internal net may *compute* an unmasked value: for every net
        // there must exist two stimuli with the same unmasked class t but
        // different net values, or the net is constant across classes.
        // (Mean-activity class dependence is unavoidable in tabulated
        // masking — that is the leakage the paper measures — but a net
        // that equals an unmasked bit outright would be a demasking bug.)
        let nl = build();
        let num_nets = nl.nets().len();
        // For each net, record the set of (t → value) behaviours.
        let mut always_matches_bit = vec![[true; 8]; num_nets]; // 4 bits of t, 4 bits of S(t)
        for word in 0..(1u64 << 12) {
            let a = (word & 0xF) as u8;
            let mi = ((word >> 4) & 0xF) as u8;
            let t = a ^ mi;
            let s = SBOX[usize::from(t)];
            let values =
                nl.evaluate_nets(&(0..12).map(|i| (word >> i) & 1 == 1).collect::<Vec<_>>());
            for (n, &v) in values.iter().enumerate() {
                for bit in 0..4 {
                    if v != ((t >> bit) & 1 == 1) {
                        always_matches_bit[n][bit] = false;
                    }
                    if v != ((s >> bit) & 1 == 1) {
                        always_matches_bit[n][4 + bit] = false;
                    }
                }
            }
        }
        for (n, flags) in always_matches_bit.iter().enumerate() {
            // Skip primary inputs (they legitimately carry masked values
            // that may coincide with nothing) — check driven nets only.
            if nl.nets()[n].driver().is_some() {
                assert!(
                    flags.iter().all(|&f| !f),
                    "net {n} deterministically computes an unmasked bit"
                );
            }
        }
    }
}
