//! Unprotected LUT-style implementation: two-level AND/OR lookup logic.

use present_cipher::SBOX;
use sbox_netlist::synth::TruthTable;
use sbox_netlist::{NetId, Netlist, NetlistBuilder};

/// Emit one LUT S-box slice reading `inputs` (4 nets, LSB first) into an
/// existing builder; returns the 4 output nets.
///
/// # Panics
///
/// Panics if `inputs.len() != 4`.
pub fn emit(b: &mut NetlistBuilder, inputs: &[NetId]) -> Vec<NetId> {
    assert_eq!(inputs.len(), 4);
    let tt = TruthTable::from_fn(4, 4, |t| u64::from(SBOX[t as usize]));
    tt.synthesize_sop(b, inputs)
}

/// Build the baseline lookup implementation: a minimized sum-of-products
/// per output bit (the "4-bit lookup table … implemented using
/// combinational logic" of paper §IV-A).
pub fn build() -> Netlist {
    let mut b = NetlistBuilder::new("sbox_lut");
    let x = b.input_bus("x", 4);
    let y = emit(&mut b, &x);
    b.output_bus("y", &y);
    b.finish().expect("LUT synthesis is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_the_sbox() {
        let nl = build();
        for t in 0..16u64 {
            assert_eq!(nl.evaluate_word(t), u64::from(SBOX[t as usize]));
        }
    }

    #[test]
    fn uses_only_and_or_inv() {
        let stats = build().stats();
        assert_eq!(stats.family_count("XOR"), 0);
        assert_eq!(stats.family_count("XNOR"), 0);
        assert!(stats.family_count("AND") > 0);
        assert!(stats.family_count("OR") > 0);
        assert!(stats.family_count("INV") > 0);
    }

    #[test]
    fn is_table_one_scale() {
        // Paper: 32 gates, depth 8. Our minimizer lands in the same range.
        let stats = build().stats();
        assert!(
            (20..=60).contains(&stats.total_gates),
            "total {}",
            stats.total_gates
        );
        assert!(stats.delay_gates <= 10, "depth {}", stats.delay_gates);
    }
}
