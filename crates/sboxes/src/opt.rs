//! Unprotected SAT-optimized implementation (14 gates, 4 non-linear).

use std::collections::HashMap;

use sbox_netlist::{NetId, Netlist, NetlistBuilder};

use crate::program::{SboxOp, OPT_PROGRAM};

/// Emit one OPT S-box slice reading `inputs` (4 nets, LSB first) into an
/// existing builder; returns the 4 output nets (LSB first).
///
/// # Panics
///
/// Panics if `inputs.len() != 4`.
pub fn emit(b: &mut NetlistBuilder, inputs: &[NetId]) -> Vec<NetId> {
    assert_eq!(inputs.len(), 4);
    let mut env: HashMap<&'static str, NetId> = HashMap::new();
    // Program x0 is the nibble's MSB = port x3.
    env.insert("x0", inputs[3]);
    env.insert("x1", inputs[2]);
    env.insert("x2", inputs[1]);
    env.insert("x3", inputs[0]);
    for op in OPT_PROGRAM {
        let (dst, net) = match *op {
            SboxOp::Xor(d, a, r) => (d, b.xor(env[a], env[r])),
            SboxOp::And(d, a, r) => (d, b.and(&[env[a], env[r]])),
            SboxOp::Or(d, a, r) => (d, b.or(&[env[a], env[r]])),
            SboxOp::Not(d, a) => (d, b.not(env[a])),
        };
        env.insert(dst, net);
    }
    // Program y0 is the output MSB = port y3.
    vec![env["y3"], env["y2"], env["y1"], env["y0"]]
}

/// Build the optimized netlist by emitting the straight-line program
/// one cell per operation.
///
/// The program registers are MSB-first; the netlist ports follow the
/// workspace's LSB-first convention (`x0` = bit 0).
pub fn build() -> Netlist {
    let mut b = NetlistBuilder::new("sbox_opt");
    let ports = b.input_bus("x", 4);
    let outs = emit(&mut b, &ports);
    b.output_bus("y", &outs);
    b.finish().expect("OPT program is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use present_cipher::SBOX;

    #[test]
    fn computes_the_sbox() {
        let nl = build();
        for t in 0..16u64 {
            assert_eq!(nl.evaluate_word(t), u64::from(SBOX[t as usize]), "t={t}");
        }
    }

    #[test]
    fn matches_table_one_exactly() {
        let stats = build().stats();
        assert_eq!(stats.family_count("AND"), 2);
        assert_eq!(stats.family_count("OR"), 2);
        assert_eq!(stats.family_count("XOR"), 9);
        assert_eq!(stats.family_count("INV"), 1);
        assert_eq!(stats.total_gates, 14);
    }

    #[test]
    fn xor_heavy_path_is_slower_than_lut_despite_equal_depth() {
        let opt = build().stats();
        let lut = crate::lut::build().stats();
        // Paper: both have comparable gate depth but OPT's XOR-rich path
        // has the longer propagation time.
        assert!(
            opt.delay_ps > lut.delay_ps,
            "{} !> {}",
            opt.delay_ps,
            lut.delay_ps
        );
    }
}
