//! Gate-level masking via ISW (Ishai–Sahai–Wagner) random-sharing gadgets.
//!
//! The construction starts from the OPT straight-line program and replaces
//! every gate by its 2-share gadget (paper §IV-B):
//!
//! * XOR — share-wise (`d_i = a_i ⊕ b_i`);
//! * NOT — invert share 0 only;
//! * AND — the 1-random-bit ISW gadget
//!   `y₀ = ((a₁∧b₁) ⊕ R) ⊕ (a₀∧b₀)`,
//!   `y₁ = ((a₀∧b₁) ⊕ R) ⊕ (a₁∧b₀)`;
//! * OR — De Morgan over the AND gadget (`a ∨ b = ¬(¬a ∧ ¬b)`), the
//!   inversions applied to share 0.
//!
//! The gadget equations fix an evaluation order; in hardware nothing
//! enforces it, and the resulting early-evaluation races are precisely the
//! residual first-order leakage the paper attributes to ISW ([26]).

use std::collections::HashMap;

use sbox_netlist::{NetId, Netlist, NetlistBuilder};

use crate::program::{SboxOp, OPT_PROGRAM};

/// Build the ISW netlist
/// (`xa0..3` share 0, `xb0..3` share 1, `r0..3` gadget randomness →
/// `ya0..3`, `yb0..3`).
pub fn build() -> Netlist {
    let mut b = NetlistBuilder::new("sbox_isw");
    let xa = b.input_bus("xa", 4);
    let xb = b.input_bus("xb", 4);
    let r = b.input_bus("r", 4);
    let mut fresh = r.into_iter();

    let mut env: HashMap<&'static str, (NetId, NetId)> = HashMap::new();
    // Program x0 is the nibble's MSB = port index 3.
    for (prog, port) in [("x0", 3usize), ("x1", 2), ("x2", 1), ("x3", 0)] {
        env.insert(prog, (xa[port], xb[port]));
    }

    for op in OPT_PROGRAM {
        let (dst, shares) = match *op {
            SboxOp::Xor(d, a, c) => {
                let (a0, a1) = env[a];
                let (c0, c1) = env[c];
                (d, (b.xor(a0, c0), b.xor(a1, c1)))
            }
            SboxOp::Not(d, a) => {
                let (a0, a1) = env[a];
                (d, (b.not(a0), a1))
            }
            SboxOp::And(d, a, c) => {
                let rand = fresh.next().expect("one R per non-linear gadget");
                (d, and_gadget(&mut b, env[a], env[c], rand))
            }
            SboxOp::Or(d, a, c) => {
                let rand = fresh.next().expect("one R per non-linear gadget");
                let (a0, a1) = env[a];
                let (c0, c1) = env[c];
                let na = (b.not(a0), a1);
                let nc = (b.not(c0), c1);
                let (y0, y1) = and_gadget(&mut b, na, nc, rand);
                (d, (b.not(y0), y1))
            }
        };
        env.insert(dst, shares);
    }

    // Program y0 is the output MSB = port index 3.
    let order = ["y3", "y2", "y1", "y0"];
    let ya: Vec<NetId> = order.iter().map(|k| env[*k].0).collect();
    let yb: Vec<NetId> = order.iter().map(|k| env[*k].1).collect();
    b.output_bus("ya", &ya);
    b.output_bus("yb", &yb);
    b.finish().expect("ISW structure is valid")
}

/// The 2-share ISW AND gadget with one fresh random bit.
fn and_gadget(
    b: &mut NetlistBuilder,
    (a0, a1): (NetId, NetId),
    (c0, c1): (NetId, NetId),
    r: NetId,
) -> (NetId, NetId) {
    use sbox_netlist::CellType::And2;
    // y0 = ((a1 ∧ c1) ⊕ R) ⊕ (a0 ∧ c0)
    let p11 = b.gate(And2, &[a1, c1]);
    let t0 = b.xor(p11, r);
    let p00 = b.gate(And2, &[a0, c0]);
    let y0 = b.xor(t0, p00);
    // y1 = ((a0 ∧ c1) ⊕ R) ⊕ (a1 ∧ c0)
    let p01 = b.gate(And2, &[a0, c1]);
    let t1 = b.xor(p01, r);
    let p10 = b.gate(And2, &[a1, c0]);
    let y1 = b.xor(t1, p10);
    (y0, y1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use present_cipher::SBOX;

    /// Evaluate the ISW netlist and return the unmasked output nibble.
    fn unmasked(nl: &Netlist, t: u8, mask: u8, rand: u8) -> u8 {
        let xa = t ^ mask;
        let word = u64::from(xa) | (u64::from(mask) << 4) | (u64::from(rand) << 8);
        let out = nl.evaluate_word(word);
        ((out & 0xF) ^ (out >> 4)) as u8
    }

    #[test]
    fn unmasked_output_is_the_sbox_for_every_mask_and_randomness() {
        let nl = build();
        for t in 0..16u8 {
            for mask in 0..16u8 {
                for rand in [0u8, 5, 10, 15] {
                    assert_eq!(
                        unmasked(&nl, t, mask, rand),
                        SBOX[usize::from(t)],
                        "t={t} m={mask} r={rand}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_table_one_exactly() {
        let stats = build().stats();
        // Paper: 16 AND, 34 XOR, 7 INV, 57 gates, 4 random bits.
        assert_eq!(stats.family_count("AND"), 16);
        assert_eq!(stats.family_count("XOR"), 34);
        assert_eq!(stats.family_count("INV"), 7);
        assert_eq!(stats.total_gates, 57);
    }

    #[test]
    fn each_share_alone_is_mask_dependent() {
        // Share 0 of the output must vary with the mask for a fixed t —
        // otherwise it would be unmasked.
        let nl = build();
        let t = 0x9;
        let mut seen = std::collections::HashSet::new();
        for mask in 0..16u8 {
            let xa = t ^ mask;
            let word = u64::from(xa) | (u64::from(mask) << 4);
            seen.insert(nl.evaluate_word(word) & 0xF);
        }
        assert!(seen.len() > 1, "share 0 leaked the unmasked output");
    }
}
