//! ROM-style RSM: NOR/NAND/INV-only one-hot read-only memory with a
//! synchronized datapath.
//!
//! Following the paper's description (§IV-B, after [24]): the design is
//! built exclusively from NOR/NAND/INV cells; every address bit passes
//! through a long inverter *synchronization chain* so all word-line inputs
//! arrive nearly simultaneously regardless of which input toggled
//! ("the datapath is synchronized for any input configuration"), and the
//! storage plane is one-hot — only the selected word line and the bit lines
//! it drives are active. The price is a very deep netlist (Table I lists a
//! 120-gate critical path), which stretches switching activity across many
//! sample points.

use sbox_netlist::{CellType, NetId, Netlist, NetlistBuilder};

use crate::rsm::rsm_output;

/// Length of the per-input inverter synchronization chain (even, so
/// polarity is preserved). 104 stages + decode + bit lines ≈ the paper's
/// 120-gate depth.
pub const SYNC_CHAIN_LENGTH: usize = 104;

/// Build the RSM-ROM netlist (`a0..3`, `mi0..3` → `y0..3`).
pub fn build() -> Netlist {
    build_with_chain(SYNC_CHAIN_LENGTH)
}

/// Build with an explicit synchronization-chain length (ablation hook).
///
/// # Panics
///
/// Panics if `chain` is odd (the chain must preserve polarity).
pub fn build_with_chain(chain: usize) -> Netlist {
    assert!(chain.is_multiple_of(2), "chain must preserve polarity");
    let mut b = NetlistBuilder::new("sbox_rsm_rom");
    let a = b.input_bus("a", 4);
    let mi = b.input_bus("mi", 4);
    let addr: Vec<NetId> = a.into_iter().chain(mi).collect();

    // Synchronization chains on every address bit.
    let delayed: Vec<NetId> = addr
        .iter()
        .map(|&n| {
            let mut x = n;
            for _ in 0..chain {
                x = b.not(x);
            }
            x
        })
        .collect();
    let complements: Vec<NetId> = delayed.iter().map(|&n| b.not(n)).collect();

    // Word lines, active low: w̄_v = NAND2(NOR4(low nibble lits),
    // NOR4(high nibble lits)) where each literal is 0 iff its address bit
    // matches v.
    let word_bar: Vec<NetId> = (0..256usize)
        .map(|v| {
            let lit = |j: usize| {
                if (v >> j) & 1 == 1 {
                    complements[j]
                } else {
                    delayed[j]
                }
            };
            let lo = b.gate(CellType::Nor4, &[lit(0), lit(1), lit(2), lit(3)]);
            let hi = b.gate(CellType::Nor4, &[lit(4), lit(5), lit(6), lit(7)]);
            b.gate(CellType::Nand2, &[lo, hi])
        })
        .collect();

    // Bit lines: y_bit = ⋁_{v ∈ Sel} w_v = ¬⋀ w̄_v, built from NAND/INV.
    let y: Vec<NetId> = (0..4usize)
        .map(|bit| {
            let selected: Vec<NetId> = (0..256usize)
                .filter(|&v| (rsm_output((v & 0xF) as u8, (v >> 4) as u8) >> bit) & 1 == 1)
                .map(|v| word_bar[v])
                .collect();
            let and_all = nand_inv_and_tree(&mut b, &selected);
            b.not(and_all)
        })
        .collect();
    b.output_bus("y", &y);
    b.finish().expect("RSM-ROM structure is valid")
}

/// AND-reduce `terms` using only NAND4/NAND3/NAND2 and INV cells.
fn nand_inv_and_tree(b: &mut NetlistBuilder, terms: &[NetId]) -> NetId {
    assert!(!terms.is_empty());
    let mut layer = terms.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(4));
        let mut rest = layer.as_slice();
        while !rest.is_empty() {
            let take = match rest.len() {
                5 => 3,
                1..=4 => rest.len(),
                _ => 4,
            };
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            let nand = match chunk.len() {
                1 => {
                    next.push(chunk[0]);
                    continue;
                }
                2 => b.gate(CellType::Nand2, chunk),
                3 => b.gate(CellType::Nand3, chunk),
                4 => b.gate(CellType::Nand4, chunk),
                _ => unreachable!(),
            };
            next.push(b.not(nand));
        }
        layer = next;
    }
    layer[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use present_cipher::SBOX;

    #[test]
    fn masked_relation_holds_exhaustively() {
        let nl = build_with_chain(4); // short chain: same logic, fast test
        for word in 0..256u64 {
            let a = (word & 0xF) as u8;
            let mi = ((word >> 4) & 0xF) as u8;
            let y = nl.evaluate_word(word) as u8;
            assert_eq!(y ^ ((mi + 1) % 16), SBOX[usize::from(a ^ mi)]);
        }
    }

    #[test]
    fn full_depth_variant_matches_short_variant_functionally() {
        let deep = build();
        let shallow = build_with_chain(2);
        for word in [0u64, 0x3C, 0xA5, 0xFF, 0x7E] {
            assert_eq!(deep.evaluate_word(word), shallow.evaluate_word(word));
        }
    }

    #[test]
    fn uses_only_inverting_cells() {
        let stats = build().stats();
        assert_eq!(stats.family_count("AND"), 0);
        assert_eq!(stats.family_count("OR"), 0);
        assert_eq!(stats.family_count("XOR"), 0);
        assert!(stats.family_count("NOR") >= 500, "{stats}");
        assert!(stats.family_count("NAND") > 0);
        assert!(stats.family_count("INV") >= 500, "{stats}");
    }

    #[test]
    fn has_the_deep_synchronized_path_of_table_one() {
        let stats = build().stats();
        assert!(
            (100..=140).contains(&stats.delay_gates),
            "depth {}",
            stats.delay_gates
        );
        // By far the deepest implementation (paper: 120 vs ≤17 elsewhere).
        let rsm = crate::rsm::build().stats();
        assert!(stats.delay_gates > 5 * rsm.delay_gates);
    }
}
