//! The seven PRESENT S-box hardware implementations compared by the paper.
//!
//! Two unprotected and five masking-protected gate-level netlists
//! (paper §IV):
//!
//! | [`Scheme`] | Style | Random bits |
//! |---|---|---|
//! | [`Scheme::Lut`] | two-level AND/OR lookup logic (baseline) | 0 |
//! | [`Scheme::Opt`] | SAT-optimized 14-gate circuit, minimal non-linear gates | 0 |
//! | [`Scheme::Glut`] | global masked lookup `Y = S(A⊕MI)⊕MO` | 8 |
//! | [`Scheme::Rsm`] | rotating S-box masking, `MO = (MI+1) mod 16` | 4 |
//! | [`Scheme::RsmRom`] | ROM-style RSM: NOR/NAND/INV one-hot, synchronized datapath | 4 |
//! | [`Scheme::Isw`] | Ishai–Sahai–Wagner gadgets over the OPT netlist | 4 |
//! | [`Scheme::Ti`] | 4-share threshold implementation (non-complete, degree 3) | 12 |
//!
//! Every implementation comes with its [`InputEncoding`], which maps an
//! unmasked class value `t ∈ F₂⁴` and fresh mask randomness onto the
//! netlist's primary inputs, following the paper's trace protocol.
//!
//! # Example
//!
//! ```
//! use sbox_circuits::{Scheme, SboxCircuit};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let circuit = SboxCircuit::build(Scheme::Isw);
//! let mut rng = SmallRng::seed_from_u64(1);
//! let inputs = circuit.encoding().encode(0x6, &mut rng);
//! let outputs = circuit.netlist().evaluate(&inputs);
//! let unmasked = circuit.encoding().unmask_output(&inputs, &outputs);
//! assert_eq!(unmasked, present_cipher::sbox(0x6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anf;
mod encoding;
pub mod exhaustive;
mod glut;
mod isw;
mod lut;
mod opt;
pub mod probing;
pub mod program;
pub mod round1;
mod rsm;
mod rsmrom;
mod ti;

use sbox_netlist::Netlist;

pub use encoding::{InputEncoding, InputRole};

/// The seven implementation styles of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scheme {
    /// Unprotected two-level lookup logic.
    Lut,
    /// Unprotected SAT-optimized circuit (fewest non-linear gates).
    Opt,
    /// Global lookup-table masking, independent input/output masks.
    Glut,
    /// Rotating S-box masking (low-entropy GLUT).
    Rsm,
    /// ROM-style RSM built from NOR/NAND/INV with a synchronized datapath.
    RsmRom,
    /// Gate-level masking via ISW random-sharing gadgets.
    Isw,
    /// Threshold implementation with 4 shares.
    Ti,
}

impl Scheme {
    /// All schemes, in the paper's Table I column order.
    pub const ALL: [Scheme; 7] = [
        Scheme::Lut,
        Scheme::Opt,
        Scheme::Glut,
        Scheme::Rsm,
        Scheme::RsmRom,
        Scheme::Isw,
        Scheme::Ti,
    ];

    /// The label used in the paper's tables and figures.
    pub const fn label(self) -> &'static str {
        match self {
            Scheme::Lut => "LUT",
            Scheme::Opt => "LUT-OPT",
            Scheme::Glut => "GLUT",
            Scheme::Rsm => "RSM",
            Scheme::RsmRom => "RSM-ROM",
            Scheme::Isw => "ISW",
            Scheme::Ti => "TI",
        }
    }

    /// Whether the scheme carries a masking countermeasure.
    pub const fn is_protected(self) -> bool {
        !matches!(self, Scheme::Lut | Scheme::Opt)
    }

    /// Datapath random bits consumed per evaluation (Table I convention:
    /// masks and gadget refresh bits entering the netlist as inputs; the
    /// initial sharing of the plaintext is part of the stimulus protocol).
    pub const fn random_bits(self) -> usize {
        match self {
            Scheme::Lut | Scheme::Opt => 0,
            Scheme::Glut => 8,
            Scheme::Rsm | Scheme::RsmRom | Scheme::Isw => 4,
            Scheme::Ti => 12,
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A built S-box implementation: the netlist plus its input encoding.
#[derive(Debug, Clone)]
pub struct SboxCircuit {
    scheme: Scheme,
    netlist: Netlist,
    encoding: InputEncoding,
}

impl SboxCircuit {
    /// Generate the netlist for a scheme.
    ///
    /// Construction is deterministic; the result is functionally verified
    /// by this crate's test suite.
    pub fn build(scheme: Scheme) -> Self {
        let netlist = match scheme {
            Scheme::Lut => lut::build(),
            Scheme::Opt => opt::build(),
            Scheme::Glut => glut::build(),
            Scheme::Rsm => rsm::build(),
            Scheme::RsmRom => rsmrom::build(),
            Scheme::Isw => isw::build(),
            Scheme::Ti => ti::build(),
        };
        Self {
            scheme,
            netlist,
            encoding: InputEncoding::for_scheme(scheme),
        }
    }

    /// Build every scheme, in Table I order.
    pub fn build_all() -> Vec<Self> {
        Scheme::ALL.iter().map(|&s| Self::build(s)).collect()
    }

    /// Wrap a transformed variant of a scheme's netlist (e.g. after
    /// [`sbox_netlist::transform::balance_delays`]) with the scheme's
    /// standard encoding.
    ///
    /// # Panics
    ///
    /// Panics if the netlist's port counts do not match the scheme's
    /// encoding.
    pub fn from_parts(scheme: Scheme, netlist: Netlist) -> Self {
        let encoding = InputEncoding::for_scheme(scheme);
        assert_eq!(netlist.num_inputs(), encoding.num_inputs(), "input ports");
        assert_eq!(
            netlist.num_outputs(),
            encoding.num_outputs(),
            "output ports"
        );
        Self {
            scheme,
            netlist,
            encoding,
        }
    }

    /// Wrap an *instrumented* variant of a scheme's netlist: identical
    /// primary inputs, the scheme's standard outputs first, plus any
    /// number of appended observation taps (e.g. from
    /// [`sbox_netlist::transform::observe_product`]). Used by the
    /// `sca-verify` mutation tests, which graft deliberate masking
    /// defects onto a netlist and expect the analyzer to name them.
    ///
    /// # Panics
    ///
    /// Panics if the input ports differ from the scheme's encoding or
    /// the standard outputs are missing.
    pub fn from_instrumented(scheme: Scheme, netlist: Netlist) -> Self {
        let encoding = InputEncoding::for_scheme(scheme);
        assert_eq!(netlist.num_inputs(), encoding.num_inputs(), "input ports");
        assert!(
            netlist.num_outputs() >= encoding.num_outputs(),
            "standard output ports missing"
        );
        Self {
            scheme,
            netlist,
            encoding,
        }
    }

    /// The scheme this circuit implements.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The gate-level netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The stimulus encoding for the paper's protocol.
    pub fn encoding(&self) -> &InputEncoding {
        &self.encoding
    }
}
