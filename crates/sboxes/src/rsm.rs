//! Rotating S-box Masking: the low-entropy GLUT with `MO = (MI + 1) mod 16`.
//!
//! Because the output mask is *derived* from the input mask, the whole
//! masked table collapses to one 8-input function
//! `RSM(A, MI) = S(A ⊕ MI) ⊕ (MI + 1 mod 16)`, synthesized here — like
//! GLUT — as flat two-level logic over the masked inputs (no unmasked
//! intermediate nets). Halving the address width makes it far more compact
//! than GLUT, as the paper's Table I reports (228 vs 772 gates).

use present_cipher::SBOX;
use sbox_netlist::synth::TruthTable;
use sbox_netlist::{Netlist, NetlistBuilder};

/// The RSM output for unpacked nibbles (reference model).
pub fn rsm_output(a: u8, mi: u8) -> u8 {
    SBOX[usize::from((a ^ mi) & 0xF)] ^ ((mi + 1) % 16)
}

/// Build the RSM netlist (`a0..3`, `mi0..3` → `y0..3`).
pub fn build() -> Netlist {
    let tt = TruthTable::from_fn(8, 4, |w| {
        u64::from(rsm_output((w & 0xF) as u8, ((w >> 4) & 0xF) as u8))
    });
    let mut b = NetlistBuilder::new("sbox_rsm");
    let a = b.input_bus("a", 4);
    let mi = b.input_bus("mi", 4);
    let inputs: Vec<_> = a.into_iter().chain(mi).collect();
    let y = tt.synthesize_sop(&mut b, &inputs);
    b.output_bus("y", &y);
    b.finish().expect("RSM synthesis is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_relation_holds_exhaustively() {
        let nl = build();
        for word in 0..256u64 {
            let a = (word & 0xF) as u8;
            let mi = ((word >> 4) & 0xF) as u8;
            let y = nl.evaluate_word(word) as u8;
            assert_eq!(y, rsm_output(a, mi), "a={a:X} mi={mi:X}");
            assert_eq!(y ^ ((mi + 1) % 16), SBOX[usize::from(a ^ mi)]);
        }
    }

    #[test]
    fn is_more_compact_than_glut() {
        let rsm = build().stats();
        let glut = crate::glut::build().stats();
        assert!(rsm.total_gates < glut.total_gates / 2, "{rsm}\n{glut}");
        assert!(rsm.equivalent_gates < glut.equivalent_gates / 2.0);
    }

    #[test]
    fn uses_no_xor_cells() {
        let stats = build().stats();
        assert_eq!(stats.family_count("XOR"), 0);
        assert_eq!(stats.family_count("XNOR"), 0);
        assert!(stats.family_count("AND") > 0);
    }

    #[test]
    fn relates_to_glut_by_mask_rotation() {
        // RSM(A, MI) = GLUT(A, MI, MI+1): cross-check against the GLUT
        // netlist.
        let rsm = build();
        let glut = crate::glut::build();
        for word in 0..256u64 {
            let mi = (word >> 4) & 0xF;
            let mo = (mi + 1) % 16;
            let glut_word = word | (mo << 8);
            assert_eq!(rsm.evaluate_word(word), glut.evaluate_word(glut_word));
        }
    }

    #[test]
    fn is_table_one_scale() {
        // Paper: 134 AND, 74 OR, 20 INV → 228 gates, depth 11. A generic
        // two-level cover of the same 8-input table lands within ~2.5×
        // (the authors' commercial flow shares more logic).
        let stats = build().stats();
        assert!(
            (100..=700).contains(&stats.total_gates),
            "total {}",
            stats.total_gates
        );
    }
}
