//! Stimulus encodings: class value + mask randomness → primary inputs.

use rand::Rng;

use crate::Scheme;

/// The security role one primary input plays in a scheme's masking
/// contract.
///
/// This is the ground truth a share-domain dataflow analysis (the
/// `sca-verify` crate) starts from: which wires carry shares of which
/// secret bit, and which carry *fresh* randomness that never reaches the
/// unmasked value on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputRole {
    /// Share `share` of secret nibble bit `bit`: the XOR of all shares of
    /// `bit` equals the unmasked bit. Unprotected schemes expose the bit
    /// as its own single share.
    Share {
        /// Which nibble bit (0..4) this input helps encode.
        bit: u8,
        /// Which share (0..[`InputEncoding::shares_per_bit`]) it is.
        share: u8,
    },
    /// Fresh uniform randomness that is *not* a share of any input bit:
    /// GLUT's output mask `MO`, ISW's gadget refresh `r`.
    Fresh,
}

/// How a scheme's primary inputs encode an unmasked S-box input `t`.
///
/// The acquisition protocol (paper Fig. 5) drives every circuit with a
/// *random encoding* of class 0 (initial value) followed by a random
/// encoding of the class under measurement — [`InputEncoding::encode`]
/// produces exactly those assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputEncoding {
    scheme: Scheme,
}

impl InputEncoding {
    /// The encoding for a scheme.
    pub fn for_scheme(scheme: Scheme) -> Self {
        Self { scheme }
    }

    /// The scheme this encoding belongs to.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Number of primary inputs the netlist expects.
    pub fn num_inputs(&self) -> usize {
        match self.scheme {
            Scheme::Lut | Scheme::Opt => 4,
            Scheme::Rsm | Scheme::RsmRom => 8,
            Scheme::Glut | Scheme::Isw => 12,
            Scheme::Ti => 16,
        }
    }

    /// Number of masked output bits the netlist produces.
    pub fn num_outputs(&self) -> usize {
        match self.scheme {
            Scheme::Lut | Scheme::Opt | Scheme::Glut | Scheme::Rsm | Scheme::RsmRom => 4,
            Scheme::Isw => 8,
            Scheme::Ti => 16,
        }
    }

    /// How many shares jointly encode each secret nibble bit.
    ///
    /// Unprotected schemes carry the bit directly (one share); the Boolean
    /// masking schemes split it in two (`A = t ^ MI` plus `MI`); TI uses a
    /// four-share non-complete sharing.
    pub fn shares_per_bit(&self) -> u8 {
        match self.scheme {
            Scheme::Lut | Scheme::Opt => 1,
            Scheme::Glut | Scheme::Rsm | Scheme::RsmRom | Scheme::Isw => 2,
            Scheme::Ti => 4,
        }
    }

    /// The [`InputRole`] of every primary input, in netlist port order
    /// (matching [`sbox_netlist::Netlist::inputs`] of the generated
    /// circuit).
    pub fn input_roles(&self) -> Vec<InputRole> {
        let share_nibble = |share: u8| (0..4).map(move |bit| InputRole::Share { bit, share });
        match self.scheme {
            // x0..x3: the bit is its own (only) share.
            Scheme::Lut | Scheme::Opt => share_nibble(0).collect(),
            // A = t ^ MI, MI, then the fresh output mask MO.
            Scheme::Glut => share_nibble(0)
                .chain(share_nibble(1))
                .chain(std::iter::repeat_n(InputRole::Fresh, 4))
                .collect(),
            // A = t ^ MI, MI. The output mask (MI+1)%16 is *derived*, not
            // fresh — there is no third field.
            Scheme::Rsm | Scheme::RsmRom => share_nibble(0).chain(share_nibble(1)).collect(),
            // xa = t ^ m, m, then the per-gadget refresh masks r0..r3.
            Scheme::Isw => share_nibble(0)
                .chain(share_nibble(1))
                .chain(std::iter::repeat_n(InputRole::Fresh, 4))
                .collect(),
            // Bit-major x{bit}s{0..3}; no fresh randomness at all.
            Scheme::Ti => (0..4)
                .flat_map(|bit| (0..4).map(move |share| InputRole::Share { bit, share }))
                .collect(),
        }
    }

    /// Widths (in bits) of the scheme's independent mask subfields, in the
    /// order they pack into the mask word of [`InputEncoding::encode_masked`].
    /// A stratified sampler balances each subfield independently.
    pub fn mask_fields(&self) -> &'static [usize] {
        match self.scheme {
            Scheme::Lut | Scheme::Opt => &[],
            Scheme::Glut => &[4, 4],              // MI, MO
            Scheme::Rsm | Scheme::RsmRom => &[4], // MI
            Scheme::Isw => &[4, 4],               // sharing mask M, gadget R
            Scheme::Ti => &[3, 3, 3, 3],          // (s1,s2,s3) per input bit
        }
    }

    /// Total mask-word width in bits.
    pub fn mask_bits(&self) -> usize {
        self.mask_fields().iter().sum()
    }

    /// Encode the unmasked value `t` onto the primary inputs using an
    /// explicit mask word (subfields packed LSB-first in
    /// [`InputEncoding::mask_fields`] order). Buses are LSB-first, in the
    /// port order the generators declare.
    ///
    /// # Panics
    ///
    /// Panics if `t >= 16` or the mask word exceeds
    /// [`InputEncoding::mask_bits`].
    pub fn encode_masked(&self, t: u8, mask_word: u32) -> Vec<bool> {
        assert!(t < 16, "PRESENT S-box input is a nibble");
        assert!(
            self.mask_bits() == 32 || mask_word < (1 << self.mask_bits()),
            "mask word out of range"
        );
        match self.scheme {
            Scheme::Lut | Scheme::Opt => nibble_bits(t).to_vec(),
            Scheme::Glut => {
                let mi = (mask_word & 0xF) as u8;
                let mo = ((mask_word >> 4) & 0xF) as u8;
                let a = t ^ mi;
                [nibble_bits(a), nibble_bits(mi), nibble_bits(mo)].concat()
            }
            Scheme::Rsm | Scheme::RsmRom => {
                let mi = (mask_word & 0xF) as u8;
                let a = t ^ mi;
                [nibble_bits(a), nibble_bits(mi)].concat()
            }
            Scheme::Isw => {
                let m = (mask_word & 0xF) as u8;
                let r = ((mask_word >> 4) & 0xF) as u8;
                let xa = t ^ m;
                [nibble_bits(xa), nibble_bits(m), nibble_bits(r)].concat()
            }
            Scheme::Ti => {
                // Bit-major: x{bit}s{0..3}; share 0 closes the XOR.
                let mut v = Vec::with_capacity(16);
                for bit in 0..4u8 {
                    let x = (t >> bit) & 1 == 1;
                    let field = (mask_word >> (3 * bit)) & 0b111;
                    let s1 = field & 1 == 1;
                    let s2 = (field >> 1) & 1 == 1;
                    let s3 = (field >> 2) & 1 == 1;
                    let s0 = x ^ s1 ^ s2 ^ s3;
                    v.extend_from_slice(&[s0, s1, s2, s3]);
                }
                v
            }
        }
    }

    /// Draw fresh uniform mask randomness and encode `t` (convenience
    /// wrapper over [`InputEncoding::encode_masked`]).
    ///
    /// # Panics
    ///
    /// Panics if `t >= 16`.
    pub fn encode<R: Rng + ?Sized>(&self, t: u8, rng: &mut R) -> Vec<bool> {
        let bits = self.mask_bits();
        let word = if bits == 0 {
            0
        } else {
            rng.gen_range(0..(1u32 << bits))
        };
        self.encode_masked(t, word)
    }

    /// For each unmasked S-box output bit, the output-port indices that
    /// jointly encode it (its output shares), in
    /// [`sbox_netlist::Netlist::outputs`] order.
    ///
    /// The masked-table schemes expose each output bit as one masked
    /// port; ISW as two shares (`y0_b`, `y1_b`); TI as four shares
    /// (`y{b}s{0..3}`, bit-major).
    pub fn output_share_groups(&self) -> Vec<Vec<usize>> {
        match self.scheme {
            Scheme::Lut | Scheme::Opt | Scheme::Glut | Scheme::Rsm | Scheme::RsmRom => {
                (0..4).map(|b| vec![b]).collect()
            }
            Scheme::Isw => (0..4).map(|b| vec![b, 4 + b]).collect(),
            Scheme::Ti => (0..4).map(|b| (4 * b..4 * b + 4).collect()).collect(),
        }
    }

    /// Recover the *unmasked* S-box output from a primary-input assignment
    /// and the resulting outputs (used for functional verification; an
    /// attacker cannot do this — the masks are secret).
    ///
    /// # Panics
    ///
    /// Panics if the slices have the wrong lengths.
    pub fn unmask_output(&self, inputs: &[bool], outputs: &[bool]) -> u8 {
        assert_eq!(inputs.len(), self.num_inputs());
        assert_eq!(outputs.len(), self.num_outputs());
        match self.scheme {
            Scheme::Lut | Scheme::Opt => pack_nibble(&outputs[..4]),
            Scheme::Glut => {
                let mo = pack_nibble(&inputs[8..12]);
                pack_nibble(&outputs[..4]) ^ mo
            }
            Scheme::Rsm | Scheme::RsmRom => {
                let mi = pack_nibble(&inputs[4..8]);
                pack_nibble(&outputs[..4]) ^ ((mi + 1) % 16)
            }
            Scheme::Isw => pack_nibble(&outputs[..4]) ^ pack_nibble(&outputs[4..8]),
            Scheme::Ti => {
                let mut v = 0u8;
                for bit in 0..4 {
                    let shares = &outputs[4 * bit..4 * bit + 4];
                    let b = shares.iter().fold(false, |a, &s| a ^ s);
                    v |= u8::from(b) << bit;
                }
                v
            }
        }
    }

    /// Recover the unmasked S-box *input* encoded by a primary-input
    /// assignment (the class label of a stimulus).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong length.
    pub fn unmask_input(&self, inputs: &[bool]) -> u8 {
        assert_eq!(inputs.len(), self.num_inputs());
        match self.scheme {
            Scheme::Lut | Scheme::Opt => pack_nibble(&inputs[..4]),
            Scheme::Glut | Scheme::Rsm | Scheme::RsmRom => {
                pack_nibble(&inputs[..4]) ^ pack_nibble(&inputs[4..8])
            }
            Scheme::Isw => pack_nibble(&inputs[..4]) ^ pack_nibble(&inputs[4..8]),
            Scheme::Ti => {
                let mut v = 0u8;
                for bit in 0..4 {
                    let shares = &inputs[4 * bit..4 * bit + 4];
                    let b = shares.iter().fold(false, |a, &s| a ^ s);
                    v |= u8::from(b) << bit;
                }
                v
            }
        }
    }
}

fn nibble_bits(v: u8) -> [bool; 4] {
    std::array::from_fn(|i| (v >> i) & 1 == 1)
}

fn pack_nibble(bits: &[bool]) -> u8 {
    bits.iter()
        .enumerate()
        .fold(0u8, |acc, (i, &b)| acc | (u8::from(b) << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn encode_round_trips_the_class_label() {
        let mut rng = SmallRng::seed_from_u64(9);
        for scheme in Scheme::ALL {
            let enc = InputEncoding::for_scheme(scheme);
            for t in 0..16u8 {
                for _ in 0..8 {
                    let v = enc.encode(t, &mut rng);
                    assert_eq!(v.len(), enc.num_inputs(), "{scheme}");
                    assert_eq!(enc.unmask_input(&v), t, "{scheme} t={t}");
                }
            }
        }
    }

    #[test]
    fn masked_encodings_are_randomized() {
        let mut rng = SmallRng::seed_from_u64(10);
        for scheme in Scheme::ALL.iter().filter(|s| s.is_protected()) {
            let enc = InputEncoding::for_scheme(*scheme);
            let all_same = (0..16)
                .map(|_| enc.encode(5, &mut rng))
                .collect::<std::collections::HashSet<_>>()
                .len()
                == 1;
            assert!(!all_same, "{scheme} encodings never vary");
        }
    }

    #[test]
    fn unprotected_encoding_is_the_identity() {
        let mut rng = SmallRng::seed_from_u64(11);
        let enc = InputEncoding::for_scheme(Scheme::Lut);
        assert_eq!(enc.encode(0b1010, &mut rng), vec![false, true, false, true]);
    }

    #[test]
    fn input_roles_cover_every_input() {
        for scheme in Scheme::ALL {
            let enc = InputEncoding::for_scheme(scheme);
            let roles = enc.input_roles();
            assert_eq!(roles.len(), enc.num_inputs(), "{scheme}");
            for bit in 0..4u8 {
                let shares: Vec<u8> = roles
                    .iter()
                    .filter_map(|r| match r {
                        InputRole::Share { bit: b, share } if *b == bit => Some(*share),
                        _ => None,
                    })
                    .collect();
                assert_eq!(
                    shares.len(),
                    usize::from(enc.shares_per_bit()),
                    "{scheme} bit {bit}"
                );
                let mut sorted = shares.clone();
                sorted.sort_unstable();
                assert_eq!(
                    sorted,
                    (0..enc.shares_per_bit()).collect::<Vec<_>>(),
                    "{scheme} bit {bit}: shares must be 0..n, once each"
                );
            }
        }
    }

    #[test]
    fn shares_xor_to_the_secret_bit() {
        // The roles are only meaningful if XOR-ing the inputs labelled as
        // shares of bit `b` recovers bit `b` of the class, for every mask.
        for scheme in Scheme::ALL {
            let enc = InputEncoding::for_scheme(scheme);
            let roles = enc.input_roles();
            let mask_words: Vec<u32> = if enc.mask_bits() == 0 {
                vec![0]
            } else {
                (0..1u32 << enc.mask_bits()).step_by(3).collect()
            };
            for t in 0..16u8 {
                for &mask in &mask_words {
                    let v = enc.encode_masked(t, mask);
                    for bit in 0..4u8 {
                        let xor = roles
                            .iter()
                            .zip(&v)
                            .filter(
                                |(r, _)| matches!(r, InputRole::Share { bit: b, .. } if *b == bit),
                            )
                            .fold(false, |acc, (_, &val)| acc ^ val);
                        assert_eq!(
                            xor,
                            (t >> bit) & 1 == 1,
                            "{scheme} t={t} mask={mask} bit={bit}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fresh_inputs_match_table_one_refresh_budget() {
        // GLUT's MO and ISW's gadget masks are the only fresh (non-share)
        // randomness in the seven schemes.
        let fresh = |s: Scheme| {
            InputEncoding::for_scheme(s)
                .input_roles()
                .iter()
                .filter(|r| matches!(r, InputRole::Fresh))
                .count()
        };
        assert_eq!(fresh(Scheme::Glut), 4);
        assert_eq!(fresh(Scheme::Isw), 4);
        for s in [
            Scheme::Lut,
            Scheme::Opt,
            Scheme::Rsm,
            Scheme::RsmRom,
            Scheme::Ti,
        ] {
            assert_eq!(fresh(s), 0, "{s}");
        }
    }

    #[test]
    fn random_bits_match_table_one() {
        assert_eq!(Scheme::Glut.random_bits(), 8);
        assert_eq!(Scheme::Rsm.random_bits(), 4);
        assert_eq!(Scheme::RsmRom.random_bits(), 4);
        assert_eq!(Scheme::Isw.random_bits(), 4);
        assert_eq!(Scheme::Ti.random_bits(), 12);
    }
}
