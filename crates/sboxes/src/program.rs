//! The SAT-optimized 14-gate PRESENT S-box as a straight-line program.
//!
//! The circuit (2 AND, 2 OR, 9 XOR, 1 INV) follows the published
//! gate-optimal decomposition of the PRESENT S-box (Courtois–Hulme–
//! Mourouzis style, the circuit family referenced by the paper's NIST
//! "Circuit Complexity" citation). Keeping it as a named-register program
//! lets both the plain [`crate::Scheme::Opt`] netlist and the
//! [`crate::Scheme::Isw`] gadget transformation interpret the *same*
//! structure, as the paper does ("ISW starts from the OPT netlist").
//!
//! Register naming convention: program variables `x0..x3` and `y0..y3` are
//! **MSB-first** (`x0` is bit 3 of the nibble); the netlist emitters remap
//! to the workspace-wide LSB-first port order.

/// One straight-line operation on named registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SboxOp {
    /// `dst = a ^ b`
    Xor(&'static str, &'static str, &'static str),
    /// `dst = a & b`
    And(&'static str, &'static str, &'static str),
    /// `dst = a | b`
    Or(&'static str, &'static str, &'static str),
    /// `dst = !a`
    Not(&'static str, &'static str),
}

/// The 14-gate program. Inputs `x0..x3` (MSB-first), outputs `y0..y3`
/// (MSB-first). Reassigned temporaries are SSA-renamed (`t2`, `t2b`, …).
pub const OPT_PROGRAM: &[SboxOp] = &[
    SboxOp::Xor("t1", "x2", "x1"),
    SboxOp::And("t2", "x1", "t1"),
    SboxOp::Xor("t3", "x0", "t2"),
    SboxOp::Xor("y3", "x3", "t3"),
    SboxOp::And("t2b", "t1", "t3"),
    SboxOp::Xor("t1b", "t1", "y3"),
    SboxOp::Xor("t2c", "t2b", "x1"),
    SboxOp::Or("t4", "x3", "t2c"),
    SboxOp::Xor("y2", "t1b", "t4"),
    SboxOp::Not("t5", "x3"),
    SboxOp::Xor("t2d", "t2c", "t5"),
    SboxOp::Xor("y0", "y2", "t2d"),
    SboxOp::Or("t2e", "t2d", "t1b"),
    SboxOp::Xor("y1", "t3", "t2e"),
];

/// Evaluate the program in software on one nibble (LSB-first packing, like
/// the rest of the workspace).
///
/// # Panics
///
/// Panics if `t >= 16`.
pub fn evaluate(t: u8) -> u8 {
    assert!(t < 16);
    let mut env = std::collections::HashMap::new();
    // Program x0 is the nibble's MSB.
    for i in 0..4usize {
        env.insert(format!("x{i}"), (t >> (3 - i)) & 1 == 1);
    }
    for op in OPT_PROGRAM {
        let (dst, v) = match *op {
            SboxOp::Xor(d, a, b) => (d, env[a] ^ env[b]),
            SboxOp::And(d, a, b) => (d, env[a] & env[b]),
            SboxOp::Or(d, a, b) => (d, env[a] | env[b]),
            SboxOp::Not(d, a) => (d, !env[a]),
        };
        env.insert(dst.to_string(), v);
    }
    (0..4usize).fold(0u8, |acc, i| {
        acc | (u8::from(env[&format!("y{i}")]) << (3 - i))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use present_cipher::SBOX;

    #[test]
    fn program_computes_the_present_sbox() {
        for t in 0..16u8 {
            assert_eq!(evaluate(t), SBOX[usize::from(t)], "t={t}");
        }
    }

    #[test]
    fn program_has_the_table_one_gate_mix() {
        let mut xor = 0;
        let mut and = 0;
        let mut or = 0;
        let mut not = 0;
        for op in OPT_PROGRAM {
            match op {
                SboxOp::Xor(..) => xor += 1,
                SboxOp::And(..) => and += 1,
                SboxOp::Or(..) => or += 1,
                SboxOp::Not(..) => not += 1,
            }
        }
        assert_eq!((and, or, xor, not), (2, 2, 9, 1));
    }

    #[test]
    fn program_is_single_assignment() {
        let mut defined = std::collections::HashSet::new();
        for op in OPT_PROGRAM {
            let dst = match op {
                SboxOp::Xor(d, ..) | SboxOp::And(d, ..) | SboxOp::Or(d, ..) | SboxOp::Not(d, _) => {
                    d
                }
            };
            assert!(defined.insert(*dst), "register {dst} reassigned");
        }
    }
}
