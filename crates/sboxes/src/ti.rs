//! Threshold Implementation: 4-share direct sharing of the PRESENT S-box.
//!
//! The S-box has algebraic degree 3, so a glitch-robust direct sharing
//! needs `d + 1 = 4` shares (paper §IV-B: "terms of order 3 … hence 4
//! shares are needed"). Every ANF monomial `x_a·x_b·x_c` is expanded over
//! the share decomposition `x = x⁰⊕x¹⊕x²⊕x³` into per-share product terms
//! `x_aⁱ·x_bʲ·x_cᵏ`; each term is assigned to the output share whose index
//! does **not** occur in `{i,j,k}` (smallest such index), which guarantees
//! *non-completeness*: output share `s` never sees share `s` of any input,
//! so no glitch inside its cone can combine all shares of a secret.
//!
//! Unlike ISW, no gate ordering must be preserved, and the whole function
//! is a flat AND/XOR network — large (Table I: ≈1450 gates) but shallow.
//! The constant bits of the ANF (S(0) = 0xC sets output bits 2 and 3)
//! become the two XNOR cells Table I lists.

use std::collections::HashMap;

use sbox_netlist::{CellType, NetId, Netlist, NetlistBuilder};

use crate::anf::present_sbox_anf;

/// Number of shares.
pub const SHARES: usize = 4;

/// Build the TI netlist (inputs `x{bit}s{share}` bit-major, outputs
/// `y{bit}s{share}` bit-major).
pub fn build() -> Netlist {
    let mut b = NetlistBuilder::new("sbox_ti");
    // x[bit][share]
    let x: Vec<Vec<NetId>> = (0..4)
        .map(|bit| {
            (0..SHARES)
                .map(|s| b.input(format!("x{bit}s{s}")))
                .collect()
        })
        .collect();

    let anf = present_sbox_anf();
    // Product-term cache keyed by the sorted (variable, share) list so
    // identical share-products are computed once across all outputs.
    let mut term_cache: HashMap<Vec<(usize, usize)>, NetId> = HashMap::new();

    let mut outputs: Vec<NetId> = Vec::with_capacity(16);
    for (bit, monomials) in anf.iter().enumerate() {
        // terms[s] = nets XORed into output share s; plus a constant-1 flag.
        let mut terms: Vec<Vec<NetId>> = vec![Vec::new(); SHARES];
        let mut constant = [false; SHARES];
        for &m in monomials {
            let vars: Vec<usize> = (0..4).filter(|v| (m >> v) & 1 == 1).collect();
            if vars.is_empty() {
                // Constant-1 monomial: attach to output share 0.
                constant[0] ^= true;
                continue;
            }
            for assignment in share_tuples(vars.len()) {
                let key: Vec<(usize, usize)> = vars
                    .iter()
                    .zip(&assignment)
                    .map(|(&v, &s)| (v, s))
                    .collect();
                let sigma = (0..SHARES)
                    .find(|s| !assignment.contains(s))
                    .expect("4 shares, ≤3 indices: a free share always exists");
                let net = *term_cache.entry(key.clone()).or_insert_with(|| {
                    let nets: Vec<NetId> = key.iter().map(|&(v, s)| x[v][s]).collect();
                    match nets.len() {
                        1 => nets[0],
                        2 => b.gate(CellType::And2, &nets),
                        3 => b.gate(CellType::And3, &nets),
                        _ => unreachable!("degree ≤ 3"),
                    }
                });
                terms[sigma].push(net);
            }
        }
        for s in 0..SHARES {
            // The degenerate-case anchor must respect non-completeness:
            // never share s itself.
            let anchor = x[bit][(s + 1) % SHARES];
            let net = xor_tree_with_constant(&mut b, &terms[s], constant[s], anchor);
            outputs.push(net);
        }
    }

    for (i, &net) in outputs.iter().enumerate() {
        let bit = i / SHARES;
        let s = i % SHARES;
        b.output(format!("y{bit}s{s}"), net);
    }
    b.finish().expect("TI structure is valid")
}

/// All `SHARES^k` index tuples for a degree-`k` monomial.
fn share_tuples(k: usize) -> Vec<Vec<usize>> {
    let mut tuples = vec![Vec::new()];
    for _ in 0..k {
        tuples = tuples
            .into_iter()
            .flat_map(|t| {
                (0..SHARES).map(move |s| {
                    let mut t2 = t.clone();
                    t2.push(s);
                    t2
                })
            })
            .collect();
    }
    tuples
}

/// XOR-reduce `terms`, folding in an optional constant 1 by turning the
/// final XOR2 into an XNOR2. Degenerate cases synthesize constants from
/// `anchor` (`x ⊕ x = 0`, `x ⊙ x = 1`).
fn xor_tree_with_constant(
    b: &mut NetlistBuilder,
    terms: &[NetId],
    constant: bool,
    anchor: NetId,
) -> NetId {
    match (terms.len(), constant) {
        (0, false) => b.xor(anchor, anchor),
        (0, true) => b.xnor(anchor, anchor),
        (1, false) => terms[0],
        (1, true) => {
            let zero = b.xor(anchor, anchor);
            b.xnor(terms[0], zero)
        }
        (_, false) => b.xor_tree(terms),
        (_, true) => {
            let head = b.xor_tree(&terms[..terms.len() - 1]);
            b.xnor(head, terms[terms.len() - 1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use present_cipher::SBOX;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn eval_unmasked(nl: &Netlist, t: u8, rng: &mut SmallRng) -> u8 {
        let mut inputs = Vec::with_capacity(16);
        for bit in 0..4 {
            let xbit = (t >> bit) & 1 == 1;
            let s1 = rng.gen::<bool>();
            let s2 = rng.gen::<bool>();
            let s3 = rng.gen::<bool>();
            inputs.extend_from_slice(&[xbit ^ s1 ^ s2 ^ s3, s1, s2, s3]);
        }
        let out = nl.evaluate(&inputs);
        let mut v = 0u8;
        for bit in 0..4 {
            let b = out[4 * bit..4 * bit + 4].iter().fold(false, |a, &s| a ^ s);
            v |= u8::from(b) << bit;
        }
        v
    }

    #[test]
    fn unmasked_output_is_the_sbox_over_random_sharings() {
        let nl = build();
        let mut rng = SmallRng::seed_from_u64(77);
        for t in 0..16u8 {
            for _ in 0..64 {
                assert_eq!(
                    eval_unmasked(&nl, t, &mut rng),
                    SBOX[usize::from(t)],
                    "t={t}"
                );
            }
        }
    }

    #[test]
    fn non_completeness_holds_structurally() {
        // Walk every output share's input cone: it must never contain
        // share index s of ANY input bit.
        let nl = build();
        for (name, net) in nl.outputs() {
            let share: usize = name[name.len() - 1..].parse().expect("share suffix");
            // Reverse-reachability from the output net to primary inputs.
            let mut stack = vec![*net];
            let mut seen = std::collections::HashSet::new();
            while let Some(n) = stack.pop() {
                if !seen.insert(n) {
                    continue;
                }
                if let Some(driver) = nl.net(n).driver() {
                    stack.extend(nl.gate(driver).inputs().iter().copied());
                } else if let Some(input_name) = nl.net(n).name() {
                    let in_share: usize =
                        input_name[input_name.len() - 1..].parse().expect("suffix");
                    assert_ne!(
                        in_share, share,
                        "output {name} depends on input {input_name}"
                    );
                }
            }
        }
    }

    #[test]
    fn has_table_one_character() {
        let stats = build().stats();
        // Paper: 800 AND, 647 XOR, 2 XNOR, 1450 total, depth 9, no INV.
        // Our term cache shares identical share-products across outputs,
        // so the AND count lands lower (the XOR plane matches closely).
        assert_eq!(stats.family_count("XNOR"), 2, "{stats}");
        assert_eq!(stats.family_count("INV"), 0);
        assert!(stats.family_count("AND") >= 200, "{stats}");
        assert!(stats.family_count("XOR") >= 300, "{stats}");
        assert!(stats.delay_gates <= 12, "depth {}", stats.delay_gates);
        // The largest netlist of the seven by far.
        let isw = crate::isw::build().stats();
        assert!(stats.equivalent_gates > 10.0 * isw.equivalent_gates);
    }

    #[test]
    fn share_tuples_enumerates_all_assignments() {
        assert_eq!(share_tuples(1).len(), 4);
        assert_eq!(share_tuples(2).len(), 16);
        assert_eq!(share_tuples(3).len(), 64);
    }
}
