//! Regression lock: `probing::analyze` was rebased on the shared
//! `exhaustive` sweep engine; this test re-implements the *original*
//! standalone algorithm verbatim and pins the rebased profile bit-identical
//! to it on all seven schemes.

use sbox_circuits::{probing, SboxCircuit, Scheme};

/// The pre-rebase implementation of `probing::analyze`, kept verbatim
/// (same iteration order, same arithmetic expressions, same fold) as the
/// reference the rebased engine must match exactly.
fn analyze_reference(circuit: &SboxCircuit) -> Vec<f64> {
    let encoding = circuit.encoding();
    let mask_bits = encoding.mask_bits();
    assert!(mask_bits <= 16, "mask space too large to enumerate");
    let netlist = circuit.netlist();
    let mask_count = 1u32 << mask_bits;
    let mut ones = vec![[0u32; 16]; netlist.nets().len()];
    for t in 0..16u8 {
        for mask in 0..mask_count {
            let inputs = encoding.encode_masked(t, mask);
            let values = netlist.evaluate_nets(&inputs);
            for (slot, &v) in ones.iter_mut().zip(&values) {
                slot[usize::from(t)] += u32::from(v);
            }
        }
    }
    let denom = f64::from(mask_count);
    ones.iter()
        .map(|per_class| {
            let p0 = f64::from(per_class[0]) / denom;
            per_class
                .iter()
                .map(|&c| (f64::from(c) / denom - p0).abs())
                .fold(0.0, f64::max)
        })
        .collect()
}

#[test]
fn rebased_profile_is_bit_identical_on_all_schemes() {
    for scheme in Scheme::ALL {
        let circuit = SboxCircuit::build(scheme);
        let reference = analyze_reference(&circuit);
        let rebased = probing::analyze(&circuit).value_bias;
        assert_eq!(reference.len(), rebased.len(), "{scheme}");
        for (net, (old, new)) in reference.iter().zip(&rebased).enumerate() {
            assert_eq!(
                old.to_bits(),
                new.to_bits(),
                "{scheme} net {net}: {old:e} vs {new:e}"
            );
        }
    }
}
