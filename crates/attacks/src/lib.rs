//! Streaming key-recovery attacks — the adversary the paper's leakage
//! metrics predict.
//!
//! The paper's introduction frames the whole study around CPA (Brier–
//! Clavier–Olivier): an adversary correlates measured power with a
//! hypothetical leakage model of `S(p ⊕ k̂)` for every key guess `k̂` and
//! keeps the guess with the strongest statistic. This crate implements
//! that adversary as a *streaming* subsystem over the campaign engine's
//! mergeable accumulators:
//!
//! * [`distinguisher`] — pluggable scoring rules: CPA under the
//!   standard [`LeakageModel`]s, difference-of-means DPA, and the
//!   Roche–Tavernier MLPA multi-linear combination;
//! * [`streaming`] — constant-memory per-guess co-moment state
//!   ([`AttackAccumulator`]) with the campaign's deterministic merge
//!   tree ([`AttackStream`]), bit-identical at any worker count and
//!   (in exact mode) to the batch reference;
//! * [`evaluate`] — success rate, guessing entropy, and
//!   measurements-to-disclosure from incremental prefix evaluation;
//! * [`second_order`] / [`template`] — centered-product second-order
//!   CPA and profiled template attacks on materialized trace sets.
//!
//! The batch entry points ([`cpa_attack`], [`dpa_attack`],
//! [`mlpa_attack`]) are thin wrappers that fold the dataset through the
//! same accumulator, so batch and streamed results agree bitwise.
//!
//! # Example
//!
//! ```
//! use sca_attacks::{cpa_attack, LeakageModel};
//!
//! // Synthetic traces that leak HW(S(p ^ 0xB)) at sample 0.
//! let key = 0xB;
//! let plaintexts: Vec<u8> = (0..64).map(|i| (i % 16) as u8).collect();
//! let traces: Vec<Vec<f64>> = plaintexts
//!     .iter()
//!     .map(|&p| vec![f64::from(present_cipher::sbox(p ^ key).count_ones())])
//!     .collect();
//! let result = cpa_attack(&plaintexts, &traces, LeakageModel::HammingWeight);
//! assert_eq!(result.best_guess(), key);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distinguisher;
pub mod evaluate;
pub mod second_order;
pub mod streaming;
pub mod template;

pub use distinguisher::Distinguisher;
pub use evaluate::{
    guessing_entropy, measurements_to_disclosure, success_rate_curve, PrefixEvaluator,
};
pub use streaming::{attack_batch, AttackAccumulator, AttackStream};

use present_cipher::sbox;

/// Hypothetical power models for the round-1 S-box output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeakageModel {
    /// Hamming weight of `S(p ⊕ k̂)`.
    HammingWeight,
    /// Hamming distance between the S-box input and output (a transition
    /// model matching the capture protocol's initial/final structure).
    HammingDistance,
    /// The least significant bit of `S(p ⊕ k̂)` — the single-bit model
    /// connected to the paper's Theorem 1.
    Lsb,
    /// Datapath transition weight from the protocol's fixed class-0
    /// initial state: `w_H(p ⊕ k̂) + w_H(S(0) ⊕ S(p ⊕ k̂))` — the model
    /// matched to the paper's two-phase capture, where every trace starts
    /// from an encoding of class 0.
    OutputTransition,
}

impl LeakageModel {
    /// The predicted leakage for one plaintext nibble under key guess `k`.
    pub fn predict(self, plaintext: u8, key_guess: u8) -> f64 {
        let input = (plaintext ^ key_guess) & 0xF;
        let output = sbox(input);
        match self {
            LeakageModel::HammingWeight => f64::from(output.count_ones()),
            LeakageModel::HammingDistance => f64::from((input ^ output).count_ones()),
            LeakageModel::Lsb => f64::from(output & 1),
            LeakageModel::OutputTransition => {
                f64::from(input.count_ones()) + f64::from((sbox(0) ^ output).count_ones())
            }
        }
    }
}

/// The outcome of a key-recovery attack: per-guess scores (higher is
/// more likely) and the sample index where each guess peaked. For CPA
/// the score is the peak |ρ|; for DPA the peak |difference of means|;
/// for MLPA the peak summed squared correlation.
#[derive(Debug, Clone, PartialEq)]
pub struct CpaResult {
    /// `scores[k]` = the distinguisher's statistic for guess `k`.
    pub scores: [f64; 16],
    /// For each guess, the sample index where the peak occurred.
    pub peak_samples: [usize; 16],
}

impl CpaResult {
    /// The key guess with the highest score.
    pub fn best_guess(&self) -> u8 {
        self.scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k as u8)
            .expect("16 guesses")
    }

    /// Rank of the true key (0 = attack succeeded).
    pub fn key_rank(&self, true_key: u8) -> usize {
        let own = self.scores[usize::from(true_key)];
        self.scores.iter().filter(|&&s| s > own).count()
    }

    /// Guesses ordered from most to least likely.
    pub fn ranking(&self) -> [u8; 16] {
        let mut order: Vec<u8> = (0..16).collect();
        order.sort_by(|&a, &b| self.scores[usize::from(b)].total_cmp(&self.scores[usize::from(a)]));
        order.try_into().expect("16 guesses")
    }
}

/// Run a CPA attack over all 16 key guesses (batch wrapper over the
/// streaming fold; see [`attack_batch`]).
///
/// # Panics
///
/// Panics if `plaintexts` and `traces` differ in length, are empty, or the
/// traces are ragged.
pub fn cpa_attack(plaintexts: &[u8], traces: &[Vec<f64>], model: LeakageModel) -> CpaResult {
    attack_batch(plaintexts, traces, Distinguisher::Cpa(model)).scores()
}

/// Run a difference-of-means DPA on selection bit `bit` (0–3) of the
/// S-box output.
///
/// # Panics
///
/// As for [`cpa_attack`].
pub fn dpa_attack(plaintexts: &[u8], traces: &[Vec<f64>], bit: u8) -> CpaResult {
    attack_batch(plaintexts, traces, Distinguisher::Dpa { bit }).scores()
}

/// Run an MLPA attack combining the four single-bit linear
/// approximations of the S-box output (see
/// [`Distinguisher::Mlpa`]).
///
/// # Panics
///
/// As for [`cpa_attack`].
pub fn mlpa_attack(plaintexts: &[u8], traces: &[Vec<f64>]) -> CpaResult {
    attack_batch(plaintexts, traces, Distinguisher::Mlpa).scores()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn synthetic_dataset(key: u8, n: usize, noise: f64, seed: u64) -> (Vec<u8>, Vec<Vec<f64>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let plaintexts: Vec<u8> = (0..n).map(|_| rng.gen_range(0..16)).collect();
        let traces = plaintexts
            .iter()
            .map(|&p| {
                let hw = f64::from(sbox(p ^ key).count_ones());
                vec![
                    rng.gen::<f64>(),                      // pure noise sample
                    hw + noise * (rng.gen::<f64>() - 0.5), // leaking sample
                ]
            })
            .collect();
        (plaintexts, traces)
    }

    #[test]
    fn recovers_the_key_from_clean_traces() {
        for key in 0..16u8 {
            let (p, t) = synthetic_dataset(key, 128, 0.0, 42);
            let r = cpa_attack(&p, &t, LeakageModel::HammingWeight);
            assert_eq!(r.best_guess(), key, "key {key}");
            assert_eq!(r.key_rank(key), 0);
            assert_eq!(
                r.peak_samples[usize::from(key)],
                1,
                "peak at leaking sample"
            );
        }
    }

    #[test]
    fn recovers_the_key_under_noise() {
        let (p, t) = synthetic_dataset(0x7, 512, 4.0, 7);
        let r = cpa_attack(&p, &t, LeakageModel::HammingWeight);
        assert_eq!(r.best_guess(), 0x7);
    }

    #[test]
    fn dpa_and_mlpa_recover_the_key_too() {
        // Identity leaker: single-bit DPA needs a leak it can uniquely
        // attribute (a pure HW leak ties eight guesses by symmetry).
        let mut rng = SmallRng::seed_from_u64(8);
        let key = 0xD;
        let p: Vec<u8> = (0..512).map(|_| rng.gen_range(0..16)).collect();
        let t: Vec<Vec<f64>> = p
            .iter()
            .map(|&pt| vec![f64::from(sbox(pt ^ key)) + 2.0 * (rng.gen::<f64>() - 0.5)])
            .collect();
        assert_eq!(dpa_attack(&p, &t, 3).best_guess(), key);
        assert_eq!(mlpa_attack(&p, &t).best_guess(), key);
    }

    #[test]
    fn ranking_is_a_permutation() {
        let (p, t) = synthetic_dataset(0x3, 64, 1.0, 9);
        let r = cpa_attack(&p, &t, LeakageModel::HammingWeight);
        let mut sorted = r.ranking().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<u8>>());
    }

    #[test]
    fn success_rate_increases_with_traces() {
        let (p, t) = synthetic_dataset(0xC, 512, 8.0, 11);
        let curve = success_rate_curve(&p, &t, 0xC, LeakageModel::HammingWeight, &[8, 256], 16);
        assert!(curve[1].1 >= curve[0].1, "{curve:?}");
        assert!(curve[1].1 > 0.9);
    }

    #[test]
    fn guessing_entropy_drops_with_traces() {
        let (p, t) = synthetic_dataset(0x5, 512, 12.0, 13);
        let few = guessing_entropy(&p, &t, 0x5, LeakageModel::HammingWeight, 8, 16);
        let many = guessing_entropy(&p, &t, 0x5, LeakageModel::HammingWeight, 400, 16);
        assert!(many <= few, "{many} !<= {few}");
    }

    #[test]
    fn models_predict_in_expected_ranges() {
        for p in 0..16u8 {
            for k in 0..16u8 {
                assert!((0.0..=4.0).contains(&LeakageModel::HammingWeight.predict(p, k)));
                assert!((0.0..=4.0).contains(&LeakageModel::HammingDistance.predict(p, k)));
                let lsb = LeakageModel::Lsb.predict(p, k);
                assert!(lsb == 0.0 || lsb == 1.0);
                assert!((0.0..=8.0).contains(&LeakageModel::OutputTransition.predict(p, k)));
            }
        }
    }
}
