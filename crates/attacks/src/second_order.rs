//! Second-order CPA: centered-product preprocessing.
//!
//! The paper (§II-A) stresses that a `d`-th-order masked implementation
//! "can be still vulnerable to higher-order attacks". For a 2-share
//! Boolean masking the standard second-order attack combines two samples
//! by the *centered product* `(x(t₁) − μ(t₁)) · (x(t₂) − μ(t₂))` and runs
//! ordinary CPA on the combined trace — the product statistically
//! recombines the two shares.

use crate::{cpa_attack, CpaResult, LeakageModel};

/// A set of sample-index pairs to combine.
pub type SamplePairs = Vec<(usize, usize)>;

/// All pairs `(i, j)` with `i ≤ j` drawn from a window of sample indices.
pub fn window_pairs(window: std::ops::Range<usize>) -> SamplePairs {
    let idx: Vec<usize> = window.collect();
    let mut pairs = Vec::with_capacity(idx.len() * (idx.len() + 1) / 2);
    for (a, &i) in idx.iter().enumerate() {
        for &j in &idx[a..] {
            pairs.push((i, j));
        }
    }
    pairs
}

/// Centered-product combination: returns one combined trace per input
/// trace, with one sample per requested pair.
///
/// # Panics
///
/// Panics if `traces` is empty, ragged, or a pair is out of range.
pub fn centered_product(traces: &[Vec<f64>], pairs: &SamplePairs) -> Vec<Vec<f64>> {
    assert!(!traces.is_empty());
    let samples = traces[0].len();
    assert!(traces.iter().all(|t| t.len() == samples), "ragged traces");
    assert!(
        pairs.iter().all(|&(i, j)| i < samples && j < samples),
        "pair index out of range"
    );
    let n = traces.len() as f64;
    let mut mean = vec![0.0f64; samples];
    for t in traces {
        for (m, &x) in mean.iter_mut().zip(t) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    traces
        .iter()
        .map(|t| {
            pairs
                .iter()
                .map(|&(i, j)| (t[i] - mean[i]) * (t[j] - mean[j]))
                .collect()
        })
        .collect()
}

/// Second-order CPA: centered-product combine, then first-order CPA on
/// the combined traces.
///
/// # Panics
///
/// As for [`centered_product`] / [`cpa_attack`].
pub fn second_order_cpa(
    plaintexts: &[u8],
    traces: &[Vec<f64>],
    pairs: &SamplePairs,
    model: LeakageModel,
) -> CpaResult {
    let combined = centered_product(traces, pairs);
    cpa_attack(plaintexts, &combined, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use present_cipher::sbox;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Ideal 2-share masked traces: sample 0 leaks share 0, sample 1
    /// leaks share 1; no single sample correlates with the secret, but
    /// their centered product does.
    fn masked_dataset(key: u8, n: usize, seed: u64) -> (Vec<u8>, Vec<Vec<f64>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plaintexts = Vec::with_capacity(n);
        let mut traces = Vec::with_capacity(n);
        for _ in 0..n {
            let p: u8 = rng.gen_range(0..16);
            let v = sbox(p ^ key);
            let mask: u8 = rng.gen_range(0..16);
            let share0 = v ^ mask;
            let share1 = mask;
            plaintexts.push(p);
            traces.push(vec![
                f64::from(share0.count_ones()),
                f64::from(share1.count_ones()),
            ]);
        }
        (plaintexts, traces)
    }

    #[test]
    fn first_order_fails_on_ideal_masking() {
        let (p, t) = masked_dataset(0x9, 4096, 21);
        let r = cpa_attack(&p, &t, LeakageModel::HammingWeight);
        // The true key's direct correlation must be negligible.
        assert!(
            r.scores[0x9] < 0.08,
            "first-order correlation {} should vanish",
            r.scores[0x9]
        );
    }

    #[test]
    fn second_order_recovers_the_key() {
        let (p, t) = masked_dataset(0x9, 4096, 21);
        let pairs = window_pairs(0..2);
        let r = second_order_cpa(&p, &t, &pairs, LeakageModel::HammingWeight);
        assert_eq!(r.best_guess(), 0x9, "scores {:?}", r.scores);
        assert_eq!(r.key_rank(0x9), 0);
    }

    /// Property over the whole key space and several mask streams: the
    /// centered product beats direct first-order CPA on ideal 2-share
    /// masking — second order recovers every key at rank 0 while the
    /// first-order correlation at the true key stays in the noise floor.
    /// (First-order *rank* is not asserted: with all correlations near
    /// zero it is uniform chance, and can land on 0.)
    #[test]
    fn second_order_beats_first_order_for_every_key() {
        let pairs = window_pairs(0..2);
        for key in 0..16u8 {
            for seed in [101u64, 202] {
                let (p, t) = masked_dataset(key, 4096, seed);
                let first = cpa_attack(&p, &t, LeakageModel::HammingWeight);
                let second = second_order_cpa(&p, &t, &pairs, LeakageModel::HammingWeight);
                assert!(
                    first.scores[usize::from(key)] < 0.08,
                    "key {key:X} seed {seed}: first-order correlation {} should vanish",
                    first.scores[usize::from(key)]
                );
                assert_eq!(
                    second.key_rank(key),
                    0,
                    "key {key:X} seed {seed}: second-order scores {:?}",
                    second.scores
                );
                assert!(
                    second.scores[usize::from(key)] > 0.3,
                    "key {key:X} seed {seed}: second-order correlation {} should be strong",
                    second.scores[usize::from(key)]
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn centered_product_rejects_empty_input() {
        let _ = centered_product(&[], &vec![(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "ragged traces")]
    fn centered_product_rejects_ragged_traces() {
        let traces = vec![vec![1.0, 2.0], vec![3.0]];
        let _ = centered_product(&traces, &vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "pair index out of range")]
    fn centered_product_rejects_out_of_range_pairs() {
        let traces = vec![vec![1.0, 2.0]];
        let _ = centered_product(&traces, &vec![(0, 2)]);
    }

    /// Constant samples carry no information: their centered products are
    /// exactly zero, not NaN or a spurious correlation.
    #[test]
    fn constant_samples_combine_to_zero() {
        let traces = vec![vec![5.0, 5.0]; 8];
        let combined = centered_product(&traces, &window_pairs(0..2));
        assert!(combined.iter().all(|t| t.iter().all(|&x| x == 0.0)));
    }

    #[test]
    fn window_pairs_counts_triangular() {
        assert_eq!(window_pairs(0..4).len(), 10);
        assert_eq!(window_pairs(3..3).len(), 0);
        assert!(window_pairs(0..3).contains(&(0, 2)));
    }

    #[test]
    fn centered_product_removes_the_mean() {
        let traces = vec![vec![1.0, 10.0], vec![3.0, 14.0]];
        let pairs = vec![(0usize, 1usize)];
        let combined = centered_product(&traces, &pairs);
        // means: 2, 12 → products: (−1)(−2)=2 and (1)(2)=2.
        assert_eq!(combined, vec![vec![2.0], vec![2.0]]);
    }
}
