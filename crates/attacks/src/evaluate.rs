//! Attack evaluation metrics: success rate, guessing entropy, and
//! measurements-to-disclosure, computed incrementally.
//!
//! All three metrics ask the same question at many trace budgets —
//! "what does the attack know after the first `n` traces?" — so they
//! share one engine, [`PrefixEvaluator`]: per trial, *one* streaming
//! [`AttackAccumulator`] folds the (rotated) trace sequence and the key
//! rank is snapshotted at each requested prefix length. Evaluating `P`
//! prefixes over `T` trials costs `T × max(counts)` folds total,
//! instead of the `P × T` full re-attacks (`O(prefixes × N)` rework)
//! the batch implementation performed.
//!
//! Trials are contiguous windows rotated through the dataset (trial `i`
//! of `T` starts at `⌊i·N/T⌋`), which keeps the evaluation
//! deterministic — the same subsets the previous batch implementation
//! used, so the metrics' semantics are unchanged.

use crate::distinguisher::Distinguisher;
use crate::streaming::AttackAccumulator;
use crate::LeakageModel;
use leakage_core::online::SumMode;

/// Incremental prefix evaluation of one distinguisher over rotated
/// trials: per-trial key ranks at every requested prefix length from a
/// single streaming pass per trial.
#[derive(Debug)]
pub struct PrefixEvaluator {
    /// Snapshot points, ascending and deduplicated.
    counts: Vec<usize>,
    /// `ranks[ci][trial]` = rank of the true key after `counts[ci]`
    /// traces of that trial.
    ranks: Vec<Vec<usize>>,
}

impl PrefixEvaluator {
    /// Evaluate `distinguisher` on rotated windows of the dataset,
    /// snapshotting the true key's rank at every count in `counts`.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`, `counts` is empty, any count is zero or
    /// exceeds the dataset size, or the dataset is empty/ragged.
    pub fn run(
        plaintexts: &[u8],
        traces: &[Vec<f64>],
        true_key: u8,
        distinguisher: Distinguisher,
        counts: &[usize],
        trials: usize,
    ) -> Self {
        assert!(trials > 0, "trials must be positive");
        assert!(!counts.is_empty(), "no snapshot counts");
        assert_eq!(plaintexts.len(), traces.len());
        assert!(!traces.is_empty());
        let samples = traces[0].len();
        assert!(traces.iter().all(|t| t.len() == samples), "ragged traces");
        let mut sorted: Vec<usize> = counts.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted[0] > 0, "zero-length prefix");
        let max = *sorted.last().expect("non-empty");
        assert!(max <= traces.len(), "subset larger than dataset");

        let n = traces.len();
        let mut ranks = vec![vec![0usize; trials]; sorted.len()];
        // `trial` both derives the rotated window start and addresses the
        // snapshot-major rank matrix, so an iterator fits neither use.
        #[allow(clippy::needless_range_loop)]
        for trial in 0..trials {
            let start = (trial * n) / trials;
            let mut acc = AttackAccumulator::new(distinguisher, samples, SumMode::Welford);
            let mut next = 0usize; // index into `sorted`
            for i in 0..max {
                let idx = (start + i) % n;
                acc.fold(plaintexts[idx], &traces[idx]);
                while next < sorted.len() && sorted[next] == i + 1 {
                    ranks[next][trial] = acc.scores().key_rank(true_key);
                    next += 1;
                }
            }
        }
        Self {
            counts: sorted,
            ranks,
        }
    }

    /// The snapshot points, ascending.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Per-trial ranks at snapshot `counts()[i]`.
    pub fn ranks_at(&self, i: usize) -> &[usize] {
        &self.ranks[i]
    }

    /// Success-rate curve: fraction of trials with the true key ranked
    /// first at each snapshot.
    pub fn success_rate(&self) -> Vec<(usize, f64)> {
        self.counts
            .iter()
            .zip(&self.ranks)
            .map(|(&n, ranks)| {
                let hits = ranks.iter().filter(|&&r| r == 0).count();
                (n, hits as f64 / ranks.len() as f64)
            })
            .collect()
    }

    /// Guessing-entropy curve: mean rank of the true key at each
    /// snapshot.
    pub fn guessing_entropy(&self) -> Vec<(usize, f64)> {
        self.counts
            .iter()
            .zip(&self.ranks)
            .map(|(&n, ranks)| {
                let total: usize = ranks.iter().sum();
                (n, total as f64 / ranks.len() as f64)
            })
            .collect()
    }
}

/// Smallest evaluated trace budget at which the success rate reaches
/// `threshold` *and stays there* for every larger evaluated budget —
/// the measurements-to-disclosure figure. `None` if disclosure is never
/// (stably) reached on the evaluated grid.
pub fn measurements_to_disclosure(sr_curve: &[(usize, f64)], threshold: f64) -> Option<usize> {
    let mut mtd = None;
    for &(n, sr) in sr_curve {
        if sr >= threshold {
            if mtd.is_none() {
                mtd = Some(n);
            }
        } else {
            mtd = None;
        }
    }
    mtd
}

/// Success-rate curve of a model-based CPA: fraction of `trials`
/// rotated trace-windows of each size for which the attack ranks the
/// true key first.
///
/// One streaming accumulator per trial is reused across all prefix
/// sizes (see [`PrefixEvaluator`]).
///
/// # Panics
///
/// Panics if any count is zero or exceeds the dataset size, `counts`
/// is empty, or `trials == 0`.
pub fn success_rate_curve(
    plaintexts: &[u8],
    traces: &[Vec<f64>],
    true_key: u8,
    model: LeakageModel,
    counts: &[usize],
    trials: usize,
) -> Vec<(usize, f64)> {
    let eval = PrefixEvaluator::run(
        plaintexts,
        traces,
        true_key,
        Distinguisher::Cpa(model),
        counts,
        trials,
    );
    // Report in the caller's count order (run() sorts internally).
    let sr = eval.success_rate();
    counts
        .iter()
        .map(|&n| *sr.iter().find(|&&(c, _)| c == n).expect("snapshotted"))
        .collect()
}

/// Guessing entropy of a model-based CPA: average rank of the true key
/// over rotated subsets of `count` traces.
///
/// # Panics
///
/// As for [`success_rate_curve`].
pub fn guessing_entropy(
    plaintexts: &[u8],
    traces: &[Vec<f64>],
    true_key: u8,
    model: LeakageModel,
    count: usize,
    trials: usize,
) -> f64 {
    let eval = PrefixEvaluator::run(
        plaintexts,
        traces,
        true_key,
        Distinguisher::Cpa(model),
        &[count],
        trials,
    );
    eval.guessing_entropy()[0].1
}

#[cfg(test)]
mod tests {
    use super::*;
    use present_cipher::sbox;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn synthetic(key: u8, n: usize, noise: f64, seed: u64) -> (Vec<u8>, Vec<Vec<f64>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let plaintexts: Vec<u8> = (0..n).map(|_| rng.gen_range(0..16)).collect();
        let traces = plaintexts
            .iter()
            .map(|&p| {
                let hw = f64::from(sbox(p ^ key).count_ones());
                vec![rng.gen::<f64>(), hw + noise * (rng.gen::<f64>() - 0.5)]
            })
            .collect();
        (plaintexts, traces)
    }

    #[test]
    fn incremental_matches_naive_reevaluation() {
        // The prefix evaluator must produce exactly the ranks a full
        // re-attack on each rotated window produces.
        let (p, t) = synthetic(0xB, 96, 3.0, 41);
        let d = Distinguisher::Cpa(LeakageModel::HammingWeight);
        let counts = [8, 32, 96];
        let trials = 5;
        let eval = PrefixEvaluator::run(&p, &t, 0xB, d, &counts, trials);
        for (ci, &count) in counts.iter().enumerate() {
            for trial in 0..trials {
                let start = (trial * t.len()) / trials;
                let idx: Vec<usize> = (0..count).map(|i| (start + i) % t.len()).collect();
                let pw: Vec<u8> = idx.iter().map(|&i| p[i]).collect();
                let tw: Vec<Vec<f64>> = idx.iter().map(|&i| t[i].clone()).collect();
                let want = crate::streaming::attack_batch(&pw, &tw, d)
                    .scores()
                    .key_rank(0xB);
                assert_eq!(
                    eval.ranks_at(ci)[trial],
                    want,
                    "count {count} trial {trial}"
                );
            }
        }
    }

    #[test]
    fn curves_preserve_caller_count_order() {
        let (p, t) = synthetic(0x4, 128, 2.0, 43);
        let curve = success_rate_curve(&p, &t, 0x4, LeakageModel::HammingWeight, &[128, 16], 4);
        assert_eq!(curve[0].0, 128);
        assert_eq!(curve[1].0, 16);
        assert!(curve[0].1 >= curve[1].1);
    }

    #[test]
    fn mtd_requires_stable_disclosure() {
        let curve = vec![(8, 0.2), (16, 1.0), (32, 0.4), (64, 0.9), (128, 1.0)];
        assert_eq!(measurements_to_disclosure(&curve, 0.8), Some(64));
        assert_eq!(measurements_to_disclosure(&curve, 0.1), Some(8));
        assert_eq!(measurements_to_disclosure(&curve, 1.1), None);
        assert_eq!(measurements_to_disclosure(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "subset larger than dataset")]
    fn oversized_prefix_is_rejected() {
        let (p, t) = synthetic(0x1, 16, 0.0, 47);
        let _ = success_rate_curve(&p, &t, 0x1, LeakageModel::HammingWeight, &[17], 2);
    }
}
