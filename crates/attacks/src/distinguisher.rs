//! Pluggable attack distinguishers over the streaming co-moment state.
//!
//! A distinguisher maps each trace's known plaintext nibble, under every
//! key guess, to one or more *hypothesis components* — real-valued
//! predictions whose statistical relationship with the measured power
//! identifies the key:
//!
//! * **CPA** (Brier–Clavier–Olivier): one component per guess, a
//!   [`LeakageModel`] prediction of `S(p ⊕ k̂)`; scored by the peak
//!   absolute Pearson correlation over samples.
//! * **DPA** (difference of means, after the Gamaarachchi–Ganegoda
//!   tutorial): one binary component per guess — a selection bit of
//!   `S(p ⊕ k̂)` partitions traces into two sets; scored by the peak
//!   absolute difference of the partition means.
//! * **MLPA** (Roche–Tavernier multi-linear combination): one
//!   component per S-box output bit — the four single-bit linear
//!   approximations `⟨2ᵇ, S(p ⊕ k̂)⟩`; scored by the peak over samples
//!   of `Σ_b ρ_b²`, combining all of them instead of betting on a
//!   single model. The combination is deliberately restricted to the
//!   single-bit masks: the fifteen nonzero parities of a bijective
//!   S-box output form a complete orthogonal basis of balanced
//!   functions, so summing `ρ²` over *all* of them yields the same
//!   total explained variance for every key guess — no distinguishing
//!   power at all. Low-weight approximations are exactly where physical
//!   leakage concentrates (the paper's single-bit spectral sources), and
//!   wrong guesses scatter that energy into higher-order parities the
//!   combination ignores.
//!
//! All three extract their statistics from the same
//! [`CoMomentAccumulator`](leakage_core::comoment::CoMomentAccumulator)
//! cells, so they share one streaming fold and inherit its merge
//! invariance.

use crate::LeakageModel;
use leakage_core::comoment::CoMomentAccumulator;
use present_cipher::sbox;

/// Number of key guesses for the 4-bit S-box.
pub const NUM_GUESSES: usize = 16;

/// Number of single-bit linear approximations the MLPA distinguisher
/// combines (one per S-box output bit).
pub const MLPA_MASKS: usize = 4;

/// A streaming key-recovery distinguisher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distinguisher {
    /// Correlation power analysis under one leakage model.
    Cpa(LeakageModel),
    /// Difference-of-means DPA on one selection bit (0–3) of the S-box
    /// output.
    Dpa {
        /// Which output bit partitions the traces.
        bit: u8,
    },
    /// Multi-linear power analysis: the four single-bit linear
    /// approximations of the S-box output, combined by summed squared
    /// correlation.
    Mlpa,
}

impl Distinguisher {
    /// Hypothesis components per key guess.
    pub fn components(&self) -> usize {
        match self {
            Distinguisher::Cpa(_) | Distinguisher::Dpa { .. } => 1,
            Distinguisher::Mlpa => MLPA_MASKS,
        }
    }

    /// Total hypothesis channels (`guesses × components`); the channel
    /// of `(guess, component)` is `guess * components + component`.
    pub fn channels(&self) -> usize {
        NUM_GUESSES * self.components()
    }

    /// Stable label for reports and file names.
    pub fn label(&self) -> String {
        match self {
            Distinguisher::Cpa(LeakageModel::HammingWeight) => "cpa-hw".into(),
            Distinguisher::Cpa(LeakageModel::HammingDistance) => "cpa-hd".into(),
            Distinguisher::Cpa(LeakageModel::Lsb) => "cpa-lsb".into(),
            Distinguisher::Cpa(LeakageModel::OutputTransition) => "cpa-transition".into(),
            Distinguisher::Dpa { bit } => format!("dpa-b{bit}"),
            Distinguisher::Mlpa => "mlpa".into(),
        }
    }

    /// The hypothesis value of one component for `(plaintext, guess)`.
    ///
    /// # Panics
    ///
    /// Panics if `component` is out of range for this distinguisher.
    pub fn hypothesis(&self, plaintext: u8, guess: u8, component: usize) -> f64 {
        assert!(component < self.components(), "component out of range");
        match self {
            Distinguisher::Cpa(model) => model.predict(plaintext, guess),
            Distinguisher::Dpa { bit } => {
                let out = sbox((plaintext ^ guess) & 0xF);
                f64::from((out >> (bit & 3)) & 1)
            }
            Distinguisher::Mlpa => {
                let out = sbox((plaintext ^ guess) & 0xF);
                f64::from((out >> component) & 1)
            }
        }
    }

    /// The score and peak sample index of one key guess, extracted from
    /// the folded co-moment state. Higher is more likely; ties keep the
    /// earliest sample.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator's channel count does not match
    /// [`channels`](Self::channels) or `guess >= 16`.
    pub fn score(&self, acc: &CoMomentAccumulator, guess: u8) -> (f64, usize) {
        assert_eq!(acc.channels(), self.channels(), "channel layout mismatch");
        assert!(usize::from(guess) < NUM_GUESSES, "guess out of range");
        let components = self.components();
        let base = usize::from(guess) * components;
        let mut best = 0.0f64;
        let mut best_t = 0usize;
        for t in 0..acc.samples() {
            let s = match self {
                Distinguisher::Cpa(_) => acc.pearson(base, t).abs(),
                Distinguisher::Dpa { .. } => acc.difference_of_means(base, t).abs(),
                Distinguisher::Mlpa => (0..components)
                    .map(|m| {
                        let rho = acc.pearson(base + m, t);
                        rho * rho
                    })
                    .sum(),
            };
            if s > best {
                best = s;
                best_t = t;
            }
        }
        (best, best_t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_counts_match_components() {
        assert_eq!(
            Distinguisher::Cpa(LeakageModel::HammingWeight).channels(),
            16
        );
        assert_eq!(Distinguisher::Dpa { bit: 2 }.channels(), 16);
        assert_eq!(Distinguisher::Mlpa.channels(), 64);
    }

    #[test]
    fn dpa_hypothesis_is_the_selection_bit() {
        for p in 0..16u8 {
            for g in 0..16u8 {
                for bit in 0..4u8 {
                    let h = Distinguisher::Dpa { bit }.hypothesis(p, g, 0);
                    let want = f64::from((sbox(p ^ g) >> bit) & 1);
                    assert_eq!(h, want);
                }
            }
        }
    }

    #[test]
    fn mlpa_components_are_the_output_bits() {
        let d = Distinguisher::Mlpa;
        for comp in 0..MLPA_MASKS {
            let mut seen = [false; 2];
            for p in 0..16u8 {
                let h = d.hypothesis(p, 0, comp);
                assert_eq!(h, f64::from((sbox(p) >> comp) & 1));
                seen[h as usize] = true;
            }
            assert!(seen[0] && seen[1], "bit {comp} is constant");
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            Distinguisher::Cpa(LeakageModel::HammingWeight).label(),
            "cpa-hw"
        );
        assert_eq!(Distinguisher::Dpa { bit: 0 }.label(), "dpa-b0");
        assert_eq!(Distinguisher::Mlpa.label(), "mlpa");
    }
}
