//! Streaming attack state: constant-memory, mergeable key-recovery
//! accumulators.
//!
//! [`AttackAccumulator`] folds `(plaintext, trace)` pairs one at a time
//! into per-guess, per-sample co-moment state
//! ([`CoMomentAccumulator`]); [`AttackStream`] wraps it in the campaign
//! executor's deterministic chunk tree ([`FOLD_CHUNK`] /
//! [`TreeReducer`]), so a sequential fold of a schedule produces
//! bit-for-bit the state the sharded executor produces at any worker
//! count. In [`SumMode::Exact`] the extracted scores are additionally
//! invariant under *any* regrouping — bit-identical to the batch
//! reference [`attack_batch`].
//!
//! The hypothesis values depend only on the 4-bit plaintext and guess,
//! so each accumulator precomputes the full `16 × channels` hypothesis
//! table once; folding a trace is a table row lookup plus one co-moment
//! update.

use crate::distinguisher::{Distinguisher, NUM_GUESSES};
use crate::CpaResult;
use leakage_core::comoment::CoMomentAccumulator;
use leakage_core::online::{Merge, SumMode, TreeReducer, FOLD_CHUNK};

/// Streaming per-guess attack state for one distinguisher.
#[derive(Debug, Clone)]
pub struct AttackAccumulator {
    distinguisher: Distinguisher,
    /// Hypothesis table: row `p` holds the channel vector for plaintext
    /// `p` (`16 × channels`, row-major).
    table: Vec<f64>,
    inner: CoMomentAccumulator,
}

impl AttackAccumulator {
    /// Empty accumulator for `samples`-point traces.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn new(distinguisher: Distinguisher, samples: usize, mode: SumMode) -> Self {
        let channels = distinguisher.channels();
        let components = distinguisher.components();
        let mut table = Vec::with_capacity(16 * channels);
        for p in 0..16u8 {
            for g in 0..NUM_GUESSES as u8 {
                for c in 0..components {
                    table.push(distinguisher.hypothesis(p, g, c));
                }
            }
        }
        Self {
            distinguisher,
            table,
            inner: CoMomentAccumulator::new(channels, samples, mode),
        }
    }

    /// The distinguisher this accumulator scores.
    pub fn distinguisher(&self) -> Distinguisher {
        self.distinguisher
    }

    /// Summation mode.
    pub fn mode(&self) -> SumMode {
        self.inner.mode()
    }

    /// Samples per trace.
    pub fn samples(&self) -> usize {
        self.inner.samples()
    }

    /// Traces folded (or merged in) so far.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Whether nothing has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Depth of the merge tree this accumulator roots.
    pub fn merge_depth(&self) -> usize {
        self.inner.merge_depth()
    }

    /// Fold one trace captured under plaintext nibble `plaintext`.
    ///
    /// # Panics
    ///
    /// Panics if the trace length differs from `samples`.
    pub fn fold(&mut self, plaintext: u8, trace: &[f64]) {
        let channels = self.inner.channels();
        let row = usize::from(plaintext & 0xF) * channels;
        self.inner.fold(&self.table[row..row + channels], trace);
    }

    /// Merge another shard into this one in place; `self` is the
    /// earlier shard.
    ///
    /// # Panics
    ///
    /// Panics if the distinguishers, shapes, or modes differ.
    pub fn merge_from(&mut self, other: &AttackAccumulator) {
        assert_eq!(
            self.distinguisher, other.distinguisher,
            "distinguisher mismatch"
        );
        self.inner.merge_from(&other.inner);
    }

    /// Per-guess scores and peak samples extracted from the folded
    /// state.
    pub fn scores(&self) -> CpaResult {
        let mut scores = [0.0f64; NUM_GUESSES];
        let mut peak_samples = [0usize; NUM_GUESSES];
        for g in 0..NUM_GUESSES {
            let (s, t) = self.distinguisher.score(&self.inner, g as u8);
            scores[g] = s;
            peak_samples[g] = t;
        }
        CpaResult {
            scores,
            peak_samples,
        }
    }

    /// Direct access to the underlying co-moment state.
    pub fn comoments(&self) -> &CoMomentAccumulator {
        &self.inner
    }

    /// Number of `f64` values currently held (hypothesis table
    /// excluded — it is shape-constant).
    pub fn resident_floats(&self) -> usize {
        self.inner.resident_floats()
    }
}

impl Merge for AttackAccumulator {
    fn merge(mut self, later: Self) -> Self {
        self.merge_from(&later);
        self
    }
}

/// Sequential fold of an attack trace stream through the deterministic
/// chunk tree — the attack-engine counterpart of
/// [`SpectrumStream`](leakage_core::online::SpectrumStream). Folding a
/// schedule in order yields bit-for-bit the accumulator the sharded
/// campaign executor produces for the same schedule at any worker
/// count.
#[derive(Debug)]
pub struct AttackStream {
    reducer: TreeReducer<AttackAccumulator>,
    leaf: AttackAccumulator,
    in_leaf: usize,
    chunk: usize,
    seq: u64,
    folded: u64,
}

impl AttackStream {
    /// Stream with the campaign's chunk size ([`FOLD_CHUNK`]).
    pub fn new(distinguisher: Distinguisher, samples: usize, mode: SumMode) -> Self {
        Self::with_chunk(distinguisher, samples, mode, FOLD_CHUNK)
    }

    /// Stream with a custom chunk size (tests exercise odd sizes;
    /// production code should use [`new`](Self::new) so chunk
    /// boundaries match the campaign executor).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn with_chunk(
        distinguisher: Distinguisher,
        samples: usize,
        mode: SumMode,
        chunk: usize,
    ) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        Self {
            reducer: TreeReducer::new(),
            leaf: AttackAccumulator::new(distinguisher, samples, mode),
            in_leaf: 0,
            chunk,
            seq: 0,
            folded: 0,
        }
    }

    /// Fold one trace under its plaintext nibble.
    pub fn fold(&mut self, plaintext: u8, trace: &[f64]) {
        self.leaf.fold(plaintext, trace);
        self.folded += 1;
        self.in_leaf += 1;
        if self.in_leaf == self.chunk {
            let template = AttackAccumulator::new(
                self.leaf.distinguisher(),
                self.leaf.samples(),
                self.leaf.mode(),
            );
            let full = std::mem::replace(&mut self.leaf, template);
            self.reducer.push(self.seq, full);
            self.seq += 1;
            self.in_leaf = 0;
        }
    }

    /// Traces folded so far.
    pub fn folded(&self) -> u64 {
        self.folded
    }

    /// Number of `f64` values currently held (partial leaf plus the
    /// reducer's buffered subtrees).
    pub fn resident_floats(&self) -> usize {
        self.leaf.resident_floats()
            + self
                .reducer
                .resident_with(AttackAccumulator::resident_floats)
    }

    /// Close the stream: the trailing partial chunk (if any) becomes
    /// the final leaf, and the reduction completes. Returns an empty
    /// accumulator if nothing was folded.
    pub fn finish(mut self) -> AttackAccumulator {
        let template = AttackAccumulator::new(
            self.leaf.distinguisher(),
            self.leaf.samples(),
            self.leaf.mode(),
        );
        if self.in_leaf > 0 {
            self.reducer.push(self.seq, self.leaf);
        }
        self.reducer.finish().unwrap_or(template)
    }
}

/// Batch reference: fold the whole dataset into one exact-mode
/// accumulator (no chunk tree). In exact mode any streamed or sharded
/// fold of the same data extracts bit-identical scores.
///
/// # Panics
///
/// Panics if `plaintexts` and `traces` differ in length, are empty, or
/// the traces are ragged.
pub fn attack_batch(
    plaintexts: &[u8],
    traces: &[Vec<f64>],
    distinguisher: Distinguisher,
) -> AttackAccumulator {
    assert_eq!(plaintexts.len(), traces.len());
    assert!(!traces.is_empty());
    let samples = traces[0].len();
    assert!(traces.iter().all(|t| t.len() == samples), "ragged traces");
    let mut acc = AttackAccumulator::new(distinguisher, samples, SumMode::Exact);
    for (&p, t) in plaintexts.iter().zip(traces) {
        acc.fold(p, t);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LeakageModel;
    use present_cipher::sbox;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Identity leaker: sample 1 leaks the raw S-box output value, the
    /// leak every distinguisher here can uniquely attribute (a pure
    /// Hamming-weight leak ties eight guesses under single-bit DPA).
    fn synthetic(key: u8, n: usize, noise: f64, seed: u64) -> (Vec<u8>, Vec<Vec<f64>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let plaintexts: Vec<u8> = (0..n).map(|_| rng.gen_range(0..16)).collect();
        let traces = plaintexts
            .iter()
            .map(|&p| {
                let v = f64::from(sbox(p ^ key));
                vec![rng.gen::<f64>(), v + noise * (rng.gen::<f64>() - 0.5)]
            })
            .collect();
        (plaintexts, traces)
    }

    const ALL: [Distinguisher; 3] = [
        Distinguisher::Cpa(LeakageModel::HammingWeight),
        Distinguisher::Dpa { bit: 3 },
        Distinguisher::Mlpa,
    ];

    #[test]
    fn every_distinguisher_recovers_the_key() {
        let (p, t) = synthetic(0xA, 256, 1.0, 3);
        for d in ALL {
            let r = attack_batch(&p, &t, d).scores();
            assert_eq!(r.best_guess(), 0xA, "{}", d.label());
            assert_eq!(r.peak_samples[0xA], 1, "{} peak", d.label());
        }
    }

    #[test]
    fn exact_stream_matches_batch_bitwise() {
        let (p, t) = synthetic(0x6, 3 * FOLD_CHUNK + 5, 2.0, 17);
        for d in ALL {
            let batch = attack_batch(&p, &t, d).scores();
            let mut stream = AttackStream::new(d, 2, SumMode::Exact);
            for (&pt, tr) in p.iter().zip(&t) {
                stream.fold(pt, tr);
            }
            let streamed = stream.finish().scores();
            for g in 0..16 {
                assert_eq!(
                    batch.scores[g].to_bits(),
                    streamed.scores[g].to_bits(),
                    "{} guess {g}",
                    d.label()
                );
                assert_eq!(batch.peak_samples[g], streamed.peak_samples[g]);
            }
        }
    }

    #[test]
    fn stream_reproduces_reducer_tree_in_welford_mode() {
        let (p, t) = synthetic(0x2, 4 * FOLD_CHUNK + 7, 1.5, 23);
        let mut stream = AttackStream::new(ALL[0], 2, SumMode::Welford);
        for (&pt, tr) in p.iter().zip(&t) {
            stream.fold(pt, tr);
        }
        let mut reducer: TreeReducer<AttackAccumulator> = TreeReducer::new();
        for (i, chunk) in p
            .chunks(FOLD_CHUNK)
            .zip(t.chunks(FOLD_CHUNK))
            .enumerate()
            .map(|(i, (pc, tc))| (i, pc.iter().zip(tc)))
        {
            let mut leaf = AttackAccumulator::new(ALL[0], 2, SumMode::Welford);
            for (&pt, tr) in chunk {
                leaf.fold(pt, tr);
            }
            reducer.push(i as u64, leaf);
        }
        let a = stream.finish().scores();
        let b = reducer.finish().unwrap().scores();
        for g in 0..16 {
            assert_eq!(a.scores[g].to_bits(), b.scores[g].to_bits());
        }
    }

    #[test]
    fn merge_depth_and_counts_track() {
        let (p, t) = synthetic(0x0, 2 * FOLD_CHUNK, 0.5, 29);
        let mut stream = AttackStream::new(Distinguisher::Mlpa, 2, SumMode::Exact);
        for (&pt, tr) in p.iter().zip(&t) {
            stream.fold(pt, tr);
        }
        let acc = stream.finish();
        assert_eq!(acc.count(), 2 * FOLD_CHUNK as u64);
        assert!(acc.merge_depth() >= 1);
    }

    #[test]
    fn empty_stream_finishes_empty() {
        let acc = AttackStream::new(ALL[0], 4, SumMode::Exact).finish();
        assert!(acc.is_empty());
        assert_eq!(acc.scores().scores, [0.0; 16]);
    }

    #[test]
    fn welford_resident_floats_do_not_grow_with_traces() {
        let (p, t) = synthetic(0x4, 64, 0.5, 31);
        let mut stream = AttackStream::new(ALL[0], 2, SumMode::Welford);
        for (&pt, tr) in p.iter().cycle().zip(t.iter().cycle()).take(FOLD_CHUNK * 8) {
            stream.fold(pt, tr);
        }
        let at_8 = stream.resident_floats();
        for (&pt, tr) in p.iter().cycle().zip(t.iter().cycle()).take(FOLD_CHUNK * 56) {
            stream.fold(pt, tr);
        }
        // 8x the chunks may add at most 3 counter levels.
        let leaf = AttackAccumulator::new(ALL[0], 2, SumMode::Welford).resident_floats();
        assert!(stream.resident_floats() <= at_8 + 3 * leaf);
    }
}
