//! Profiled template attack: nearest-class-mean classification.
//!
//! Model-based CPA needs the power model to resemble the device's true
//! leakage function; a profiled adversary instead *learns* the per-class
//! mean trace from a profiling device and matches attack traces against
//! the 16 templates. This is the strongest first-order attack our traces
//! admit and the right baseline for the unprotected implementations whose
//! energy profile fits no textbook model.

use leakage_core::ClassifiedTraces;

/// Per-class mean-trace templates with (shared, diagonal) noise weights.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateSet {
    templates: Vec<Vec<f64>>,
    /// Per-sample inverse variance used as the matching weight.
    weights: Vec<f64>,
}

impl TemplateSet {
    /// Learn templates from a profiling set (known classes).
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or a class has no traces.
    pub fn profile(set: &ClassifiedTraces) -> Self {
        assert!(!set.is_empty());
        assert!(
            set.class_counts().iter().all(|&c| c > 0),
            "every class needs profiling traces"
        );
        let templates = set.class_means();
        let samples = set.samples();
        // Pooled within-class variance per sample.
        let mut var = vec![0.0f64; samples];
        for (class, trace) in set.iter() {
            for (s, &x) in trace.iter().enumerate() {
                let d = x - templates[class][s];
                var[s] += d * d;
            }
        }
        let n = set.len() as f64;
        let weights = var
            .iter()
            .map(|&v| {
                let v = v / n;
                if v > 0.0 {
                    1.0 / v
                } else {
                    // Noise-free sample: strongly discriminating.
                    1e6
                }
            })
            .collect();
        Self { templates, weights }
    }

    /// Number of classes profiled.
    pub fn num_classes(&self) -> usize {
        self.templates.len()
    }

    /// Weighted squared distance between a trace and one template.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or the class is out of range.
    pub fn distance(&self, trace: &[f64], class: usize) -> f64 {
        let template = &self.templates[class];
        assert_eq!(trace.len(), template.len());
        trace
            .iter()
            .zip(template)
            .zip(&self.weights)
            .map(|((&x, &m), &w)| w * (x - m) * (x - m))
            .sum()
    }

    /// The most likely class for one trace.
    pub fn classify(&self, trace: &[f64]) -> usize {
        (0..self.num_classes())
            .min_by(|&a, &b| self.distance(trace, a).total_cmp(&self.distance(trace, b)))
            .expect("at least one class")
    }
}

/// The outcome of a template key-recovery attack.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateAttackResult {
    /// Accumulated negative-distance score per key guess (higher wins).
    pub scores: [f64; 16],
}

impl TemplateAttackResult {
    /// The best key guess.
    pub fn best_guess(&self) -> u8 {
        self.scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k as u8)
            .expect("16 guesses")
    }

    /// Rank of the true key (0 = success).
    pub fn key_rank(&self, true_key: u8) -> usize {
        let own = self.scores[usize::from(true_key)];
        self.scores.iter().filter(|&&s| s > own).count()
    }
}

/// Template key recovery: for every key guess, match each attack trace
/// against the template of the hypothesized S-box input `p ⊕ k̂`.
///
/// # Panics
///
/// Panics if the inputs are empty, mismatched, or the template set does
/// not have 16 classes.
pub fn template_attack(
    templates: &TemplateSet,
    plaintexts: &[u8],
    traces: &[Vec<f64>],
) -> TemplateAttackResult {
    assert_eq!(templates.num_classes(), 16);
    assert_eq!(plaintexts.len(), traces.len());
    assert!(!traces.is_empty());
    let mut scores = [0.0f64; 16];
    for guess in 0..16u8 {
        let total: f64 = plaintexts
            .iter()
            .zip(traces)
            .map(|(&p, trace)| -templates.distance(trace, usize::from((p ^ guess) & 0xF)))
            .sum();
        scores[usize::from(guess)] = total;
    }
    TemplateAttackResult { scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic device whose per-class signature is an arbitrary (non-HW)
    /// function — exactly the case where model-based CPA struggles.
    fn signature(t: u8) -> Vec<f64> {
        vec![
            f64::from(t),
            f64::from(t.wrapping_mul(7) & 0xF),
            f64::from((t ^ (t << 1)) & 0xF),
            f64::from(15 - t),
        ]
    }

    fn profiling_set(noise: f64, seed: u64) -> ClassifiedTraces {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut set = ClassifiedTraces::new(16, 4);
        for t in 0..16u8 {
            for _ in 0..32 {
                let trace: Vec<f64> = signature(t)
                    .iter()
                    .map(|&x| x + noise * (rng.gen::<f64>() - 0.5))
                    .collect();
                set.push(usize::from(t), trace);
            }
        }
        set
    }

    #[test]
    fn classifier_recovers_classes() {
        let set = profiling_set(0.4, 5);
        let templates = TemplateSet::profile(&set);
        for t in 0..16u8 {
            assert_eq!(templates.classify(&signature(t)), usize::from(t));
        }
    }

    #[test]
    fn attack_recovers_arbitrary_leakage_keys() {
        let templates = TemplateSet::profile(&profiling_set(0.4, 6));
        let mut rng = SmallRng::seed_from_u64(7);
        let key = 0xD;
        let plaintexts: Vec<u8> = (0..64).map(|_| rng.gen_range(0..16)).collect();
        let traces: Vec<Vec<f64>> = plaintexts
            .iter()
            .map(|&p| {
                signature(p ^ key)
                    .iter()
                    .map(|&x| x + 0.4 * (rng.gen::<f64>() - 0.5))
                    .collect()
            })
            .collect();
        let result = template_attack(&templates, &plaintexts, &traces);
        assert_eq!(result.best_guess(), key);
        assert_eq!(result.key_rank(key), 0);
    }

    #[test]
    fn heavier_noise_needs_more_traces() {
        let templates = TemplateSet::profile(&profiling_set(0.5, 8));
        let mut rng = SmallRng::seed_from_u64(9);
        let key = 0x3;
        let make = |n: usize, rng: &mut SmallRng| {
            let p: Vec<u8> = (0..n).map(|_| rng.gen_range(0..16)).collect();
            let t: Vec<Vec<f64>> = p
                .iter()
                .map(|&pi| {
                    signature(pi ^ key)
                        .iter()
                        .map(|&x| x + 20.0 * (rng.gen::<f64>() - 0.5))
                        .collect()
                })
                .collect();
            (p, t)
        };
        let (p_small, t_small) = make(4, &mut rng);
        let (p_big, t_big) = make(512, &mut rng);
        let rank_small = template_attack(&templates, &p_small, &t_small).key_rank(key);
        let rank_big = template_attack(&templates, &p_big, &t_big).key_rank(key);
        assert!(rank_big <= rank_small, "{rank_big} !<= {rank_small}");
        assert_eq!(rank_big, 0);
    }

    #[test]
    #[should_panic(expected = "every class needs profiling traces")]
    fn profiling_requires_full_class_coverage() {
        let mut set = ClassifiedTraces::new(16, 1);
        set.push(0, vec![1.0]);
        let _ = TemplateSet::profile(&set);
    }

    #[test]
    #[should_panic]
    fn attack_rejects_empty_traces() {
        let templates = TemplateSet::profile(&profiling_set(0.4, 10));
        let _ = template_attack(&templates, &[], &[]);
    }

    #[test]
    #[should_panic]
    fn attack_rejects_mismatched_lengths() {
        let templates = TemplateSet::profile(&profiling_set(0.4, 11));
        let _ = template_attack(&templates, &[0x1, 0x2], &[signature(0)]);
    }

    #[test]
    #[should_panic]
    fn distance_rejects_wrong_trace_length() {
        let templates = TemplateSet::profile(&profiling_set(0.4, 12));
        let _ = templates.distance(&[1.0, 2.0], 0);
    }

    /// A noise-free profiling sample (zero within-class variance) takes
    /// the clamped-weight path and stays finite — and because such a
    /// sample discriminates perfectly, classification still succeeds.
    #[test]
    fn noise_free_samples_keep_distances_finite() {
        let mut set = ClassifiedTraces::new(16, 4);
        for t in 0..16u8 {
            for _ in 0..4 {
                set.push(usize::from(t), signature(t));
            }
        }
        let templates = TemplateSet::profile(&set);
        for t in 0..16u8 {
            let d = templates.distance(&signature(t), usize::from(t));
            assert!(d.is_finite());
            assert_eq!(d, 0.0);
            assert_eq!(templates.classify(&signature(t)), usize::from(t));
        }
    }
}
