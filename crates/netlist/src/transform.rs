//! Netlist transformations: dead-logic sweep, delay balancing, and
//! surgical fault injection.
//!
//! Delay balancing is the classic glitch countermeasure (the
//! "conservative" strategy of the paper's introduction — eliminate the
//! races instead of tolerating them): buffers are inserted on early
//! gate inputs until every pin of a gate sees (approximately) the same
//! worst-case arrival time, so reconvergent paths stop producing spurious
//! transitions. The `experiments` crate uses it to ablate how much of
//! each scheme's leakage is glitch-borne.
//!
//! [`rewire_input`] and [`observe_product`] are the mutation primitives
//! behind the `sca-verify` crate's self-tests: they let a test deliberately
//! break a masked netlist (reuse a refresh mask, recombine two shares
//! through one AND) and assert the static analyzer pinpoints the injected
//! defect.

use std::collections::HashMap;

use crate::timing::analyze;
use crate::{CellType, GateId, NetId, Netlist, NetlistBuilder, NetlistError};

/// Remove gates that drive no primary output (directly or transitively).
///
/// # Errors
///
/// Propagates [`NetlistError`] from rebuilding (cannot occur for a valid
/// input netlist, but the signature keeps the contract explicit).
pub fn sweep_dead_gates(netlist: &Netlist) -> Result<Netlist, NetlistError> {
    // Mark live nets backwards from the outputs.
    let mut live = vec![false; netlist.nets().len()];
    let mut stack: Vec<NetId> = netlist.outputs().iter().map(|(_, n)| *n).collect();
    while let Some(n) = stack.pop() {
        if live[n.index()] {
            continue;
        }
        live[n.index()] = true;
        if let Some(gid) = netlist.net(n).driver() {
            stack.extend(netlist.gate(gid).inputs().iter().copied());
        }
    }
    rebuild(netlist, |gid| live[netlist.gate(gid).output().index()], 0.0)
}

/// Insert buffer chains so every gate's input pins see arrival times
/// matched to within `tolerance_ps` (of the slowest pin), using nominal
/// cell delays.
///
/// Balancing eliminates the glitch windows at the cost of area and power
/// — the exact trade the paper's "conservative" school accepts.
///
/// # Errors
///
/// Propagates [`NetlistError`] from rebuilding.
pub fn balance_delays(netlist: &Netlist, tolerance_ps: f64) -> Result<Netlist, NetlistError> {
    assert!(tolerance_ps >= 0.0);
    rebuild(netlist, |_| true, tolerance_ps)
}

/// Re-emit `netlist` keeping only gates where `keep` holds, optionally
/// padding input-arrival skews larger than `balance_tolerance_ps` (> 0
/// enables balancing).
fn rebuild(
    netlist: &Netlist,
    keep: impl Fn(crate::GateId) -> bool,
    balance_tolerance_ps: f64,
) -> Result<Netlist, NetlistError> {
    let balancing = balance_tolerance_ps > 0.0;
    let timing = analyze(netlist);
    let buf_delay = CellType::Buf.delay_ps();
    let mut b = NetlistBuilder::new(format!(
        "{}{}",
        netlist.name(),
        if balancing { "_balanced" } else { "_swept" }
    ));
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    for &old in netlist.inputs() {
        let name = netlist.net(old).name().unwrap_or("in").to_string();
        map.insert(old, b.input(name));
    }
    for &gid in netlist.topo_order() {
        if !keep(gid) {
            continue;
        }
        let gate = netlist.gate(gid);
        let target = gate
            .inputs()
            .iter()
            .map(|n| timing.arrival_ps[n.index()])
            .fold(0.0, f64::max);
        let inputs: Vec<NetId> = gate
            .inputs()
            .iter()
            .map(|n| {
                let mut mapped = map[n];
                if balancing {
                    let lag = target - timing.arrival_ps[n.index()];
                    if lag > balance_tolerance_ps {
                        let chains = (lag / buf_delay).round().max(1.0) as usize;
                        for _ in 0..chains {
                            mapped = b.buf(mapped);
                        }
                    }
                }
                mapped
            })
            .collect();
        let out = b.gate(gate.cell(), &inputs);
        map.insert(gate.output(), out);
    }
    for (name, net) in netlist.outputs() {
        b.output(name.clone(), map[net]);
    }
    b.finish()
}

/// Re-emit `netlist` with pin `pin` of `gate` redriven by `new_source`
/// (a fault-injection primitive: e.g. point a masking gadget at an
/// already-spent refresh bit). Gate and net ids are preserved: the rebuilt
/// netlist has identical gate order, so diagnostics in the mutant map
/// one-to-one onto the original.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if `new_source` does not
/// precede `gate` topologically (the rewire would create a cycle), and
/// propagates validation errors from rebuilding.
///
/// # Panics
///
/// Panics if `gate` or `pin` is out of range.
pub fn rewire_input(
    netlist: &Netlist,
    gate: GateId,
    pin: usize,
    new_source: NetId,
) -> Result<Netlist, NetlistError> {
    assert!(gate.index() < netlist.gates().len(), "gate out of range");
    assert!(
        pin < netlist.gate(gate).inputs().len(),
        "pin {pin} out of range for {}",
        netlist.gate(gate).cell().mnemonic()
    );
    let mut b = NetlistBuilder::new(format!("{}_rewired", netlist.name()));
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    for &old in netlist.inputs() {
        let name = netlist.net(old).name().unwrap_or("in").to_string();
        map.insert(old, b.input(name));
    }
    // Gate ids in a builder-grown netlist are emission order, which is
    // topological; walking them in id order keeps ids stable and makes a
    // forward reference (the would-be cycle) show up as an unmapped source.
    for (idx, g) in netlist.gates().iter().enumerate() {
        let inputs: Result<Vec<NetId>, NetlistError> = g
            .inputs()
            .iter()
            .enumerate()
            .map(|(p, n)| {
                let src = if idx == gate.index() && p == pin {
                    new_source
                } else {
                    *n
                };
                map.get(&src)
                    .copied()
                    .ok_or(NetlistError::CombinationalCycle)
            })
            .collect();
        let out = b.gate(g.cell(), &inputs?);
        map.insert(g.output(), out);
    }
    for (name, net) in netlist.outputs() {
        b.output(name.clone(), map[net]);
    }
    b.finish()
}

/// Append an AND2 observing `a ∧ b` and expose it as primary output
/// `name` (a fault-injection primitive: recombine two shares through one
/// gate). Returns the mutant and the id of the injected gate — existing
/// gate and net ids are preserved, so the caller can assert a static
/// analyzer flags exactly the injected gate.
///
/// # Errors
///
/// Propagates validation errors from rebuilding (e.g. a duplicate output
/// name).
///
/// # Panics
///
/// Panics if `a` or `b` is out of range.
pub fn observe_product(
    netlist: &Netlist,
    a: NetId,
    b: NetId,
    name: &str,
) -> Result<(Netlist, GateId), NetlistError> {
    assert!(a.index() < netlist.nets().len(), "net a out of range");
    assert!(b.index() < netlist.nets().len(), "net b out of range");
    let mut builder = NetlistBuilder::new(format!("{}_observed", netlist.name()));
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    for &old in netlist.inputs() {
        let n = netlist.net(old).name().unwrap_or("in").to_string();
        map.insert(old, builder.input(n));
    }
    for g in netlist.gates() {
        let inputs: Vec<NetId> = g.inputs().iter().map(|n| map[n]).collect();
        let out = builder.gate(g.cell(), &inputs);
        map.insert(g.output(), out);
    }
    let probe = builder.gate(CellType::And2, &[map[&a], map[&b]]);
    let injected = GateId(netlist.gates().len() as u32);
    for (out_name, net) in netlist.outputs() {
        builder.output(out_name.clone(), map[net]);
    }
    builder.output(name, probe);
    Ok((builder.finish()?, injected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing;
    use crate::NetlistBuilder;

    fn with_dead_gate() -> Netlist {
        let mut b = NetlistBuilder::new("dead");
        let a = b.input("a");
        let keep = b.not(a);
        let _dead = b.xor(a, keep); // drives nothing
        b.output("y", keep);
        b.finish().expect("valid")
    }

    #[test]
    fn sweep_removes_unobservable_logic() {
        let nl = with_dead_gate();
        assert_eq!(nl.gates().len(), 2);
        let swept = sweep_dead_gates(&nl).expect("rebuild");
        assert_eq!(swept.gates().len(), 1);
        for t in 0..2u64 {
            assert_eq!(swept.evaluate_word(t), nl.evaluate_word(t));
        }
    }

    fn skewed() -> Netlist {
        let mut b = NetlistBuilder::new("skew");
        let a = b.input("a");
        let c = b.input("b");
        let d1 = b.not(a);
        let d2 = b.not(d1);
        let d3 = b.not(d2);
        let d4 = b.not(d3);
        let y = b.xor(d4, c);
        b.output("y", y);
        b.finish().expect("valid")
    }

    #[test]
    fn balancing_preserves_function() {
        let nl = skewed();
        let balanced = balance_delays(&nl, 1.0).expect("rebuild");
        for t in 0..4u64 {
            assert_eq!(balanced.evaluate_word(t), nl.evaluate_word(t));
        }
    }

    #[test]
    fn balancing_shrinks_input_skew() {
        let nl = skewed();
        let before = timing::analyze(&nl).total_skew_ps(&nl);
        let balanced = balance_delays(&nl, 1.0).expect("rebuild");
        let after = timing::analyze(&balanced).total_skew_ps(&balanced);
        assert!(
            after < 0.6 * before,
            "skew should shrink: {before} → {after}"
        );
        assert!(
            balanced.gates().len() > nl.gates().len(),
            "buffers must have been inserted"
        );
    }

    #[test]
    fn rewire_redirects_exactly_one_pin() {
        // y = (a ⊕ b) ⊕ c; rewire the second XOR's pin 1 from c to a:
        // y' = (a ⊕ b) ⊕ a = b.
        let mut b = NetlistBuilder::new("rw");
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.input("c");
        let x = b.xor(a, bb);
        let y = b.xor(x, c);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let mutant = rewire_input(&nl, GateId(1), 1, a).expect("rewire");
        assert_eq!(mutant.gates().len(), nl.gates().len());
        for t in 0..8u64 {
            assert_eq!(mutant.evaluate_word(t), (t >> 1) & 1, "t={t}");
        }
    }

    #[test]
    fn rewire_to_a_later_net_is_a_cycle_error() {
        let mut b = NetlistBuilder::new("rwc");
        let a = b.input("a");
        let x = b.not(a);
        let y = b.not(x);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let later = nl.gate(GateId(1)).output();
        assert_eq!(
            rewire_input(&nl, GateId(0), 0, later).unwrap_err(),
            NetlistError::CombinationalCycle
        );
    }

    #[test]
    fn observe_product_appends_one_and_gate() {
        let mut b = NetlistBuilder::new("obs");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.xor(a, c);
        b.output("x", x);
        let nl = b.finish().expect("valid");
        let (mutant, injected) =
            observe_product(&nl, nl.inputs()[0], nl.inputs()[1], "probe").expect("observe");
        assert_eq!(injected.index(), nl.gates().len());
        assert_eq!(mutant.gates().len(), nl.gates().len() + 1);
        assert_eq!(mutant.num_outputs(), 2);
        for t in 0..4u64 {
            let out = mutant.evaluate_word(t);
            assert_eq!(out & 1, (t & 1) ^ ((t >> 1) & 1), "function preserved");
            assert_eq!((out >> 1) & 1, (t & 1) & ((t >> 1) & 1), "probe is AND");
        }
    }

    #[test]
    fn balancing_an_already_balanced_tree_is_a_noop() {
        let mut b = NetlistBuilder::new("flat");
        let x = b.input_bus("x", 4);
        let y = b.and(&x);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let balanced = balance_delays(&nl, 1.0).expect("rebuild");
        assert_eq!(balanced.gates().len(), nl.gates().len());
    }
}
