//! Netlist transformations: dead-logic sweep and delay balancing.
//!
//! Delay balancing is the classic glitch countermeasure (the
//! "conservative" strategy of the paper's introduction — eliminate the
//! races instead of tolerating them): buffers are inserted on early
//! gate inputs until every pin of a gate sees (approximately) the same
//! worst-case arrival time, so reconvergent paths stop producing spurious
//! transitions. The `experiments` crate uses it to ablate how much of
//! each scheme's leakage is glitch-borne.

use std::collections::HashMap;

use crate::timing::analyze;
use crate::{CellType, NetId, Netlist, NetlistBuilder, NetlistError};

/// Remove gates that drive no primary output (directly or transitively).
///
/// # Errors
///
/// Propagates [`NetlistError`] from rebuilding (cannot occur for a valid
/// input netlist, but the signature keeps the contract explicit).
pub fn sweep_dead_gates(netlist: &Netlist) -> Result<Netlist, NetlistError> {
    // Mark live nets backwards from the outputs.
    let mut live = vec![false; netlist.nets().len()];
    let mut stack: Vec<NetId> = netlist.outputs().iter().map(|(_, n)| *n).collect();
    while let Some(n) = stack.pop() {
        if live[n.index()] {
            continue;
        }
        live[n.index()] = true;
        if let Some(gid) = netlist.net(n).driver() {
            stack.extend(netlist.gate(gid).inputs().iter().copied());
        }
    }
    rebuild(netlist, |gid| live[netlist.gate(gid).output().index()], 0.0)
}

/// Insert buffer chains so every gate's input pins see arrival times
/// matched to within `tolerance_ps` (of the slowest pin), using nominal
/// cell delays.
///
/// Balancing eliminates the glitch windows at the cost of area and power
/// — the exact trade the paper's "conservative" school accepts.
///
/// # Errors
///
/// Propagates [`NetlistError`] from rebuilding.
pub fn balance_delays(netlist: &Netlist, tolerance_ps: f64) -> Result<Netlist, NetlistError> {
    assert!(tolerance_ps >= 0.0);
    rebuild(netlist, |_| true, tolerance_ps)
}

/// Re-emit `netlist` keeping only gates where `keep` holds, optionally
/// padding input-arrival skews larger than `balance_tolerance_ps` (> 0
/// enables balancing).
fn rebuild(
    netlist: &Netlist,
    keep: impl Fn(crate::GateId) -> bool,
    balance_tolerance_ps: f64,
) -> Result<Netlist, NetlistError> {
    let balancing = balance_tolerance_ps > 0.0;
    let timing = analyze(netlist);
    let buf_delay = CellType::Buf.delay_ps();
    let mut b = NetlistBuilder::new(format!(
        "{}{}",
        netlist.name(),
        if balancing { "_balanced" } else { "_swept" }
    ));
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    for &old in netlist.inputs() {
        let name = netlist.net(old).name().unwrap_or("in").to_string();
        map.insert(old, b.input(name));
    }
    for &gid in netlist.topo_order() {
        if !keep(gid) {
            continue;
        }
        let gate = netlist.gate(gid);
        let target = gate
            .inputs()
            .iter()
            .map(|n| timing.arrival_ps[n.index()])
            .fold(0.0, f64::max);
        let inputs: Vec<NetId> = gate
            .inputs()
            .iter()
            .map(|n| {
                let mut mapped = map[n];
                if balancing {
                    let lag = target - timing.arrival_ps[n.index()];
                    if lag > balance_tolerance_ps {
                        let chains = (lag / buf_delay).round().max(1.0) as usize;
                        for _ in 0..chains {
                            mapped = b.buf(mapped);
                        }
                    }
                }
                mapped
            })
            .collect();
        let out = b.gate(gate.cell(), &inputs);
        map.insert(gate.output(), out);
    }
    for (name, net) in netlist.outputs() {
        b.output(name.clone(), map[net]);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing;
    use crate::NetlistBuilder;

    fn with_dead_gate() -> Netlist {
        let mut b = NetlistBuilder::new("dead");
        let a = b.input("a");
        let keep = b.not(a);
        let _dead = b.xor(a, keep); // drives nothing
        b.output("y", keep);
        b.finish().expect("valid")
    }

    #[test]
    fn sweep_removes_unobservable_logic() {
        let nl = with_dead_gate();
        assert_eq!(nl.gates().len(), 2);
        let swept = sweep_dead_gates(&nl).expect("rebuild");
        assert_eq!(swept.gates().len(), 1);
        for t in 0..2u64 {
            assert_eq!(swept.evaluate_word(t), nl.evaluate_word(t));
        }
    }

    fn skewed() -> Netlist {
        let mut b = NetlistBuilder::new("skew");
        let a = b.input("a");
        let c = b.input("b");
        let d1 = b.not(a);
        let d2 = b.not(d1);
        let d3 = b.not(d2);
        let d4 = b.not(d3);
        let y = b.xor(d4, c);
        b.output("y", y);
        b.finish().expect("valid")
    }

    #[test]
    fn balancing_preserves_function() {
        let nl = skewed();
        let balanced = balance_delays(&nl, 1.0).expect("rebuild");
        for t in 0..4u64 {
            assert_eq!(balanced.evaluate_word(t), nl.evaluate_word(t));
        }
    }

    #[test]
    fn balancing_shrinks_input_skew() {
        let nl = skewed();
        let before = timing::analyze(&nl).total_skew_ps(&nl);
        let balanced = balance_delays(&nl, 1.0).expect("rebuild");
        let after = timing::analyze(&balanced).total_skew_ps(&balanced);
        assert!(
            after < 0.6 * before,
            "skew should shrink: {before} → {after}"
        );
        assert!(
            balanced.gates().len() > nl.gates().len(),
            "buffers must have been inserted"
        );
    }

    #[test]
    fn balancing_an_already_balanced_tree_is_a_noop() {
        let mut b = NetlistBuilder::new("flat");
        let x = b.input_bus("x", 4);
        let y = b.and(&x);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let balanced = balance_delays(&nl, 1.0).expect("rebuild");
        assert_eq!(balanced.gates().len(), nl.gates().len());
    }
}
