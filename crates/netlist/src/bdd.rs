//! A small reduced, ordered BDD package for formal equivalence checking.
//!
//! Exhaustive simulation verifies the S-box netlists up to 16 inputs;
//! BDDs verify them *structurally* and scale past the point where
//! enumeration stops being attractive. `check_equivalence` proves two
//! netlists compute identical functions (same input count assumed to mean
//! same input ordering).

use std::collections::HashMap;

use crate::Netlist;

/// Index of a BDD node inside a [`Bdd`] manager (0 = false, 1 = true).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

/// The constant-false terminal.
pub const FALSE: NodeId = NodeId(0);
/// The constant-true terminal.
pub const TRUE: NodeId = NodeId(1);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    low: NodeId,
    high: NodeId,
}

/// A reduced ordered BDD manager with hash-consed nodes and a memoized
/// `ite` (if-then-else) operation.
///
/// # Example
///
/// ```
/// use sbox_netlist::bdd::Bdd;
///
/// let mut bdd = Bdd::new(2);
/// let a = bdd.var(0);
/// let b = bdd.var(1);
/// let axb = bdd.xor(a, b);
/// let bxa = bdd.xor(b, a);
/// assert_eq!(axb, bxa); // canonical: equal functions are equal nodes
/// ```
#[derive(Debug, Clone)]
pub struct Bdd {
    num_vars: u32,
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeId>,
    ite_cache: HashMap<(NodeId, NodeId, NodeId), NodeId>,
}

impl Bdd {
    /// Create a manager over `num_vars` variables (ordering = index
    /// order).
    pub fn new(num_vars: usize) -> Self {
        let terminal = |var| Node {
            var,
            low: FALSE,
            high: FALSE,
        };
        // Two sentinel terminal records; never dereferenced through `var`.
        Self {
            num_vars: num_vars as u32,
            nodes: vec![terminal(u32::MAX), terminal(u32::MAX)],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
        }
    }

    /// Number of live nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn mk(&mut self, var: u32, low: NodeId, high: NodeId) -> NodeId {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    /// The BDD of a single variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn var(&mut self, var: usize) -> NodeId {
        assert!((var as u32) < self.num_vars, "variable out of range");
        self.mk(var as u32, FALSE, TRUE)
    }

    fn var_of(&self, n: NodeId) -> u32 {
        if n == FALSE || n == TRUE {
            u32::MAX
        } else {
            self.nodes[n.0 as usize].var
        }
    }

    fn cofactors(&self, n: NodeId, var: u32) -> (NodeId, NodeId) {
        if self.var_of(n) == var {
            let node = self.nodes[n.0 as usize];
            (node.low, node.high)
        } else {
            (n, n)
        }
    }

    /// If-then-else: the universal BDD combinator.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        if f == TRUE {
            return g;
        }
        if f == FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        if let Some(&cached) = self.ite_cache.get(&(f, g, h)) {
            return cached;
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let result = self.mk(top, low, high);
        self.ite_cache.insert((f, g, h), result);
        result
    }

    /// Negation.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        self.ite(f, FALSE, TRUE)
    }

    /// Conjunction.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Evaluate a node under an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < num_vars` referenced on the path.
    pub fn evaluate(&self, mut n: NodeId, assignment: &[bool]) -> bool {
        while n != FALSE && n != TRUE {
            let node = self.nodes[n.0 as usize];
            n = if assignment[node.var as usize] {
                node.high
            } else {
                node.low
            };
        }
        n == TRUE
    }

    /// Build the BDDs of every primary output of a netlist (input `i` of
    /// the netlist is variable `i`).
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more inputs than the manager has
    /// variables.
    pub fn of_netlist(&mut self, netlist: &Netlist) -> Vec<NodeId> {
        assert!(netlist.num_inputs() as u32 <= self.num_vars);
        let mut net_fn: Vec<NodeId> = vec![FALSE; netlist.nets().len()];
        for (i, &n) in netlist.inputs().iter().enumerate() {
            net_fn[n.index()] = self.var(i);
        }
        for &gid in netlist.topo_order() {
            let gate = netlist.gate(gid);
            let ins: Vec<NodeId> = gate.inputs().iter().map(|n| net_fn[n.index()]).collect();
            use crate::CellType::*;
            let out = match gate.cell() {
                Inv => self.not(ins[0]),
                Buf => ins[0],
                Xor2 => self.xor(ins[0], ins[1]),
                Xnor2 => {
                    let x = self.xor(ins[0], ins[1]);
                    self.not(x)
                }
                And2 | And3 | And4 => ins[1..].iter().fold(ins[0], |acc, &x| self.and(acc, x)),
                Or2 | Or3 | Or4 => ins[1..].iter().fold(ins[0], |acc, &x| self.or(acc, x)),
                Nand2 | Nand3 | Nand4 => {
                    let a = ins[1..].iter().fold(ins[0], |acc, &x| self.and(acc, x));
                    self.not(a)
                }
                Nor2 | Nor3 | Nor4 => {
                    let o = ins[1..].iter().fold(ins[0], |acc, &x| self.or(acc, x));
                    self.not(o)
                }
            };
            net_fn[gate.output().index()] = out;
        }
        netlist
            .outputs()
            .iter()
            .map(|(_, n)| net_fn[n.index()])
            .collect()
    }
}

/// Formally check that two netlists with identical input ordering compute
/// identical outputs. Returns the index of the first differing output, or
/// `None` if equivalent.
///
/// # Panics
///
/// Panics if the netlists differ in input or output count.
pub fn check_equivalence(a: &Netlist, b: &Netlist) -> Option<usize> {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    let mut bdd = Bdd::new(a.num_inputs());
    let fa = bdd.of_netlist(a);
    let fb = bdd.of_netlist(b);
    fa.iter().zip(&fb).position(|(x, y)| x != y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn canonicity_makes_equal_functions_equal_nodes() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        // (a ∧ b) ∨ c  ==  ¬(¬c ∧ ¬(a ∧ b))
        let ab = bdd.and(a, b);
        let lhs = bdd.or(ab, c);
        let nc = bdd.not(c);
        let nab = bdd.not(ab);
        let inner = bdd.and(nc, nab);
        let rhs = bdd.not(inner);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn evaluate_matches_semantics() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.xor(a, b);
        for t in 0..4u32 {
            let assign = [t & 1 == 1, t >> 1 == 1];
            assert_eq!(bdd.evaluate(f, &assign), assign[0] ^ assign[1]);
        }
    }

    fn mux_via_gates() -> Netlist {
        let mut b = NetlistBuilder::new("mux1");
        let s = b.input("s");
        let x = b.input("x");
        let y = b.input("y");
        let ns = b.not(s);
        let hi = b.and(&[s, x]);
        let lo = b.and(&[ns, y]);
        let out = b.or(&[hi, lo]);
        b.output("o", out);
        b.finish().expect("valid")
    }

    fn mux_via_xor() -> Netlist {
        // o = y ⊕ (s ∧ (x ⊕ y)) — the same mux, different structure.
        let mut b = NetlistBuilder::new("mux2");
        let s = b.input("s");
        let x = b.input("x");
        let y = b.input("y");
        let d = b.xor(x, y);
        let g = b.and(&[s, d]);
        let out = b.xor(y, g);
        b.output("o", out);
        b.finish().expect("valid")
    }

    #[test]
    fn equivalent_structures_prove_equal() {
        assert_eq!(check_equivalence(&mux_via_gates(), &mux_via_xor()), None);
    }

    #[test]
    fn differing_netlists_report_the_output() {
        let mut b = NetlistBuilder::new("nand_not_and");
        let s = b.input("s");
        let x = b.input("x");
        let y = b.input("y");
        let _ = s;
        let out = b.gate(crate::CellType::Nand2, &[x, y]);
        b.output("o", out);
        let other = b.finish().expect("valid");
        assert_eq!(check_equivalence(&mux_via_gates(), &other), Some(0));
    }
}
