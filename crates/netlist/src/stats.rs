//! Gate-mix / area / depth report — one column of the paper's Table I.

use std::collections::BTreeMap;
use std::fmt;

use crate::Netlist;

/// Summary statistics of a [`Netlist`], mirroring the rows of the paper's
/// Table I ("Gate-level specification of the targeted S-Box
/// implementations").
///
/// # Example
///
/// ```
/// use sbox_netlist::{CellType, NetlistBuilder};
///
/// # fn main() -> Result<(), sbox_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("pair");
/// let a = b.input("a");
/// let c = b.input("b");
/// let x = b.gate(CellType::Nand2, &[a, c]);
/// let y = b.not(x);
/// b.output("y", y);
/// let stats = b.finish()?.stats();
/// assert_eq!(stats.total_gates, 2);
/// assert_eq!(stats.family_count("NAND"), 1);
/// assert_eq!(stats.family_count("INV"), 1);
/// assert_eq!(stats.delay_gates, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Netlist name.
    pub name: String,
    /// Gate count per family ("AND", "OR", "XOR", "INV", "BUF", "NAND",
    /// "NOR", "XNOR").
    pub family_counts: BTreeMap<&'static str, usize>,
    /// Total number of gate instances.
    pub total_gates: usize,
    /// Area normalized to NAND2 equivalents.
    pub equivalent_gates: f64,
    /// Critical path length in gates.
    pub delay_gates: u32,
    /// Critical path delay in picoseconds (nominal corner).
    pub delay_ps: f64,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
}

impl NetlistStats {
    pub(crate) fn from_netlist(netlist: &Netlist) -> Self {
        let mut family_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut equivalent_gates = 0.0;
        for g in netlist.gates() {
            *family_counts.entry(g.cell().family()).or_insert(0) += 1;
            equivalent_gates += g.cell().equivalent_gates();
        }
        Self {
            name: netlist.name().to_string(),
            family_counts,
            total_gates: netlist.gates().len(),
            equivalent_gates,
            delay_gates: netlist.critical_path_gates(),
            delay_ps: netlist.critical_path_ps(),
            num_inputs: netlist.num_inputs(),
            num_outputs: netlist.num_outputs(),
        }
    }

    /// Gate count for one family label (e.g. `"AND"`), zero if absent.
    pub fn family_count(&self, family: &str) -> usize {
        self.family_counts.get(family).copied().unwrap_or(0)
    }

    /// The family labels in Table I row order.
    pub const TABLE_ONE_FAMILIES: [&'static str; 8] =
        ["AND", "OR", "XOR", "INV", "BUF", "NAND", "NOR", "XNOR"];
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "netlist `{}`:", self.name)?;
        for fam in Self::TABLE_ONE_FAMILIES {
            writeln!(f, "  # {:<5} {}", fam, self.family_count(fam))?;
        }
        writeln!(f, "  total gates      {}", self.total_gates)?;
        writeln!(f, "  equivalent gates {:.1}", self.equivalent_gates)?;
        writeln!(
            f,
            "  delay            {} gates ({:.0} ps)",
            self.delay_gates, self.delay_ps
        )?;
        write!(
            f,
            "  ports            {} in / {} out",
            self.num_inputs, self.num_outputs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellType, NetlistBuilder};

    #[test]
    fn counts_and_area_accumulate() {
        let mut b = NetlistBuilder::new("mix");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.xor(a, c);
        let y = b.and(&[a, x]);
        let z = b.not(y);
        b.output("z", z);
        let stats = b.finish().expect("valid").stats();
        assert_eq!(stats.family_count("XOR"), 1);
        assert_eq!(stats.family_count("AND"), 1);
        assert_eq!(stats.family_count("INV"), 1);
        assert_eq!(stats.total_gates, 3);
        let expect = CellType::Xor2.equivalent_gates()
            + CellType::And2.equivalent_gates()
            + CellType::Inv.equivalent_gates();
        assert!((stats.equivalent_gates - expect).abs() < 1e-9);
        assert_eq!(stats.delay_gates, 3);
    }

    #[test]
    fn display_mentions_every_family() {
        let mut b = NetlistBuilder::new("one");
        let a = b.input("a");
        let z = b.not(a);
        b.output("z", z);
        let text = b.finish().expect("valid").stats().to_string();
        for fam in NetlistStats::TABLE_ONE_FAMILIES {
            assert!(text.contains(fam), "missing {fam} in report");
        }
    }
}
