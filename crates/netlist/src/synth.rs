//! Two-level logic synthesis: truth tables → AND/OR/INV netlists.
//!
//! This is the small EDA substrate used by the tabulated S-box generators:
//! a Quine–McCluskey prime-implicant pass followed by a greedy cover, and an
//! emitter that maps the resulting sum-of-products onto the cell library
//! with shared input inverters and shared product terms.
//!
//! # Example
//!
//! Synthesize a 2-input XOR from its truth table:
//!
//! ```
//! use sbox_netlist::NetlistBuilder;
//! use sbox_netlist::synth::TruthTable;
//!
//! # fn main() -> Result<(), sbox_netlist::NetlistError> {
//! let tt = TruthTable::from_fn(2, 1, |t| u64::from((t ^ (t >> 1)) & 1));
//! let mut b = NetlistBuilder::new("xor_sop");
//! let ins = b.input_bus("x", 2);
//! let outs = tt.synthesize_sop(&mut b, &ins);
//! b.output_bus("y", &outs);
//! let nl = b.finish()?;
//! assert_eq!(nl.truth_table(), vec![0, 1, 1, 0]);
//! # Ok(())
//! # }
//! ```

use std::collections::{HashMap, HashSet};

use crate::{NetId, NetlistBuilder};

/// A multi-output boolean function tabulated over all `2^num_inputs` points.
///
/// Entry `t` packs the outputs for the input assignment whose bit `i` is
/// `(t >> i) & 1` (little-endian, matching [`crate::Netlist::evaluate_word`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthTable {
    num_inputs: usize,
    num_outputs: usize,
    words: Vec<u64>,
}

impl TruthTable {
    /// Build a table by evaluating `f` on every input word.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 20` or `num_outputs > 64`.
    pub fn from_fn(num_inputs: usize, num_outputs: usize, f: impl Fn(u64) -> u64) -> Self {
        assert!(num_inputs <= 20, "truth table too large");
        assert!(num_outputs <= 64);
        let words = (0..1u64 << num_inputs).map(f).collect();
        Self {
            num_inputs,
            num_outputs,
            words,
        }
    }

    /// Wrap an existing table.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != 2^num_inputs`.
    pub fn from_words(num_inputs: usize, num_outputs: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), 1usize << num_inputs);
        assert!(num_outputs <= 64);
        Self {
            num_inputs,
            num_outputs,
            words,
        }
    }

    /// Number of input variables.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output bits.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// The packed output word for input word `t`.
    pub fn output(&self, t: u64) -> u64 {
        self.words[t as usize]
    }

    /// Minterms (input words) for which output bit `bit` is 1.
    pub fn on_set(&self, bit: usize) -> Vec<u32> {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, &w)| (w >> bit) & 1 == 1)
            .map(|(t, _)| t as u32)
            .collect()
    }

    /// Emit a two-level (SOP) realization of every output into `builder`,
    /// reading the variables from `inputs`; returns one net per output bit.
    ///
    /// Product terms and input inverters are shared across outputs.
    /// Constant-0 / constant-1 outputs are realized as `x0 ∧ ¬x0` /
    /// `x0 ∨ ¬x0` so the result is always a pure gate network.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()` or the table has zero
    /// inputs.
    pub fn synthesize_sop(&self, builder: &mut NetlistBuilder, inputs: &[NetId]) -> Vec<NetId> {
        self.synthesize_sop_with_cap(builder, inputs, self.num_inputs)
    }

    /// Like [`TruthTable::synthesize_sop`] but limiting the
    /// Quine–McCluskey merging to `max_rounds` passes — bounded runtime on
    /// wide tables at the cost of some minimality.
    ///
    /// # Panics
    ///
    /// As for [`TruthTable::synthesize_sop`].
    pub fn synthesize_sop_with_cap(
        &self,
        builder: &mut NetlistBuilder,
        inputs: &[NetId],
        max_rounds: usize,
    ) -> Vec<NetId> {
        assert_eq!(inputs.len(), self.num_inputs);
        assert!(self.num_inputs > 0, "cannot synthesize a 0-input table");
        let mut inverted: Vec<Option<NetId>> = vec![None; inputs.len()];
        let mut product_cache: HashMap<Implicant, NetId> = HashMap::new();
        let mut outs = Vec::with_capacity(self.num_outputs);
        for bit in 0..self.num_outputs {
            let on = self.on_set(bit);
            if on.is_empty() {
                let n0 = literal(builder, inputs, &mut inverted, 0, false);
                let p0 = literal(builder, inputs, &mut inverted, 0, true);
                outs.push(builder.and(&[p0, n0]));
                continue;
            }
            if on.len() == self.words.len() {
                let n0 = literal(builder, inputs, &mut inverted, 0, false);
                let p0 = literal(builder, inputs, &mut inverted, 0, true);
                outs.push(builder.or(&[p0, n0]));
                continue;
            }
            let primes = prime_implicants_capped(&on, self.num_inputs, max_rounds);
            let cover = greedy_cover(&on, &primes);
            let mut terms = Vec::with_capacity(cover.len());
            for imp in cover {
                let net = *product_cache
                    .entry(imp)
                    .or_insert_with(|| emit_product(builder, inputs, &mut inverted, imp));
                terms.push(net);
            }
            outs.push(builder.or(&terms));
        }
        outs
    }
}

/// A cube over the input variables: variable `i` is cared about iff bit `i`
/// of `mask` is set, in which case its required value is bit `i` of `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Implicant {
    /// Care mask (1 = literal present).
    pub mask: u32,
    /// Required values on care positions (don't-care positions are 0).
    pub value: u32,
}

impl Implicant {
    /// Whether the cube contains the given minterm.
    pub fn covers(&self, minterm: u32) -> bool {
        minterm & self.mask == self.value
    }

    /// Number of literals in the cube.
    pub fn literal_count(&self) -> u32 {
        self.mask.count_ones()
    }
}

/// Compute all prime implicants of the on-set `minterms` over `num_vars`
/// variables (classic Quine–McCluskey merging).
///
/// # Panics
///
/// Panics if `num_vars > 20`.
pub fn prime_implicants(minterms: &[u32], num_vars: usize) -> Vec<Implicant> {
    prime_implicants_capped(minterms, num_vars, num_vars)
}

/// Quine–McCluskey merging limited to `max_rounds` passes. The result is a
/// valid implicant set covering exactly the on-set (cubes stop growing
/// after the cap), trading minimality for bounded runtime on wide
/// functions.
///
/// # Panics
///
/// Panics if `num_vars > 20`.
pub fn prime_implicants_capped(
    minterms: &[u32],
    num_vars: usize,
    max_rounds: usize,
) -> Vec<Implicant> {
    assert!(num_vars <= 20);
    let full_mask = if num_vars == 32 {
        u32::MAX
    } else {
        (1u32 << num_vars) - 1
    };
    let mut current: HashSet<Implicant> = minterms
        .iter()
        .map(|&m| Implicant {
            mask: full_mask,
            value: m,
        })
        .collect();
    let mut primes: Vec<Implicant> = Vec::new();
    let mut rounds = 0usize;
    while !current.is_empty() {
        if rounds >= max_rounds {
            primes.extend(current.iter());
            break;
        }
        rounds += 1;
        let mut merged: HashSet<Implicant> = HashSet::new();
        let mut used: HashSet<Implicant> = HashSet::new();
        // Group by (mask, popcount of value) so candidate pairs differ in
        // exactly one care bit.
        let mut groups: HashMap<(u32, u32), Vec<Implicant>> = HashMap::new();
        for imp in &current {
            groups
                .entry((imp.mask, imp.value.count_ones()))
                .or_default()
                .push(*imp);
        }
        for (&(mask, ones), group) in &groups {
            if let Some(next) = groups.get(&(mask, ones + 1)) {
                for a in group {
                    for b in next {
                        let diff = a.value ^ b.value;
                        if diff.count_ones() == 1 {
                            used.insert(*a);
                            used.insert(*b);
                            merged.insert(Implicant {
                                mask: mask & !diff,
                                value: a.value & !diff,
                            });
                        }
                    }
                }
            }
        }
        primes.extend(current.iter().filter(|i| !used.contains(i)));
        current = merged;
    }
    primes.sort_by_key(|i| (i.mask, i.value));
    primes
}

/// Select a small cover of `minterms` from `primes`: essential primes first,
/// then repeatedly the prime covering the most uncovered minterms (ties
/// broken toward fewer literals).
pub fn greedy_cover(minterms: &[u32], primes: &[Implicant]) -> Vec<Implicant> {
    let mut uncovered: HashSet<u32> = minterms.iter().copied().collect();
    let mut cover = Vec::new();
    // Essential primes: minterms covered by exactly one prime.
    for &m in minterms {
        let covering: Vec<&Implicant> = primes.iter().filter(|p| p.covers(m)).collect();
        if covering.len() == 1 && uncovered.contains(&m) {
            let p = *covering[0];
            if !cover.contains(&p) {
                cover.push(p);
                uncovered.retain(|&x| !p.covers(x));
            }
        }
    }
    while !uncovered.is_empty() {
        let best = primes
            .iter()
            .map(|p| {
                let gain = uncovered.iter().filter(|&&m| p.covers(m)).count();
                (gain, std::cmp::Reverse(p.literal_count()), *p)
            })
            .max_by_key(|&(gain, lits, _)| (gain, lits))
            .map(|(_, _, p)| p)
            .expect("primes cover all minterms");
        cover.push(best);
        uncovered.retain(|&m| !best.covers(m));
    }
    cover
}

/// Build a one-hot `2^n`-line decoder over `inputs`, sharing the complement
/// inverters; line `v` is high iff the input word equals `v`.
///
/// # Panics
///
/// Panics if `inputs` is empty or longer than 8.
pub fn decoder(builder: &mut NetlistBuilder, inputs: &[NetId]) -> Vec<NetId> {
    assert!(!inputs.is_empty() && inputs.len() <= 8);
    let complements: Vec<NetId> = inputs.iter().map(|&n| builder.not(n)).collect();
    (0..1u32 << inputs.len())
        .map(|v| {
            let literals: Vec<NetId> = inputs
                .iter()
                .enumerate()
                .map(|(i, &n)| if (v >> i) & 1 == 1 { n } else { complements[i] })
                .collect();
            builder.and(&literals)
        })
        .collect()
}

fn literal(
    builder: &mut NetlistBuilder,
    inputs: &[NetId],
    inverted: &mut [Option<NetId>],
    var: usize,
    positive: bool,
) -> NetId {
    if positive {
        inputs[var]
    } else {
        *inverted[var].get_or_insert_with(|| builder.not(inputs[var]))
    }
}

fn emit_product(
    builder: &mut NetlistBuilder,
    inputs: &[NetId],
    inverted: &mut [Option<NetId>],
    imp: Implicant,
) -> NetId {
    let lits: Vec<NetId> = (0..inputs.len())
        .filter(|&i| (imp.mask >> i) & 1 == 1)
        .map(|i| literal(builder, inputs, inverted, i, (imp.value >> i) & 1 == 1))
        .collect();
    builder.and(&lits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_synthesis(num_inputs: usize, num_outputs: usize, f: impl Fn(u64) -> u64 + Copy) {
        let tt = TruthTable::from_fn(num_inputs, num_outputs, f);
        let mut b = NetlistBuilder::new("sop");
        let ins = b.input_bus("x", num_inputs);
        let outs = tt.synthesize_sop(&mut b, &ins);
        b.output_bus("y", &outs);
        let nl = b.finish().expect("valid synthesis");
        for t in 0..1u64 << num_inputs {
            assert_eq!(nl.evaluate_word(t), f(t), "t={t}");
        }
    }

    #[test]
    fn synthesizes_xor_majority_parity() {
        check_synthesis(2, 1, |t| (t ^ (t >> 1)) & 1);
        check_synthesis(3, 1, |t| {
            u64::from((t & 1) + ((t >> 1) & 1) + ((t >> 2) & 1) >= 2)
        });
        check_synthesis(5, 1, |t| u64::from(t.count_ones() & 1));
    }

    #[test]
    fn synthesizes_constants() {
        check_synthesis(3, 2, |_| 0b01);
    }

    #[test]
    fn synthesizes_multi_output_adder() {
        check_synthesis(4, 3, |t| {
            let a = t & 3;
            let b = (t >> 2) & 3;
            a + b
        });
    }

    #[test]
    fn prime_implicants_of_textbook_example() {
        // f(w,x,y,z) = Σ m(4,8,10,11,12,15), the classic QM worked example:
        // primes are 8-9-10-11? (no 9) — use the known result for
        // minterms {4,8,10,11,12,15}: primes m(4,12)=-100, m(8,10)=10-0,
        // m(8,12)=1-00, m(10,11)=101-, m(11,15)=1-11.
        let primes = prime_implicants(&[4, 8, 10, 11, 12, 15], 4);
        assert_eq!(primes.len(), 5);
        for p in &primes {
            for m in [4u32, 8, 10, 11, 12, 15] {
                if p.covers(m) {
                    continue;
                }
            }
            // Every prime must cover only on-set minterms.
            for t in 0u32..16 {
                if p.covers(t) {
                    assert!([4, 8, 10, 11, 12, 15].contains(&t), "{p:?} covers {t}");
                }
            }
        }
    }

    #[test]
    fn cover_is_complete_and_sound() {
        let on = [1u32, 2, 5, 6, 9, 13, 14];
        let primes = prime_implicants(&on, 4);
        let cover = greedy_cover(&on, &primes);
        for &m in &on {
            assert!(cover.iter().any(|p| p.covers(m)), "minterm {m} uncovered");
        }
        for t in 0u32..16 {
            if cover.iter().any(|p| p.covers(t)) {
                assert!(on.contains(&t), "off-set minterm {t} covered");
            }
        }
    }

    #[test]
    fn decoder_is_one_hot() {
        let mut b = NetlistBuilder::new("dec");
        let ins = b.input_bus("x", 3);
        let lines = decoder(&mut b, &ins);
        b.output_bus("d", &lines);
        let nl = b.finish().expect("valid");
        for t in 0u64..8 {
            assert_eq!(nl.evaluate_word(t), 1 << t);
        }
    }

    #[test]
    fn sop_shares_products_across_outputs() {
        // Two identical outputs must not double the AND count.
        let tt = TruthTable::from_fn(3, 2, |t| {
            let f = u64::from(t == 3 || t == 7);
            f | (f << 1)
        });
        let mut b = NetlistBuilder::new("share");
        let ins = b.input_bus("x", 3);
        let outs = tt.synthesize_sop(&mut b, &ins);
        b.output_bus("y", &outs);
        let nl = b.finish().expect("valid");
        let ands = nl.stats().family_count("AND");
        assert_eq!(ands, 1, "product term should be shared");
    }
}
