//! The netlist graph and its builder.

use crate::{CellType, NetlistError, NetlistStats};

/// Identifier of a net (wire) inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

/// Identifier of a gate instance inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl NetId {
    /// The net's index, usable for indexing parallel per-net arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl GateId {
    /// The gate's index, usable for indexing parallel per-gate arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A wire in the netlist.
#[derive(Debug, Clone)]
pub struct Net {
    pub(crate) name: Option<String>,
    pub(crate) driver: Option<GateId>,
    pub(crate) loads: Vec<GateId>,
    pub(crate) is_input: bool,
}

impl Net {
    /// The gate driving this net, or `None` for a primary input.
    pub fn driver(&self) -> Option<GateId> {
        self.driver
    }

    /// Gates reading this net.
    pub fn loads(&self) -> &[GateId] {
        &self.loads
    }

    /// Whether this net is a primary input.
    pub fn is_input(&self) -> bool {
        self.is_input
    }

    /// The net's name, if it is a named port.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

/// A gate instance.
#[derive(Debug, Clone)]
pub struct Gate {
    pub(crate) cell: CellType,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) output: NetId,
}

impl Gate {
    /// The cell implementing this gate.
    pub fn cell(&self) -> CellType {
        self.cell
    }

    /// Input nets, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The output net.
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// A validated, topologically-sorted combinational netlist.
///
/// Construct via [`NetlistBuilder`]. See the [crate docs](crate) for an
/// end-to-end example.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<(String, NetId)>,
    /// Gates in topological (evaluation) order.
    topo: Vec<GateId>,
    /// Logic level of each gate (1 + max level of its driving gates).
    levels: Vec<u32>,
}

impl Netlist {
    /// The netlist's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// A gate by id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// A net by id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs as `(name, net)`, in declaration order.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Gates in topological order (every gate appears after the drivers of
    /// all of its inputs).
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// Logic level of a gate: 1 for gates fed only by primary inputs,
    /// otherwise 1 + the maximum level among driving gates.
    pub fn level(&self, gate: GateId) -> u32 {
        self.levels[gate.index()]
    }

    /// The critical path length in *gates* (the paper's Table I "Delay"
    /// row): the maximum logic level over all primary-output drivers.
    pub fn critical_path_gates(&self) -> u32 {
        self.outputs
            .iter()
            .filter_map(|(_, net)| self.nets[net.index()].driver)
            .map(|g| self.levels[g.index()])
            .max()
            .unwrap_or(0)
    }

    /// The critical path delay in picoseconds using nominal cell delays.
    pub fn critical_path_ps(&self) -> f64 {
        let mut arrival = vec![0.0_f64; self.nets.len()];
        for &gid in &self.topo {
            let g = &self.gates[gid.index()];
            let t: f64 = g
                .inputs
                .iter()
                .map(|n| arrival[n.index()])
                .fold(0.0, f64::max)
                + g.cell.delay_ps();
            arrival[g.output.index()] = t;
        }
        self.outputs
            .iter()
            .map(|(_, net)| arrival[net.index()])
            .fold(0.0, f64::max)
    }

    /// Capacitive load on a net in femtofarads: the sum of the input-pin
    /// capacitances of all gates reading it.
    pub fn fanout_cap_ff(&self, net: NetId) -> f64 {
        self.nets[net.index()]
            .loads
            .iter()
            .map(|g| self.gates[g.index()].cell.input_cap_ff())
            .sum()
    }

    /// Evaluate all nets for the given primary-input assignment and return
    /// the full per-net value vector (indexed by [`NetId::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn evaluate_nets(&self, inputs: &[bool]) -> Vec<bool> {
        let mut values = Vec::new();
        self.evaluate_nets_into(inputs, &mut values);
        values
    }

    /// [`Netlist::evaluate_nets`] into a caller-owned buffer, so settle
    /// loops (the simulator's capture sessions) reuse one allocation
    /// across calls. The buffer is cleared and resized to the net count.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn evaluate_nets_into(&self, inputs: &[bool], values: &mut Vec<bool>) {
        assert_eq!(
            inputs.len(),
            self.inputs.len(),
            "netlist `{}` has {} inputs, got {}",
            self.name,
            self.inputs.len(),
            inputs.len()
        );
        values.clear();
        values.resize(self.nets.len(), false);
        for (net, &v) in self.inputs.iter().zip(inputs) {
            values[net.index()] = v;
        }
        let mut pins = [false; 4];
        for &gid in &self.topo {
            let g = &self.gates[gid.index()];
            for (slot, n) in pins.iter_mut().zip(&g.inputs) {
                *slot = values[n.index()];
            }
            values[g.output.index()] = g.cell.evaluate(&pins[..g.inputs.len()]);
        }
    }

    /// Evaluate the primary outputs for the given primary-input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        let values = self.evaluate_nets(inputs);
        self.outputs
            .iter()
            .map(|(_, net)| values[net.index()])
            .collect()
    }

    /// Evaluate with inputs/outputs packed little-endian into `u64` words
    /// (bit `i` of `inputs` feeds primary input `i`).
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 64 inputs or outputs.
    pub fn evaluate_word(&self, inputs: u64) -> u64 {
        assert!(self.num_inputs() <= 64 && self.num_outputs() <= 64);
        let bits: Vec<bool> = (0..self.num_inputs())
            .map(|i| (inputs >> i) & 1 == 1)
            .collect();
        self.evaluate(&bits)
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
    }

    /// Compute the full truth table: entry `t` is the packed output word for
    /// packed input word `t`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than 20 inputs (table would exceed one
    /// million entries).
    pub fn truth_table(&self) -> Vec<u64> {
        assert!(
            self.num_inputs() <= 20,
            "truth table of a {}-input netlist is too large",
            self.num_inputs()
        );
        (0..1u64 << self.num_inputs())
            .map(|t| self.evaluate_word(t))
            .collect()
    }

    /// Gate-mix / area / depth report (the per-implementation column of the
    /// paper's Table I).
    pub fn stats(&self) -> NetlistStats {
        NetlistStats::from_netlist(self)
    }
}

/// Incremental builder for [`Netlist`].
///
/// # Example
///
/// ```
/// use sbox_netlist::{CellType, NetlistBuilder};
///
/// # fn main() -> Result<(), sbox_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("mux");
/// let sel = b.input("sel");
/// let a = b.input("a");
/// let c = b.input("c");
/// let nsel = b.not(sel);
/// let hi = b.and(&[sel, a]);
/// let lo = b.and(&[nsel, c]);
/// let y = b.or(&[hi, lo]);
/// b.output("y", y);
/// let mux = b.finish()?;
/// assert_eq!(mux.evaluate(&[true, true, false]), vec![true]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<(String, NetId)>,
}

impl NetlistBuilder {
    /// Start a new netlist with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nets: Vec::new(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    fn fresh_net(&mut self, name: Option<String>, is_input: bool) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            name,
            driver: None,
            loads: Vec::new(),
            is_input,
        });
        id
    }

    /// Declare a named primary input and return its net.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.fresh_net(Some(name.into()), true);
        self.inputs.push(id);
        id
    }

    /// Declare `n` primary inputs named `prefix0..prefix{n-1}` (LSB first).
    pub fn input_bus(&mut self, prefix: &str, n: usize) -> Vec<NetId> {
        (0..n).map(|i| self.input(format!("{prefix}{i}"))).collect()
    }

    /// Mark a net as a named primary output.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// Mark nets as primary outputs named `prefix0..` (LSB first).
    pub fn output_bus(&mut self, prefix: &str, nets: &[NetId]) {
        for (i, &n) in nets.iter().enumerate() {
            self.output(format!("{prefix}{i}"), n);
        }
    }

    /// Instantiate a gate and return its output net.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != cell.arity()` — this is a construction
    /// bug, caught eagerly so the offending generator line is on the stack.
    pub fn gate(&mut self, cell: CellType, inputs: &[NetId]) -> NetId {
        assert_eq!(
            inputs.len(),
            cell.arity(),
            "{} expects {} inputs, got {}",
            cell.mnemonic(),
            cell.arity(),
            inputs.len()
        );
        let out = self.fresh_net(None, false);
        let gid = GateId(self.gates.len() as u32);
        self.gates.push(Gate {
            cell,
            inputs: inputs.to_vec(),
            output: out,
        });
        self.nets[out.index()].driver = Some(gid);
        for n in inputs {
            self.nets[n.index()].loads.push(gid);
        }
        out
    }

    /// Inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.gate(CellType::Inv, &[a])
    }

    /// Buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.gate(CellType::Buf, &[a])
    }

    /// XOR of two nets.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellType::Xor2, &[a, b])
    }

    /// XNOR of two nets.
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellType::Xnor2, &[a, b])
    }

    /// Balanced AND reduction of one or more nets using AND2/AND3/AND4.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty.
    pub fn and(&mut self, terms: &[NetId]) -> NetId {
        self.reduce(terms, [CellType::And2, CellType::And3, CellType::And4])
    }

    /// Balanced OR reduction of one or more nets using OR2/OR3/OR4.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty.
    pub fn or(&mut self, terms: &[NetId]) -> NetId {
        self.reduce(terms, [CellType::Or2, CellType::Or3, CellType::Or4])
    }

    /// Balanced XOR reduction of one or more nets (XOR2 tree).
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty.
    pub fn xor_tree(&mut self, terms: &[NetId]) -> NetId {
        assert!(!terms.is_empty(), "xor_tree of zero terms");
        let mut layer = terms.to_vec();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|c| {
                    if c.len() == 2 {
                        self.xor(c[0], c[1])
                    } else {
                        c[0]
                    }
                })
                .collect();
        }
        layer[0]
    }

    fn reduce(&mut self, terms: &[NetId], cells: [CellType; 3]) -> NetId {
        assert!(!terms.is_empty(), "reduction of zero terms");
        let mut layer = terms.to_vec();
        while layer.len() > 1 {
            // A trailing 5-wide remainder splits 3 + 2 rather than 4 + 1 so
            // that no layer forwards a lone net through an extra level.
            let mut next = Vec::with_capacity(layer.len().div_ceil(4));
            let mut rest = layer.as_slice();
            while !rest.is_empty() {
                let take = match rest.len() {
                    5 => 3,
                    1..=4 => rest.len(),
                    _ => 4,
                };
                let (chunk, tail) = rest.split_at(take);
                rest = tail;
                let out = match chunk.len() {
                    1 => chunk[0],
                    2 => self.gate(cells[0], chunk),
                    3 => self.gate(cells[1], chunk),
                    4 => self.gate(cells[2], chunk),
                    _ => unreachable!(),
                };
                next.push(out);
            }
            layer = next;
        }
        layer[0]
    }

    /// Number of gates instantiated so far.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Validate and freeze the netlist.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] if the netlist has no outputs, duplicate
    /// port names, undriven nets, or a combinational cycle.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        let mut seen = std::collections::HashSet::new();
        for name in self
            .inputs
            .iter()
            .filter_map(|n| self.nets[n.index()].name.clone())
            .chain(self.outputs.iter().map(|(n, _)| n.clone()))
        {
            if !seen.insert(name.clone()) {
                return Err(NetlistError::DuplicateName { name });
            }
        }
        // Every used net must be driven or a primary input.
        for (i, net) in self.nets.iter().enumerate() {
            let used = !net.loads.is_empty() || self.outputs.iter().any(|(_, n)| n.index() == i);
            if used && net.driver.is_none() && !net.is_input {
                return Err(NetlistError::Undriven { net: i });
            }
            if net.is_input && net.driver.is_some() {
                return Err(NetlistError::MultipleDrivers { net: i });
            }
        }
        // Kahn topological sort over gates.
        let mut indegree: Vec<u32> = self
            .gates
            .iter()
            .map(|g| {
                g.inputs
                    .iter()
                    .filter(|n| self.nets[n.index()].driver.is_some())
                    .count() as u32
            })
            .collect();
        let mut queue: std::collections::VecDeque<GateId> = indegree
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| GateId(i as u32))
            .collect();
        let mut topo = Vec::with_capacity(self.gates.len());
        let mut levels = vec![0u32; self.gates.len()];
        while let Some(gid) = queue.pop_front() {
            topo.push(gid);
            let g = &self.gates[gid.index()];
            levels[gid.index()] = 1 + g
                .inputs
                .iter()
                .filter_map(|n| self.nets[n.index()].driver)
                .map(|d| levels[d.index()])
                .max()
                .unwrap_or(0);
            for &load in &self.nets[g.output.index()].loads {
                indegree[load.index()] -= 1;
                if indegree[load.index()] == 0 {
                    queue.push_back(load);
                }
            }
        }
        if topo.len() != self.gates.len() {
            return Err(NetlistError::CombinationalCycle);
        }
        Ok(Netlist {
            name: self.name,
            nets: self.nets,
            gates: self.gates,
            inputs: self.inputs,
            outputs: self.outputs,
            topo,
            levels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        let mut b = NetlistBuilder::new("fa");
        let a = b.input("a");
        let c = b.input("b");
        let cin = b.input("cin");
        let axb = b.xor(a, c);
        let s = b.xor(axb, cin);
        let t1 = b.and(&[a, c]);
        let t2 = b.and(&[axb, cin]);
        let cout = b.or(&[t1, t2]);
        b.output("s", s);
        b.output("cout", cout);
        b.finish().expect("valid full adder")
    }

    #[test]
    fn full_adder_truth_table() {
        let fa = full_adder();
        for t in 0u64..8 {
            let a = t & 1;
            let b = (t >> 1) & 1;
            let cin = (t >> 2) & 1;
            let sum = a + b + cin;
            let expect = (sum & 1) | ((sum >> 1) << 1);
            assert_eq!(fa.evaluate_word(t), expect, "t={t}");
        }
    }

    #[test]
    fn levels_and_critical_path() {
        let fa = full_adder();
        // Longest path: a → xor(axb) → and(t2) → or(cout) = 3 gates.
        assert_eq!(fa.critical_path_gates(), 3);
        assert!(fa.critical_path_ps() > 0.0);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let fa = full_adder();
        let pos: std::collections::HashMap<_, _> = fa
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i))
            .collect();
        for (i, g) in fa.gates().iter().enumerate() {
            for inp in g.inputs() {
                if let Some(drv) = fa.net(*inp).driver() {
                    assert!(pos[&drv] < pos[&GateId(i as u32)]);
                }
            }
        }
    }

    #[test]
    fn no_outputs_is_an_error() {
        let mut b = NetlistBuilder::new("empty");
        let _ = b.input("a");
        assert_eq!(b.finish().unwrap_err(), NetlistError::NoOutputs);
    }

    #[test]
    fn duplicate_port_name_is_an_error() {
        let mut b = NetlistBuilder::new("dup");
        let a = b.input("a");
        b.output("a", a);
        assert!(matches!(
            b.finish().unwrap_err(),
            NetlistError::DuplicateName { .. }
        ));
    }

    #[test]
    fn wide_reductions_are_correct() {
        for n in 1..=17usize {
            let mut b = NetlistBuilder::new("and_wide");
            let ins = b.input_bus("x", n);
            let y = b.and(&ins);
            let z = b.or(&ins);
            let w = b.xor_tree(&ins);
            b.output("and", y);
            b.output("or", z);
            b.output("xor", w);
            let nl = b.finish().expect("valid");
            for t in 0u64..(1 << n.min(10)) {
                let bits: Vec<bool> = (0..n).map(|i| (t >> i) & 1 == 1).collect();
                let out = nl.evaluate(&bits);
                assert_eq!(out[0], bits.iter().all(|&x| x), "and n={n} t={t}");
                assert_eq!(out[1], bits.iter().any(|&x| x), "or n={n} t={t}");
                assert_eq!(
                    out[2],
                    bits.iter().fold(false, |a, &x| a ^ x),
                    "xor n={n} t={t}"
                );
            }
        }
    }

    #[test]
    fn fanout_cap_accumulates() {
        let mut b = NetlistBuilder::new("fan");
        let a = b.input("a");
        let x = b.not(a);
        let y = b.not(a);
        b.output("x", x);
        b.output("y", y);
        let nl = b.finish().expect("valid");
        let cap = nl.fanout_cap_ff(nl.inputs()[0]);
        assert!((cap - 2.0 * CellType::Inv.input_cap_ff()).abs() < 1e-12);
    }

    #[test]
    fn evaluate_word_round_trip() {
        let fa = full_adder();
        let tt = fa.truth_table();
        assert_eq!(tt.len(), 8);
        for (t, &o) in tt.iter().enumerate() {
            assert_eq!(o, fa.evaluate_word(t as u64));
        }
    }
}
