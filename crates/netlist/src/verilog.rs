//! Structural Verilog export.
//!
//! Lets the generated netlists be inspected, simulated or re-synthesized
//! with external EDA tools.
//!
//! # Example
//!
//! ```
//! use sbox_netlist::{NetlistBuilder, verilog};
//!
//! # fn main() -> Result<(), sbox_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("inv1");
//! let a = b.input("a");
//! let y = b.not(a);
//! b.output("y", y);
//! let v = verilog::to_verilog(&b.finish()?);
//! assert!(v.contains("module inv1"));
//! assert!(v.contains("INV"));
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;

use crate::{CellType, NetId, Netlist};

/// Render the netlist as a structural Verilog module using the cell
/// mnemonics as primitive module names (`INV`, `AND3`, `XOR2`, …).
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let ident = sanitize(netlist.name());
    let ports: Vec<String> = netlist
        .inputs()
        .iter()
        .map(|&n| net_name(netlist, n))
        .chain(netlist.outputs().iter().map(|(n, _)| sanitize(n)))
        .collect();
    let _ = writeln!(out, "module {ident} ({});", ports.join(", "));
    for &n in netlist.inputs() {
        let _ = writeln!(out, "  input {};", net_name(netlist, n));
    }
    for (name, _) in netlist.outputs() {
        let _ = writeln!(out, "  output {};", sanitize(name));
    }
    for (i, net) in netlist.nets().iter().enumerate() {
        if !net.is_input() && net.name().is_none() {
            let _ = writeln!(out, "  wire n{i};");
        }
    }
    for (gi, gate) in netlist.gates().iter().enumerate() {
        let pins: Vec<String> = std::iter::once(net_name(netlist, gate.output()))
            .chain(gate.inputs().iter().map(|&n| net_name(netlist, n)))
            .collect();
        let _ = writeln!(
            out,
            "  {} g{gi} ({});",
            gate.cell().mnemonic(),
            pins.join(", ")
        );
    }
    // Outputs that alias an internal or input net need explicit assigns.
    for (name, net) in netlist.outputs() {
        let inner = net_name(netlist, *net);
        let outer = sanitize(name);
        if inner != outer {
            let _ = writeln!(out, "  assign {outer} = {inner};");
        }
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Render primitive-cell definitions (behavioural) for the whole library so
/// the exported module is self-contained.
pub fn library_prelude() -> String {
    let mut out = String::new();
    for cell in crate::ALL_CELL_TYPES {
        let n = cell.arity();
        let ins: Vec<String> = (0..n).map(|i| format!("i{i}")).collect();
        let _ = writeln!(out, "module {} (o, {});", cell.mnemonic(), ins.join(", "));
        let _ = writeln!(out, "  output o;");
        for i in &ins {
            let _ = writeln!(out, "  input {i};");
        }
        let expr = match cell {
            CellType::Inv => "~i0".to_string(),
            CellType::Buf => "i0".to_string(),
            CellType::Xor2 => "i0 ^ i1".to_string(),
            CellType::Xnor2 => "~(i0 ^ i1)".to_string(),
            c if c.family() == "AND" => ins.join(" & "),
            c if c.family() == "OR" => ins.join(" | "),
            c if c.family() == "NAND" => format!("~({})", ins.join(" & ")),
            c if c.family() == "NOR" => format!("~({})", ins.join(" | ")),
            _ => unreachable!(),
        };
        let _ = writeln!(out, "  assign o = {expr};");
        let _ = writeln!(out, "endmodule\n");
    }
    out
}

/// Parse a structural Verilog module in the subset emitted by
/// [`to_verilog`] (one module; `input`/`output`/`wire` declarations; cell
/// instances named by library mnemonics with output-first positional
/// ports; `assign` aliases) back into a [`Netlist`].
///
/// # Errors
///
/// Returns [`ParseVerilogError`] on any syntax or semantic problem, and
/// [`NetlistError`] (wrapped) if the reconstructed netlist is invalid.
///
/// # Example
///
/// ```
/// use sbox_netlist::{NetlistBuilder, verilog};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("rt");
/// let a = b.input("a");
/// let y = b.not(a);
/// b.output("y", y);
/// let original = b.finish()?;
/// let parsed = verilog::from_verilog(&verilog::to_verilog(&original))?;
/// assert_eq!(parsed.truth_table(), original.truth_table());
/// # Ok(())
/// # }
/// ```
pub fn from_verilog(source: &str) -> Result<Netlist, ParseVerilogError> {
    use std::collections::HashMap;

    let mut builder: Option<crate::NetlistBuilder> = None;
    let mut nets: HashMap<String, NetId> = HashMap::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut pending_gates: Vec<(CellType, String, Vec<String>)> = Vec::new();
    let mut aliases: Vec<(String, String)> = Vec::new();
    let cell_by_name: HashMap<&str, CellType> = crate::ALL_CELL_TYPES
        .iter()
        .map(|&c| (c.mnemonic(), c))
        .collect();

    for (lineno, raw) in source.lines().enumerate() {
        let line = raw.trim().trim_end_matches(';');
        let err = |msg: &str| ParseVerilogError {
            line: lineno + 1,
            message: msg.to_string(),
        };
        if line.is_empty() || line.starts_with("//") || line == "endmodule" {
            continue;
        }
        if let Some(rest) = line.strip_prefix("module ") {
            let name = rest.split('(').next().ok_or_else(|| err("bad module"))?;
            builder = Some(crate::NetlistBuilder::new(name.trim()));
        } else if let Some(rest) = line.strip_prefix("input ") {
            let b = builder.as_mut().ok_or_else(|| err("input before module"))?;
            for port in rest.split(',') {
                let port = port.trim().to_string();
                let id = b.input(port.clone());
                nets.insert(port, id);
            }
        } else if let Some(rest) = line.strip_prefix("output ") {
            outputs.extend(rest.split(',').map(|p| p.trim().to_string()));
        } else if line.starts_with("wire ") {
            // Wires are implied by use; nothing to do.
        } else if let Some(rest) = line.strip_prefix("assign ") {
            let (lhs, rhs) = rest.split_once('=').ok_or_else(|| err("bad assign"))?;
            aliases.push((lhs.trim().to_string(), rhs.trim().to_string()));
        } else {
            // A cell instance: `CELL name (out, in0, in1, ...)`.
            let mut parts = line.splitn(2, ' ');
            let cell_name = parts.next().ok_or_else(|| err("empty line"))?;
            let cell = *cell_by_name
                .get(cell_name)
                .ok_or_else(|| err(&format!("unknown cell `{cell_name}`")))?;
            let rest = parts.next().ok_or_else(|| err("missing ports"))?;
            let ports_str = rest
                .split_once('(')
                .and_then(|(_, p)| p.split_once(')'))
                .map(|(p, _)| p)
                .ok_or_else(|| err("missing port list"))?;
            let ports: Vec<String> = ports_str.split(',').map(|p| p.trim().to_string()).collect();
            if ports.len() != cell.arity() + 1 {
                return Err(err(&format!(
                    "{cell_name} expects {} ports, found {}",
                    cell.arity() + 1,
                    ports.len()
                )));
            }
            pending_gates.push((cell, ports[0].clone(), ports[1..].to_vec()));
        }
    }
    let mut b = builder.ok_or(ParseVerilogError {
        line: 0,
        message: "no module found".to_string(),
    })?;

    // Emit gates in dependency order (repeat passes until settled).
    let mut remaining = pending_gates;
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|(cell, out, ins)| {
            let resolved: Option<Vec<NetId>> = ins.iter().map(|n| nets.get(n).copied()).collect();
            match resolved {
                Some(inputs) => {
                    let id = b.gate(*cell, &inputs);
                    nets.insert(out.clone(), id);
                    false
                }
                None => true,
            }
        });
        if remaining.len() == before {
            return Err(ParseVerilogError {
                line: 0,
                message: format!(
                    "unresolvable nets (cycle or undeclared): {:?}",
                    remaining.iter().map(|(_, o, _)| o).collect::<Vec<_>>()
                ),
            });
        }
    }
    for (lhs, rhs) in aliases {
        if let Some(&id) = nets.get(&rhs) {
            nets.insert(lhs, id);
        }
    }
    for name in outputs {
        let id = *nets.get(&name).ok_or(ParseVerilogError {
            line: 0,
            message: format!("undriven output `{name}`"),
        })?;
        b.output(name, id);
    }
    b.finish().map_err(|e| ParseVerilogError {
        line: 0,
        message: format!("invalid netlist: {e}"),
    })
}

/// Error from [`from_verilog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVerilogError {
    /// 1-based source line (0 when not line-specific).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for ParseVerilogError {}

fn net_name(netlist: &Netlist, n: NetId) -> String {
    match netlist.net(n).name() {
        Some(name) => sanitize(name),
        None => format!("n{}", n.index()),
    }
}

fn sanitize(s: &str) -> String {
    let mut out: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn export_contains_all_gates_and_ports() {
        let mut b = NetlistBuilder::new("fa-1");
        let a = b.input("a");
        let c = b.input("b");
        let s = b.xor(a, c);
        let g = b.and(&[a, c]);
        b.output("sum", s);
        b.output("carry", g);
        let v = to_verilog(&b.finish().expect("valid"));
        assert!(v.contains("module fa_1 (a, b, sum, carry);"));
        assert!(v.contains("XOR2 g0"));
        assert!(v.contains("AND2 g1"));
        assert!(v.contains("endmodule"));
    }

    #[test]
    fn prelude_defines_every_cell() {
        let p = library_prelude();
        for cell in crate::ALL_CELL_TYPES {
            assert!(p.contains(&format!("module {} ", cell.mnemonic())));
        }
    }

    #[test]
    fn round_trip_preserves_function_and_structure() {
        let mut b = NetlistBuilder::new("rt");
        let x = b.input_bus("x", 3);
        let s1 = b.xor(x[0], x[1]);
        let s2 = b.and(&[s1, x[2]]);
        let s3 = b.gate(crate::CellType::Nor3, &[x[0], x[1], x[2]]);
        let out = b.or(&[s2, s3]);
        b.output("f", out);
        b.output("g", s1);
        let original = b.finish().expect("valid");
        let parsed = from_verilog(&to_verilog(&original)).expect("parse");
        assert_eq!(parsed.num_inputs(), 3);
        assert_eq!(parsed.num_outputs(), 2);
        assert_eq!(parsed.gates().len(), original.gates().len());
        assert_eq!(parsed.truth_table(), original.truth_table());
    }

    #[test]
    fn parse_rejects_unknown_cells() {
        let src = "module m (a, y);\n  input a;\n  output y;\n  FOO g0 (y, a);\nendmodule\n";
        let err = from_verilog(src).expect_err("should fail");
        assert!(err.message.contains("unknown cell"));
    }

    #[test]
    fn parse_rejects_undriven_outputs() {
        let src = "module m (a, y);\n  input a;\n  output y;\nendmodule\n";
        let err = from_verilog(src).expect_err("should fail");
        assert!(err.message.contains("undriven output"));
    }

    #[test]
    fn out_of_order_instances_still_parse() {
        // g1 uses n1 which g0 defines later in the file.
        let src = "module m (a, y);\n  input a;\n  output y;\n  wire n1;\n  \
                   INV g1 (y, n1);\n  INV g0 (n1, a);\nendmodule\n";
        let nl = from_verilog(src).expect("parse");
        assert_eq!(nl.truth_table(), vec![0, 1]);
    }
}
