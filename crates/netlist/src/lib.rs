//! Gate-level netlist substrate for side-channel leakage studies.
//!
//! This crate provides the hardware-description layer on which the rest of
//! the workspace is built:
//!
//! * [`CellType`] — a NANGATE-45nm-inspired standard-cell library (2–4 input
//!   AND/OR/NAND/NOR, XOR/XNOR, INV, BUF) with per-cell nominal propagation
//!   delay, switching energy, input/output capacitance and NAND2-equivalent
//!   area.
//! * [`Netlist`] / [`NetlistBuilder`] — a flat combinational netlist graph
//!   with named primary inputs/outputs, structural validation, topological
//!   ordering and levelization.
//! * [`NetlistStats`] — the gate-mix / area / depth report used to reproduce
//!   Table I of the paper.
//! * [`synth`] — a small two-level (Quine–McCluskey style) synthesizer that
//!   turns truth tables into AND/OR/INV netlists, plus balanced k-ary
//!   reduction-tree helpers used by the hand-structured generators.
//! * [`cone`] — input-cone / cut utilities (per-net primary-input support
//!   masks), the substrate of the `sca-verify` crate's glitch-extended
//!   probing analysis.
//! * [`verilog`] — structural Verilog export for inspection with external
//!   tools.
//!
//! # Example
//!
//! Build a tiny 2-input circuit and evaluate it:
//!
//! ```
//! use sbox_netlist::{CellType, NetlistBuilder};
//!
//! # fn main() -> Result<(), sbox_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("toy");
//! let a = b.input("a");
//! let bb = b.input("b");
//! let x = b.gate(CellType::Xor2, &[a, bb]);
//! b.output("y", x);
//! let netlist = b.finish()?;
//! assert_eq!(netlist.evaluate(&[true, false]), vec![true]);
//! assert_eq!(netlist.evaluate(&[true, true]), vec![false]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdd;
mod cell;
pub mod cone;
mod error;
mod graph;
mod stats;
pub mod synth;
pub mod timing;
pub mod transform;
pub mod verilog;

pub use cell::{CellType, ALL_CELL_TYPES};
pub use error::NetlistError;
pub use graph::{Gate, GateId, Net, NetId, Netlist, NetlistBuilder};
pub use stats::NetlistStats;
