//! Error type for netlist construction and validation.

use std::error::Error;
use std::fmt;

/// Error produced while building or validating a [`crate::Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate references a net id that does not exist.
    UnknownNet {
        /// The offending net index.
        net: usize,
    },
    /// A net is driven by more than one gate (or by a gate and a primary
    /// input).
    MultipleDrivers {
        /// The offending net index.
        net: usize,
    },
    /// A net is neither a primary input nor driven by any gate, yet is used
    /// as a gate input or a primary output.
    Undriven {
        /// The offending net index.
        net: usize,
    },
    /// A gate was created with the wrong number of inputs for its cell.
    ArityMismatch {
        /// Cell mnemonic.
        cell: &'static str,
        /// Expected input count.
        expected: usize,
        /// Provided input count.
        found: usize,
    },
    /// The netlist contains a combinational cycle.
    CombinationalCycle,
    /// The netlist has no primary outputs.
    NoOutputs,
    /// A primary input/output name is duplicated.
    DuplicateName {
        /// The duplicated port name.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownNet { net } => write!(f, "gate references unknown net {net}"),
            Self::MultipleDrivers { net } => write!(f, "net {net} has multiple drivers"),
            Self::Undriven { net } => write!(f, "net {net} is used but never driven"),
            Self::ArityMismatch {
                cell,
                expected,
                found,
            } => write!(f, "{cell} expects {expected} inputs, found {found}"),
            Self::CombinationalCycle => write!(f, "netlist contains a combinational cycle"),
            Self::NoOutputs => write!(f, "netlist has no primary outputs"),
            Self::DuplicateName { name } => write!(f, "duplicate port name `{name}`"),
        }
    }
}

impl Error for NetlistError {}
