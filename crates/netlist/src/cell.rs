//! The standard-cell library.
//!
//! Electrical numbers are inspired by the open NANGATE 45 nm library at
//! Vdd = 1.2 V: absolute values are representative, *relative* values between
//! cells (an XOR2 is slower and hungrier than a NAND2, a 4-input AND is
//! slower than a 2-input one, …) follow the library's ordering, which is what
//! the leakage comparison depends on.

use std::fmt;

/// A combinational standard cell.
///
/// The numbering suffix is the number of inputs. All cells are
/// single-output.
///
/// # Example
///
/// ```
/// use sbox_netlist::CellType;
///
/// assert_eq!(CellType::And3.arity(), 3);
/// assert!(CellType::Xor2.delay_ps() > CellType::Nand2.delay_ps());
/// assert!(CellType::Inv.evaluate(&[false]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum CellType {
    Inv,
    Buf,
    And2,
    And3,
    And4,
    Or2,
    Or3,
    Or4,
    Nand2,
    Nand3,
    Nand4,
    Nor2,
    Nor3,
    Nor4,
    Xor2,
    Xnor2,
}

/// Every cell in the library, in a stable order (used for reports).
pub const ALL_CELL_TYPES: [CellType; 16] = [
    CellType::Inv,
    CellType::Buf,
    CellType::And2,
    CellType::And3,
    CellType::And4,
    CellType::Or2,
    CellType::Or3,
    CellType::Or4,
    CellType::Nand2,
    CellType::Nand3,
    CellType::Nand4,
    CellType::Nor2,
    CellType::Nor3,
    CellType::Nor4,
    CellType::Xor2,
    CellType::Xnor2,
];

impl CellType {
    /// Number of inputs the cell takes.
    pub const fn arity(self) -> usize {
        use CellType::*;
        match self {
            Inv | Buf => 1,
            And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 => 2,
            And3 | Or3 | Nand3 | Nor3 => 3,
            And4 | Or4 | Nand4 | Nor4 => 4,
        }
    }

    /// Nominal propagation delay in picoseconds (typical corner).
    pub const fn delay_ps(self) -> f64 {
        use CellType::*;
        match self {
            Inv => 6.0,
            Buf => 11.0,
            Nand2 => 8.0,
            Nor2 => 10.0,
            And2 => 13.0,
            Or2 => 13.0,
            Nand3 => 10.0,
            Nor3 => 13.0,
            And3 => 15.0,
            Or3 => 15.0,
            Nand4 => 12.0,
            Nor4 => 15.0,
            And4 => 17.0,
            Or4 => 17.0,
            Xor2 => 19.0,
            Xnor2 => 19.0,
        }
    }

    /// Area normalized to a NAND2 ("equivalent gates", the unit of the
    /// paper's Table I row *Total Equ. Gates*).
    pub const fn equivalent_gates(self) -> f64 {
        use CellType::*;
        match self {
            Inv => 0.67,
            Buf => 1.0,
            Nand2 | Nor2 => 1.0,
            And2 | Or2 => 1.33,
            Nand3 | Nor3 => 1.33,
            And3 | Or3 => 1.67,
            Nand4 | Nor4 => 1.67,
            And4 | Or4 => 2.0,
            Xor2 | Xnor2 => 2.33,
        }
    }

    /// Intrinsic energy in femtojoules dissipated by one output transition
    /// (self-load only; wire/fanout load is added by the simulator).
    pub const fn switch_energy_fj(self) -> f64 {
        use CellType::*;
        match self {
            Inv => 0.9,
            Buf => 1.6,
            Nand2 | Nor2 => 1.3,
            And2 | Or2 => 1.8,
            Nand3 | Nor3 => 1.7,
            And3 | Or3 => 2.2,
            Nand4 | Nor4 => 2.1,
            And4 | Or4 => 2.6,
            Xor2 | Xnor2 => 2.9,
        }
    }

    /// Input pin capacitance in femtofarads. The energy drawn when a driver
    /// toggles a net is `switch_energy_fj + Σ input_cap_ff(load) * Vdd²`.
    pub const fn input_cap_ff(self) -> f64 {
        use CellType::*;
        match self {
            Inv | Buf => 1.0,
            Nand2 | Nor2 => 1.1,
            And2 | Or2 => 1.1,
            Nand3 | Nor3 => 1.2,
            And3 | Or3 => 1.2,
            Nand4 | Nor4 => 1.3,
            And4 | Or4 => 1.3,
            Xor2 | Xnor2 => 1.6,
        }
    }

    /// `true` for cells whose output is a non-linear (AND/OR-like) function
    /// of the inputs — the gates masking schemes must gadget-protect.
    pub const fn is_nonlinear(self) -> bool {
        use CellType::*;
        matches!(
            self,
            And2 | And3 | And4 | Or2 | Or3 | Or4 | Nand2 | Nand3 | Nand4 | Nor2 | Nor3 | Nor4
        )
    }

    /// Short mnemonic used in reports and Verilog export (e.g. `AND3`).
    pub const fn mnemonic(self) -> &'static str {
        use CellType::*;
        match self {
            Inv => "INV",
            Buf => "BUF",
            And2 => "AND2",
            And3 => "AND3",
            And4 => "AND4",
            Or2 => "OR2",
            Or3 => "OR3",
            Or4 => "OR4",
            Nand2 => "NAND2",
            Nand3 => "NAND3",
            Nand4 => "NAND4",
            Nor2 => "NOR2",
            Nor3 => "NOR3",
            Nor4 => "NOR4",
            Xor2 => "XOR2",
            Xnor2 => "XNOR2",
        }
    }

    /// The broad family the cell belongs to, matching the row labels of the
    /// paper's Table I (`# AND`, `# OR`, `# XOR`, `# INV`, `# BUF`,
    /// `# NAND`, `# NOR`, `# XNOR`).
    pub const fn family(self) -> &'static str {
        use CellType::*;
        match self {
            Inv => "INV",
            Buf => "BUF",
            And2 | And3 | And4 => "AND",
            Or2 | Or3 | Or4 => "OR",
            Nand2 | Nand3 | Nand4 => "NAND",
            Nor2 | Nor3 | Nor4 => "NOR",
            Xor2 => "XOR",
            Xnor2 => "XNOR",
        }
    }

    /// Compute the cell's boolean function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn evaluate(self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.arity(),
            "{} expects {} inputs, got {}",
            self.mnemonic(),
            self.arity(),
            inputs.len()
        );
        use CellType::*;
        match self {
            Inv => !inputs[0],
            Buf => inputs[0],
            And2 | And3 | And4 => inputs.iter().all(|&x| x),
            Or2 | Or3 | Or4 => inputs.iter().any(|&x| x),
            Nand2 | Nand3 | Nand4 => !inputs.iter().all(|&x| x),
            Nor2 | Nor3 | Nor4 => !inputs.iter().any(|&x| x),
            Xor2 => inputs[0] ^ inputs[1],
            Xnor2 => !(inputs[0] ^ inputs[1]),
        }
    }
}

impl fmt::Display for CellType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_mnemonic_suffix() {
        for cell in ALL_CELL_TYPES {
            let m = cell.mnemonic();
            let expected = m
                .chars()
                .last()
                .and_then(|c| c.to_digit(10))
                .map_or(1, |d| d as usize);
            assert_eq!(cell.arity(), expected, "{m}");
        }
    }

    #[test]
    fn evaluate_all_cells_exhaustively() {
        for cell in ALL_CELL_TYPES {
            let n = cell.arity();
            for v in 0u32..(1 << n) {
                let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
                let out = cell.evaluate(&bits);
                let all = bits.iter().all(|&x| x);
                let any = bits.iter().any(|&x| x);
                use CellType::*;
                let expect = match cell {
                    Inv => !bits[0],
                    Buf => bits[0],
                    And2 | And3 | And4 => all,
                    Or2 | Or3 | Or4 => any,
                    Nand2 | Nand3 | Nand4 => !all,
                    Nor2 | Nor3 | Nor4 => !any,
                    Xor2 => bits[0] != bits[1],
                    Xnor2 => bits[0] == bits[1],
                };
                assert_eq!(out, expect, "{cell} on {bits:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn evaluate_rejects_wrong_arity() {
        CellType::And2.evaluate(&[true]);
    }

    #[test]
    fn xor_is_slowest_two_input_cell() {
        assert!(CellType::Xor2.delay_ps() > CellType::And2.delay_ps());
        assert!(CellType::Xor2.delay_ps() > CellType::Nand2.delay_ps());
        assert!(CellType::Xor2.delay_ps() > CellType::Nor2.delay_ps());
    }

    #[test]
    fn nand2_is_the_area_unit() {
        assert_eq!(CellType::Nand2.equivalent_gates(), 1.0);
        for cell in ALL_CELL_TYPES {
            assert!(cell.equivalent_gates() > 0.0);
        }
    }

    #[test]
    fn wider_cells_are_slower_and_bigger() {
        use CellType::*;
        for (a, b) in [(And2, And3), (And3, And4), (Or2, Or3), (Or3, Or4)] {
            assert!(a.delay_ps() < b.delay_ps());
            assert!(a.equivalent_gates() < b.equivalent_gates());
            assert!(a.switch_energy_fj() < b.switch_energy_fj());
        }
    }

    #[test]
    fn family_labels_cover_table_one_rows() {
        let families: std::collections::BTreeSet<_> =
            ALL_CELL_TYPES.iter().map(|c| c.family()).collect();
        for f in ["AND", "OR", "XOR", "INV", "BUF", "NAND", "NOR", "XNOR"] {
            assert!(families.contains(f), "missing family {f}");
        }
    }
}
