//! Input-cone and cut utilities.
//!
//! Static side-channel analysis reasons about *glitch-extended* probes: a
//! transient observation on a net exposes information carried by every
//! stable signal that feeds it combinationally. The functions here compute
//! those cones once, as per-net bitmasks over primary-input positions, so a
//! downstream analyzer (the `sca-verify` crate) can intersect them with
//! share/randomness metadata in O(1) per net.

use crate::{GateId, NetId, Netlist};

/// Per-net primary-input support masks.
///
/// `masks[net]` has bit `i` set iff primary input `i` (by position in
/// [`Netlist::inputs`]) is in the transitive fan-in of `net`. Computed in
/// one topological pass; a structural over-approximation of the functional
/// support (a gate that ignores an input still contributes its cone).
///
/// # Panics
///
/// Panics if the netlist has more than 64 primary inputs.
pub fn input_support_masks(netlist: &Netlist) -> Vec<u64> {
    assert!(
        netlist.num_inputs() <= 64,
        "input cone masks need ≤ 64 primary inputs, got {}",
        netlist.num_inputs()
    );
    let mut masks = vec![0u64; netlist.nets().len()];
    for (i, net) in netlist.inputs().iter().enumerate() {
        masks[net.index()] = 1u64 << i;
    }
    for &gid in netlist.topo_order() {
        let gate = netlist.gate(gid);
        let mut m = 0u64;
        for n in gate.inputs() {
            m |= masks[n.index()];
        }
        masks[gate.output().index()] = m;
    }
    masks
}

/// The primary inputs in the transitive fan-in of `net`, in declaration
/// order.
///
/// # Panics
///
/// Panics if the netlist has more than 64 primary inputs.
pub fn input_cone(netlist: &Netlist, net: NetId) -> Vec<NetId> {
    let mask = input_support_masks(netlist)[net.index()];
    netlist
        .inputs()
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask >> i & 1 == 1)
        .map(|(_, &n)| n)
        .collect()
}

/// Every net in the transitive fan-in of `net` (including `net` itself),
/// sorted by net index — the *cut* a glitch-extended probe on `net` spans.
pub fn fanin_cut(netlist: &Netlist, net: NetId) -> Vec<NetId> {
    let mut seen = vec![false; netlist.nets().len()];
    let mut stack = vec![net];
    while let Some(n) = stack.pop() {
        if seen[n.index()] {
            continue;
        }
        seen[n.index()] = true;
        if let Some(gid) = netlist.net(n).driver() {
            stack.extend(netlist.gate(gid).inputs().iter().copied());
        }
    }
    let mut cut: Vec<NetId> = netlist
        .nets()
        .iter()
        .enumerate()
        .filter(|&(i, _)| seen[i])
        .map(|(i, _)| NetId(i as u32))
        .collect();
    cut.sort_unstable();
    cut
}

/// The gates in the transitive fan-in of `net`, sorted by gate index.
pub fn fanin_gates(netlist: &Netlist, net: NetId) -> Vec<GateId> {
    fanin_cut(netlist, net)
        .into_iter()
        .filter_map(|n| netlist.net(n).driver())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn diamond() -> Netlist {
        let mut b = NetlistBuilder::new("diamond");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let x = b.xor(a, c);
        let y = b.and(&[x, d]);
        let z = b.not(a);
        b.output("y", y);
        b.output("z", z);
        b.finish().expect("valid")
    }

    #[test]
    fn support_masks_track_transitive_fanin() {
        let nl = diamond();
        let masks = input_support_masks(&nl);
        let (_, y) = &nl.outputs()[0];
        let (_, z) = &nl.outputs()[1];
        assert_eq!(masks[y.index()], 0b111, "y sees a, b, c");
        assert_eq!(masks[z.index()], 0b001, "z sees only a");
        for (i, &inp) in nl.inputs().iter().enumerate() {
            assert_eq!(masks[inp.index()], 1 << i);
        }
    }

    #[test]
    fn input_cone_matches_masks() {
        let nl = diamond();
        let (_, y) = &nl.outputs()[0];
        let cone = input_cone(&nl, *y);
        assert_eq!(cone, nl.inputs().to_vec());
        let (_, z) = &nl.outputs()[1];
        assert_eq!(input_cone(&nl, *z), vec![nl.inputs()[0]]);
    }

    #[test]
    fn fanin_cut_includes_the_net_and_is_sorted() {
        let nl = diamond();
        let (_, y) = &nl.outputs()[0];
        let cut = fanin_cut(&nl, *y);
        assert!(cut.contains(y));
        assert!(cut.windows(2).all(|w| w[0] < w[1]));
        // a, b, c, x, y — but not z.
        assert_eq!(cut.len(), 5);
        assert_eq!(fanin_gates(&nl, *y).len(), 2);
    }

    #[test]
    fn primary_input_cone_is_itself() {
        let nl = diamond();
        let a = nl.inputs()[0];
        assert_eq!(input_cone(&nl, a), vec![a]);
        assert_eq!(fanin_cut(&nl, a), vec![a]);
        assert!(fanin_gates(&nl, a).is_empty());
    }
}
