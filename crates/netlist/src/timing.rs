//! Static timing analysis: arrival times, slack, and critical-path
//! extraction.
//!
//! Races between reconvergent paths are where glitches — and therefore
//! the paper's multi-bit leakage — come from; this module quantifies them
//! statically. The delay-balancing transform in [`crate::transform`] uses
//! the arrival-time skews computed here.

use crate::{GateId, NetId, Netlist};

/// Arrival/required/slack report for one netlist under a given per-gate
/// delay assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Worst-case arrival time of each net (ps); primary inputs are 0.
    pub arrival_ps: Vec<f64>,
    /// Required time of each net for the circuit to meet its own critical
    /// path (ps).
    pub required_ps: Vec<f64>,
    /// Slack of each net (`required − arrival`).
    pub slack_ps: Vec<f64>,
    /// The critical path as a gate chain from inputs to the limiting
    /// output.
    pub critical_path: Vec<GateId>,
}

impl TimingReport {
    /// The critical-path delay in ps.
    pub fn critical_delay_ps(&self) -> f64 {
        self.critical_path
            .last()
            .map_or(0.0, |_| self.arrival_ps.iter().cloned().fold(0.0, f64::max))
    }

    /// The maximum arrival-time skew across the input pins of a gate —
    /// the width of the window in which it can glitch.
    pub fn input_skew_ps(&self, netlist: &Netlist, gate: GateId) -> f64 {
        let arrivals: Vec<f64> = netlist
            .gate(gate)
            .inputs()
            .iter()
            .map(|n| self.arrival_ps[n.index()])
            .collect();
        let max = arrivals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = arrivals.iter().cloned().fold(f64::INFINITY, f64::min);
        (max - min).max(0.0)
    }

    /// Total input skew over all gates — a scalar "glitch exposure" figure
    /// of merit for a netlist.
    pub fn total_skew_ps(&self, netlist: &Netlist) -> f64 {
        (0..netlist.gates().len())
            .map(|g| self.input_skew_ps(netlist, GateId(g as u32)))
            .sum()
    }
}

/// Run STA with the nominal cell delays.
pub fn analyze(netlist: &Netlist) -> TimingReport {
    analyze_with(netlist, |g| netlist.gate(g).cell().delay_ps())
}

/// Run STA with a caller-supplied per-gate delay (e.g. jittered or aged).
pub fn analyze_with(netlist: &Netlist, delay_ps: impl Fn(GateId) -> f64) -> TimingReport {
    let num_nets = netlist.nets().len();
    let mut arrival = vec![0.0f64; num_nets];
    for &gid in netlist.topo_order() {
        let gate = netlist.gate(gid);
        let in_arrival = gate
            .inputs()
            .iter()
            .map(|n| arrival[n.index()])
            .fold(0.0, f64::max);
        arrival[gate.output().index()] = in_arrival + delay_ps(gid);
    }
    let clock: f64 = netlist
        .outputs()
        .iter()
        .map(|(_, n)| arrival[n.index()])
        .fold(0.0, f64::max);

    // Backward pass: required times.
    let mut required = vec![f64::INFINITY; num_nets];
    for (_, n) in netlist.outputs() {
        required[n.index()] = clock;
    }
    for &gid in netlist.topo_order().iter().rev() {
        let gate = netlist.gate(gid);
        let out_req = required[gate.output().index()];
        let d = delay_ps(gid);
        for n in gate.inputs() {
            let r = out_req - d;
            if r < required[n.index()] {
                required[n.index()] = r;
            }
        }
    }
    for (i, r) in required.iter_mut().enumerate() {
        if r.is_infinite() {
            // Dangling net: give it the clock as required time.
            *r = clock.max(arrival[i]);
        }
    }
    let slack: Vec<f64> = required.iter().zip(&arrival).map(|(r, a)| r - a).collect();

    // Critical path: walk back from the worst output through the
    // worst-arrival input at each stage.
    let mut critical_path = Vec::new();
    let mut cursor: Option<NetId> = netlist
        .outputs()
        .iter()
        .map(|(_, n)| *n)
        .max_by(|a, b| arrival[a.index()].total_cmp(&arrival[b.index()]));
    while let Some(net) = cursor {
        match netlist.net(net).driver() {
            Some(gid) => {
                critical_path.push(gid);
                cursor = netlist
                    .gate(gid)
                    .inputs()
                    .iter()
                    .copied()
                    .max_by(|a, b| arrival[a.index()].total_cmp(&arrival[b.index()]));
            }
            None => break,
        }
    }
    critical_path.reverse();

    TimingReport {
        arrival_ps: arrival,
        required_ps: required,
        slack_ps: slack,
        critical_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellType, NetlistBuilder};

    fn skewed_xor() -> Netlist {
        // y = xor(inv(inv(a)), b): the xor sees a 2-inverter skew.
        let mut b = NetlistBuilder::new("skew");
        let a = b.input("a");
        let c = b.input("b");
        let d1 = b.not(a);
        let d2 = b.not(d1);
        let y = b.xor(d2, c);
        b.output("y", y);
        b.finish().expect("valid")
    }

    #[test]
    fn arrival_times_accumulate() {
        let nl = skewed_xor();
        let report = analyze(&nl);
        let inv = CellType::Inv.delay_ps();
        let xor = CellType::Xor2.delay_ps();
        assert!((report.critical_delay_ps() - (2.0 * inv + xor)).abs() < 1e-9);
    }

    #[test]
    fn skew_equals_the_inverter_chain() {
        let nl = skewed_xor();
        let report = analyze(&nl);
        let xor_gate = nl.net(nl.outputs()[0].1).driver().expect("driven");
        let skew = report.input_skew_ps(&nl, xor_gate);
        assert!((skew - 2.0 * CellType::Inv.delay_ps()).abs() < 1e-9);
    }

    #[test]
    fn critical_path_walks_the_long_branch() {
        let nl = skewed_xor();
        let report = analyze(&nl);
        assert_eq!(report.critical_path.len(), 3, "{:?}", report.critical_path);
    }

    #[test]
    fn slack_is_zero_on_the_critical_path_only() {
        let nl = skewed_xor();
        let report = analyze(&nl);
        // Output net slack = 0.
        let out = nl.outputs()[0].1;
        assert!(report.slack_ps[out.index()].abs() < 1e-9);
        // The "b" input has positive slack (short branch).
        let b_net = nl.inputs()[1];
        assert!(report.slack_ps[b_net.index()] > 0.0);
    }

    #[test]
    fn custom_delays_are_respected() {
        let nl = skewed_xor();
        let report = analyze_with(&nl, |_| 10.0);
        assert!((report.critical_delay_ps() - 30.0).abs() < 1e-9);
    }
}
