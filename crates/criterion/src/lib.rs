//! A workspace-local, dependency-free stand-in for the subset of the
//! [Criterion](https://docs.rs/criterion) API the `bench` crate uses.
//!
//! The build environment cannot reach crates.io, so the real Criterion
//! cannot be fetched; this crate is wired in through a path dependency
//! under the same package name so every `benches/*.rs` file compiles
//! unchanged. It measures wall-clock time with `std::time::Instant`:
//! each benchmark is warmed up, then timed over `sample_size` samples of
//! adaptively chosen iteration counts, and the per-iteration min / median
//! / max are printed. No plots, no statistics beyond that — enough to
//! compare orders of magnitude and track regressions by eye or script.
//!
//! Command-line behaviour: positional arguments are substring filters on
//! benchmark names (as with real Criterion); `--quick` or `--test` runs
//! every benchmark exactly once (used by CI smoke runs); other flags are
//! accepted and ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filters: Vec<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filters = Vec::new();
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" | "--test" => quick = true,
                a if a.starts_with('-') => {}
                a => filters.push(a.to_string()),
            }
        }
        Self {
            sample_size: 20,
            filters,
            quick,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.enabled(id) {
            let mut b = Bencher::new(self.sample_size, self.quick);
            f(&mut b);
            b.report(id, None);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    fn enabled(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

/// A group of benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Declare how many elements/bytes one iteration processes, so the
    /// report can derive a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = self.full_id(&id.into());
        if self.criterion.enabled(&full) {
            let n = self.sample_size.unwrap_or(self.criterion.sample_size);
            let mut b = Bencher::new(n, self.criterion.quick);
            f(&mut b);
            b.report(&full, self.throughput);
        }
        self
    }

    /// Run one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}

    fn full_id(&self, id: &BenchmarkId) -> String {
        match (&id.function, &id.parameter) {
            (Some(f), Some(p)) => format!("{}/{f}/{p}", self.name),
            (Some(f), None) => format!("{}/{f}", self.name),
            (None, Some(p)) => format!("{}/{p}", self.name),
            (None, None) => self.name.clone(),
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A parameter value only (the group name identifies the function).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Units one iteration is measured in, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times the closure handed to it by a benchmark definition.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    quick: bool,
    /// Per-iteration durations of each timed sample.
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, quick: bool) -> Self {
        Self {
            sample_size,
            quick,
            samples: Vec::new(),
        }
    }

    /// Measure a routine. The routine's output is passed through
    /// [`black_box`] so the optimizer cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.quick {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            return;
        }
        // Warm-up & calibration: time one iteration, then size samples to
        // ~5 ms (at least 1 iteration) so cheap routines are resolvable.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{id:<48} (no measurement — Bencher::iter never called)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let rate = throughput.map_or(String::new(), |t| {
            let per_sec = |n: u64| n as f64 / median.as_secs_f64();
            match t {
                Throughput::Elements(n) => format!("  {:>12.1} elem/s", per_sec(n)),
                Throughput::Bytes(n) => format!("  {:>12.1} B/s", per_sec(n)),
            }
        });
        println!(
            "{id:<48} time: [{} {} {}]{rate}",
            fmt_duration(sorted[0]),
            fmt_duration(median),
            fmt_duration(*sorted.last().expect("non-empty")),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark entry point, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new(3, false);
        b.iter(|| black_box(1 + 1));
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn quick_mode_runs_once() {
        let mut b = Bencher::new(10, true);
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.samples.len(), 1);
    }

    #[test]
    fn benchmark_ids_compose() {
        let mut c = Criterion {
            sample_size: 1,
            filters: vec!["never-matches".into()],
            quick: true,
        };
        let mut g = c.benchmark_group("grp");
        assert_eq!(g.full_id(&BenchmarkId::from_parameter("p")), "grp/p");
        assert_eq!(g.full_id(&BenchmarkId::new("f", 3)), "grp/f/3");
        assert_eq!(g.full_id(&BenchmarkId::from("plain")), "grp/plain");
        // Filtered-out benchmarks must not execute.
        let mut ran = false;
        g.bench_function("skipped", |b| {
            ran = true;
            b.iter(|| ());
        });
        g.finish();
        assert!(!ran);
    }

    #[test]
    fn durations_format_with_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500.0 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
