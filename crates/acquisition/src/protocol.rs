//! Class-balanced two-phase trace capture.
//!
//! Acquisition is split into two pure stages so it can be sharded:
//!
//! 1. **Scheduling** ([`classified_schedule`], [`cpa_schedule`]) — all
//!    mask/plaintext randomness is drawn here, sequentially, from the
//!    protocol seed, producing a list of [`Stimulus`] records;
//! 2. **Capture** ([`capture_stimulus`]) — simulating one stimulus, with
//!    measurement noise (if configured) seeded per trace via
//!    [`trace_seed`], so trace `i` is the same no matter which worker or
//!    in which order it is captured.
//!
//! The sequential [`acquire`] / [`acquire_cpa`] entry points and the
//! parallel executor in the `sca-campaign` crate both compose these same
//! stages, which is what makes their outputs bit-identical.

use gatesim::{CaptureSession, CaptureStats, Derating, SamplingConfig, SimConfig, Simulator};
use leakage_core::online::{SpectrumAccumulator, SpectrumStream, SumMode};
use leakage_core::ClassifiedTraces;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sbox_circuits::SboxCircuit;

/// Acquisition parameters. The default reproduces the paper: 64 traces per
/// class (1024 total), 100 samples over 2 ns, Vdd 1.2 V / 85 °C.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolConfig {
    /// Traces collected for each of the 16 classes.
    pub traces_per_class: usize,
    /// Oscilloscope configuration.
    pub sampling: SamplingConfig,
    /// Electrical/timing simulator configuration.
    pub sim: SimConfig,
    /// Seed for mask randomness and class-order shuffling.
    pub seed: u64,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            traces_per_class: 64,
            sampling: SamplingConfig::default(),
            sim: SimConfig::default(),
            seed: 0xD47E_2022,
        }
    }
}

/// Number of classes (the PRESENT S-box input space).
pub const NUM_CLASSES: usize = 16;

/// One scheduled trace: the label it will carry (class index for the
/// leakage protocol, plaintext nibble for CPA) and the input vectors the
/// circuit transitions between.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stimulus {
    /// Class index or plaintext nibble.
    pub label: u16,
    /// Input vector the circuit settles on before t = 0.
    pub initial: Vec<bool>,
    /// Input vector applied at t = 0.
    pub final_inputs: Vec<bool>,
}

impl Stimulus {
    /// Check that this stimulus fits a circuit with `expected_inputs`
    /// primary inputs.
    ///
    /// The simulator asserts these lengths deep inside its transition
    /// loop; validating up front turns a guaranteed-to-repeat panic into
    /// a typed error the campaign executor can quarantine immediately
    /// instead of burning retries on.
    pub fn validate(&self, expected_inputs: usize) -> Result<(), CaptureError> {
        for (what, vector) in [("initial", &self.initial), ("final", &self.final_inputs)] {
            if vector.len() != expected_inputs {
                return Err(CaptureError::InputWidth {
                    label: self.label,
                    vector: what,
                    got: vector.len(),
                    expected: expected_inputs,
                });
            }
        }
        Ok(())
    }
}

/// A stimulus that cannot be captured on the simulator it was handed to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaptureError {
    /// An input vector's width does not match the circuit.
    InputWidth {
        /// The stimulus' label (class or plaintext nibble).
        label: u16,
        /// Which vector is wrong (`"initial"` or `"final"`).
        vector: &'static str,
        /// The vector's length.
        got: usize,
        /// The circuit's primary input count.
        expected: usize,
    },
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::InputWidth {
                label,
                vector,
                got,
                expected,
            } => write!(
                f,
                "stimulus (label {label}) has a {vector} vector of {got} inputs; \
                 the circuit has {expected}"
            ),
        }
    }
}

impl std::error::Error for CaptureError {}

/// Derive the measurement-noise seed of trace `index` from the campaign
/// seed (a SplitMix64-style finalizer over both words).
///
/// Seeding per trace — rather than threading one generator through the
/// capture loop — is what lets a sharded executor produce bit-identical
/// traces for any worker count, including the sequential paths in this
/// crate.
pub fn trace_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut z = campaign_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The full, shuffled stimulus schedule of the leakage protocol; all mask
/// randomness is drawn here, from `config.seed`, before any simulation.
pub fn classified_schedule(circuit: &SboxCircuit, config: &ProtocolConfig) -> Vec<Stimulus> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    stimuli(circuit, config, &mut rng)
        .into_iter()
        .map(|(class, initial, final_inputs)| Stimulus {
            label: class as u16,
            initial,
            final_inputs,
        })
        .collect()
}

/// Capture one scheduled stimulus, seeding measurement noise from
/// `seed` (obtain it via [`trace_seed`]). Returns the power trace and
/// the simulator's event counters.
pub fn capture_stimulus(
    sim: &Simulator<'_>,
    stimulus: &Stimulus,
    sampling: &SamplingConfig,
    seed: u64,
) -> (Vec<f64>, CaptureStats) {
    let mut rng = SmallRng::seed_from_u64(seed);
    sim.capture_with_rng_stats(
        &stimulus.initial,
        &stimulus.final_inputs,
        sampling,
        &mut rng,
    )
}

/// [`capture_stimulus`] on a reusable [`CaptureSession`] — the hot path
/// for capture loops. Bit-identical to the one-shot variant (the
/// simulator's own capture runs on a temporary session), but the only
/// per-trace allocation left is the returned trace itself.
pub fn capture_stimulus_session(
    session: &mut CaptureSession<'_>,
    stimulus: &Stimulus,
    sampling: &SamplingConfig,
    seed: u64,
) -> (Vec<f64>, CaptureStats) {
    let mut rng = SmallRng::seed_from_u64(seed);
    session.capture_with_rng_stats(
        &stimulus.initial,
        &stimulus.final_inputs,
        sampling,
        &mut rng,
    )
}

/// [`capture_stimulus`], but validating the stimulus against the
/// simulator's circuit first and returning a typed [`CaptureError`]
/// instead of panicking on a malformed schedule entry.
pub fn try_capture_stimulus(
    sim: &Simulator<'_>,
    stimulus: &Stimulus,
    sampling: &SamplingConfig,
    seed: u64,
) -> Result<(Vec<f64>, CaptureStats), CaptureError> {
    stimulus.validate(sim.netlist().num_inputs())?;
    Ok(capture_stimulus(sim, stimulus, sampling, seed))
}

/// [`capture_stimulus_session`] with the same up-front validation as
/// [`try_capture_stimulus`].
pub fn try_capture_stimulus_session(
    session: &mut CaptureSession<'_>,
    stimulus: &Stimulus,
    sampling: &SamplingConfig,
    seed: u64,
) -> Result<(Vec<f64>, CaptureStats), CaptureError> {
    stimulus.validate(session.simulator().netlist().num_inputs())?;
    Ok(capture_stimulus_session(session, stimulus, sampling, seed))
}

/// Acquire a class-balanced trace set from a fresh (unaged) device.
pub fn acquire(circuit: &SboxCircuit, config: &ProtocolConfig) -> ClassifiedTraces {
    let derating = Derating::fresh(circuit.netlist());
    acquire_with_derating(circuit, config, &derating)
}

/// Acquire from a device with per-gate aging derating applied.
pub fn acquire_with_derating(
    circuit: &SboxCircuit,
    config: &ProtocolConfig,
    derating: &Derating,
) -> ClassifiedTraces {
    let sim = Simulator::with_derating(circuit.netlist(), &config.sim, derating);
    let mut session = sim.session();
    let mut set = ClassifiedTraces::new(NUM_CLASSES, config.sampling.samples);
    for (i, stimulus) in classified_schedule(circuit, config).iter().enumerate() {
        let (trace, _) = capture_stimulus_session(
            &mut session,
            stimulus,
            &config.sampling,
            trace_seed(config.seed, i as u64),
        );
        set.push(usize::from(stimulus.label), trace);
    }
    set
}

/// Acquire the leakage protocol's trace set as a streaming fold: each
/// trace is captured into a reused sample buffer and immediately folded
/// into a [`SpectrumAccumulator`], so no trace is ever retained — peak
/// memory is `O(classes × samples)` instead of `O(traces)`.
///
/// In [`SumMode::Exact`] the result's spectrum is bit-identical to
/// `LeakageSpectrum::from_class_means(&acquire(..).class_means())`; in
/// [`SumMode::Welford`] it agrees to rounding error (see the
/// `leakage_core::online` docs for the tolerance policy). Either way the
/// fold goes through the deterministic [`FOLD_CHUNK`]-sized merge tree,
/// so the result also matches the sharded campaign executor bit-for-bit
/// at any worker count.
///
/// [`FOLD_CHUNK`]: leakage_core::online::FOLD_CHUNK
pub fn acquire_streaming(
    circuit: &SboxCircuit,
    config: &ProtocolConfig,
    mode: SumMode,
) -> SpectrumAccumulator {
    let derating = Derating::fresh(circuit.netlist());
    acquire_streaming_with_derating(circuit, config, &derating, mode)
}

/// [`acquire_streaming`] from a device with per-gate aging derating
/// applied.
pub fn acquire_streaming_with_derating(
    circuit: &SboxCircuit,
    config: &ProtocolConfig,
    derating: &Derating,
    mode: SumMode,
) -> SpectrumAccumulator {
    let sim = Simulator::with_derating(circuit.netlist(), &config.sim, derating);
    let mut session = sim.session();
    let mut stream = SpectrumStream::new(NUM_CLASSES, config.sampling.samples, mode);
    let mut buf = Vec::new();
    for (i, stimulus) in classified_schedule(circuit, config).iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(trace_seed(config.seed, i as u64));
        session.capture_into(
            &stimulus.initial,
            &stimulus.final_inputs,
            &config.sampling,
            &mut rng,
            &mut buf,
        );
        stream.fold(usize::from(stimulus.label), &buf);
    }
    stream.finish()
}

/// The balanced, shuffled stimulus schedule: `(class, initial, final)`
/// triples in acquisition order.
///
/// Mask randomness is sampled **stratified per class**: each independent
/// mask subfield (MI, MO, gadget R, TI share triplets) cycles through its
/// value space an equal number of times within a class's batch before
/// being shuffled. This is the "non-biased evaluation … fair comparison"
/// of paper §V-A: with only 64 traces per class, i.i.d. mask draws would
/// leave sampling noise that swamps the small residual leakage of the
/// masked styles.
fn stimuli(
    circuit: &SboxCircuit,
    config: &ProtocolConfig,
    rng: &mut SmallRng,
) -> Vec<(usize, Vec<bool>, Vec<bool>)> {
    let enc = circuit.encoding();
    let mut all = Vec::with_capacity(NUM_CLASSES * config.traces_per_class);
    for class in 0..NUM_CLASSES {
        let final_masks = balanced_mask_words(enc, config.traces_per_class, rng);
        // Initial masks are the final masks XOR a *balanced difference*:
        // the mask-transition statistics (which drive switching energy)
        // are then identical across classes, so mask-pairing sampling
        // noise cannot masquerade as class leakage.
        let diffs = balanced_mask_words(enc, config.traces_per_class, rng);
        for (fm, d) in final_masks.into_iter().zip(diffs) {
            let initial = enc.encode_masked(0, fm ^ d);
            let final_inputs = enc.encode_masked(class as u8, fm);
            all.push((class, initial, final_inputs));
        }
    }
    all.shuffle(rng);
    all
}

/// Mask words whose independent subfields are each exactly balanced over
/// their value space (up to remainder when `count` is not a multiple),
/// shuffled so subfields pair randomly.
fn balanced_mask_words(
    enc: &sbox_circuits::InputEncoding,
    count: usize,
    rng: &mut SmallRng,
) -> Vec<u32> {
    let fields = enc.mask_fields();
    let mut words = vec![0u32; count];
    let mut shift = 0usize;
    for &width in fields {
        let size = 1usize << width;
        let mut vals: Vec<u32> = (0..count).map(|i| (i % size) as u32).collect();
        vals.shuffle(rng);
        for (word, v) in words.iter_mut().zip(vals) {
            *word |= v << shift;
        }
        shift += width;
    }
    words
}

/// Traces labelled with known plaintexts for a CPA experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CpaAcquisition {
    /// The secret key nibble the traces were captured under.
    pub key: u8,
    /// Plaintext nibble of each trace.
    pub plaintexts: Vec<u8>,
    /// Power trace of each acquisition.
    pub traces: Vec<Vec<f64>>,
}

/// The CPA stimulus schedule: uniformly random plaintext nibbles (stored
/// as each stimulus' label), the round-key addition `t = p ⊕ k` applied
/// in the (unmasked) stimulus domain, masks fresh per trace. All
/// randomness is drawn here, from `config.seed`, before any simulation.
///
/// # Panics
///
/// Panics if `key >= 16` or `traces == 0`.
pub fn cpa_schedule(
    circuit: &SboxCircuit,
    config: &ProtocolConfig,
    key: u8,
    traces: usize,
) -> Vec<Stimulus> {
    assert!(key < 16);
    assert!(traces > 0);
    let mut rng = SmallRng::seed_from_u64(cpa_seed(config));
    (0..traces)
        .map(|_| {
            let p: u8 = rng.gen_range(0..16);
            let t = p ^ key;
            Stimulus {
                label: u16::from(p),
                initial: circuit.encoding().encode(0, &mut rng),
                final_inputs: circuit.encoding().encode(t, &mut rng),
            }
        })
        .collect()
}

/// The seed domain of the CPA protocol (kept distinct from the leakage
/// protocol so the two never share mask or noise streams).
pub fn cpa_seed(config: &ProtocolConfig) -> u64 {
    config.seed ^ 0xC0FF_EE00
}

/// Acquire an attack dataset (see [`cpa_schedule`] for the protocol).
///
/// # Panics
///
/// Panics if `key >= 16` or `traces == 0`.
pub fn acquire_cpa(
    circuit: &SboxCircuit,
    config: &ProtocolConfig,
    key: u8,
    traces: usize,
) -> CpaAcquisition {
    let sim = Simulator::new(circuit.netlist(), &config.sim);
    let mut session = sim.session();
    let schedule = cpa_schedule(circuit, config, key, traces);
    let mut plaintexts = Vec::with_capacity(traces);
    let mut out = Vec::with_capacity(traces);
    for (i, stimulus) in schedule.iter().enumerate() {
        let (trace, _) = capture_stimulus_session(
            &mut session,
            stimulus,
            &config.sampling,
            trace_seed(cpa_seed(config), i as u64),
        );
        plaintexts.push(stimulus.label as u8);
        out.push(trace);
    }
    CpaAcquisition {
        key,
        plaintexts,
        traces: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_circuits::Scheme;

    fn small_config() -> ProtocolConfig {
        ProtocolConfig {
            traces_per_class: 4,
            ..ProtocolConfig::default()
        }
    }

    #[test]
    fn classes_are_balanced_and_complete() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let set = acquire(&circuit, &small_config());
        assert_eq!(set.len(), 64);
        assert_eq!(set.class_counts(), vec![4; 16]);
        assert_eq!(set.samples(), 100);
    }

    #[test]
    fn acquisition_is_deterministic_in_the_seed() {
        let circuit = SboxCircuit::build(Scheme::Rsm);
        let a = acquire(&circuit, &small_config());
        let b = acquire(&circuit, &small_config());
        assert_eq!(a, b);
        let other = acquire(
            &circuit,
            &ProtocolConfig {
                seed: 1,
                ..small_config()
            },
        );
        assert_ne!(a, other);
    }

    #[test]
    fn unprotected_traces_differ_by_class() {
        let circuit = SboxCircuit::build(Scheme::Lut);
        let set = acquire(&circuit, &small_config());
        let means = set.class_means();
        let m0: f64 = means[0].iter().sum();
        assert!(
            (1..16).any(|c| (means[c].iter().sum::<f64>() - m0).abs() > 1e-9),
            "all class means identical — no signal at all?"
        );
    }

    #[test]
    fn class_zero_final_values_cause_least_activity() {
        // Initial and final both encode class 0 for unprotected circuits:
        // identical inputs → zero events → an all-zero class-0 mean.
        let circuit = SboxCircuit::build(Scheme::Opt);
        let set = acquire(&circuit, &small_config());
        let means = set.class_means();
        assert!(means[0].iter().all(|&p| p == 0.0));
        assert!(means[5].iter().any(|&p| p > 0.0));
    }

    #[test]
    fn mask_subfields_are_exactly_balanced() {
        let mut rng = SmallRng::seed_from_u64(99);
        for scheme in [Scheme::Glut, Scheme::Rsm, Scheme::Isw, Scheme::Ti] {
            let enc = sbox_circuits::InputEncoding::for_scheme(scheme);
            let words = balanced_mask_words(&enc, 64, &mut rng);
            assert_eq!(words.len(), 64);
            let mut shift = 0usize;
            for &width in enc.mask_fields() {
                let size = 1usize << width;
                let mut counts = vec![0usize; size];
                for &w in &words {
                    counts[((w >> shift) as usize) & (size - 1)] += 1;
                }
                let expect = 64 / size;
                assert!(
                    counts.iter().all(|&c| c == expect),
                    "{scheme} field at {shift}: {counts:?}"
                );
                shift += width;
            }
        }
    }

    #[test]
    fn unprotected_mask_words_are_all_zero() {
        let mut rng = SmallRng::seed_from_u64(100);
        let enc = sbox_circuits::InputEncoding::for_scheme(Scheme::Lut);
        let words = balanced_mask_words(&enc, 16, &mut rng);
        assert!(words.iter().all(|&w| w == 0));
    }

    #[test]
    fn stimuli_are_shuffled_across_classes() {
        // Acquisition order must interleave classes (no block structure
        // that would alias drift into class means).
        let circuit = SboxCircuit::build(Scheme::Opt);
        let set = acquire(&circuit, &small_config());
        let labels: Vec<usize> = set.iter().map(|(c, _)| c).collect();
        let sorted = {
            let mut l = labels.clone();
            l.sort_unstable();
            l
        };
        assert_ne!(labels, sorted, "stimulus order should be shuffled");
    }

    #[test]
    fn schedule_and_per_trace_seeds_reproduce_acquire() {
        // Capturing the schedule out of order with per-trace seeds must
        // agree with the sequential path — the invariant the parallel
        // campaign executor stands on.
        let circuit = SboxCircuit::build(Scheme::Isw);
        let config = small_config();
        let sequential = acquire(&circuit, &config);
        let sim = gatesim::Simulator::new(circuit.netlist(), &config.sim);
        let schedule = classified_schedule(&circuit, &config);
        let mut traces: Vec<(usize, Vec<f64>)> = schedule
            .iter()
            .enumerate()
            .rev() // deliberately reversed capture order
            .map(|(i, s)| {
                let (t, _) =
                    capture_stimulus(&sim, s, &config.sampling, trace_seed(config.seed, i as u64));
                (i, t)
            })
            .collect();
        traces.sort_by_key(|(i, _)| *i);
        let mut set = ClassifiedTraces::new(NUM_CLASSES, config.sampling.samples);
        for ((_, trace), s) in traces.into_iter().zip(&schedule) {
            set.push(usize::from(s.label), trace);
        }
        assert_eq!(set, sequential);
    }

    #[test]
    fn malformed_stimuli_fail_validation_with_a_typed_error() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let config = small_config();
        let sim = gatesim::Simulator::new(circuit.netlist(), &config.sim);
        let good = classified_schedule(&circuit, &config).remove(0);
        assert!(good.validate(circuit.netlist().num_inputs()).is_ok());
        assert!(try_capture_stimulus(&sim, &good, &config.sampling, 1).is_ok());

        let mut bad = good.clone();
        bad.final_inputs.push(false);
        let err = bad
            .validate(circuit.netlist().num_inputs())
            .expect_err("wrong width must fail");
        assert!(err.to_string().contains("final vector"));
        assert_eq!(
            try_capture_stimulus(&sim, &bad, &config.sampling, 1),
            Err(err)
        );
    }

    #[test]
    fn streaming_acquisition_matches_batch() {
        let circuit = SboxCircuit::build(Scheme::Glut);
        let config = small_config();
        let batch = acquire(&circuit, &config);
        let batch_spectrum = leakage_core::LeakageSpectrum::from_class_means(&batch.class_means());
        let exact = acquire_streaming(&circuit, &config, SumMode::Exact);
        assert_eq!(exact.len() as usize, batch.len());
        assert_eq!(exact.class_counts(), batch.class_counts());
        assert_eq!(
            exact.spectrum(),
            batch_spectrum,
            "exact mode must be bitwise"
        );
        let welford = acquire_streaming(&circuit, &config, SumMode::Welford);
        let tlp = batch_spectrum.total_leakage_power();
        assert!(
            (welford.spectrum().total_leakage_power() - tlp).abs() <= 1e-9 * tlp.abs().max(1.0)
        );
    }

    #[test]
    fn trace_seeds_decorrelate() {
        let a = trace_seed(1, 0);
        let b = trace_seed(1, 1);
        let c = trace_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, trace_seed(1, 0));
    }

    #[test]
    fn cpa_dataset_has_uniformish_plaintexts() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let data = acquire_cpa(&circuit, &small_config(), 0xB, 256);
        assert_eq!(data.traces.len(), 256);
        let mut counts = [0usize; 16];
        for &p in &data.plaintexts {
            counts[usize::from(p)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0));
    }
}
