//! Class-balanced two-phase trace capture.

use gatesim::{Derating, SamplingConfig, SimConfig, Simulator};
use leakage_core::ClassifiedTraces;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sbox_circuits::SboxCircuit;

/// Acquisition parameters. The default reproduces the paper: 64 traces per
/// class (1024 total), 100 samples over 2 ns, Vdd 1.2 V / 85 °C.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolConfig {
    /// Traces collected for each of the 16 classes.
    pub traces_per_class: usize,
    /// Oscilloscope configuration.
    pub sampling: SamplingConfig,
    /// Electrical/timing simulator configuration.
    pub sim: SimConfig,
    /// Seed for mask randomness and class-order shuffling.
    pub seed: u64,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            traces_per_class: 64,
            sampling: SamplingConfig::default(),
            sim: SimConfig::default(),
            seed: 0xD47E_2022,
        }
    }
}

/// Number of classes (the PRESENT S-box input space).
pub const NUM_CLASSES: usize = 16;

/// Acquire a class-balanced trace set from a fresh (unaged) device.
pub fn acquire(circuit: &SboxCircuit, config: &ProtocolConfig) -> ClassifiedTraces {
    let derating = Derating::fresh(circuit.netlist());
    acquire_with_derating(circuit, config, &derating)
}

/// Acquire from a device with per-gate aging derating applied.
pub fn acquire_with_derating(
    circuit: &SboxCircuit,
    config: &ProtocolConfig,
    derating: &Derating,
) -> ClassifiedTraces {
    let sim = Simulator::with_derating(circuit.netlist(), &config.sim, derating);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut set = ClassifiedTraces::new(NUM_CLASSES, config.sampling.samples);
    for (class, initial, final_inputs) in stimuli(circuit, config, &mut rng) {
        let trace = sim.capture_with_rng(&initial, &final_inputs, &config.sampling, &mut rng);
        set.push(class, trace);
    }
    set
}

/// The balanced, shuffled stimulus schedule: `(class, initial, final)`
/// triples in acquisition order.
///
/// Mask randomness is sampled **stratified per class**: each independent
/// mask subfield (MI, MO, gadget R, TI share triplets) cycles through its
/// value space an equal number of times within a class's batch before
/// being shuffled. This is the "non-biased evaluation … fair comparison"
/// of paper §V-A: with only 64 traces per class, i.i.d. mask draws would
/// leave sampling noise that swamps the small residual leakage of the
/// masked styles.
fn stimuli(
    circuit: &SboxCircuit,
    config: &ProtocolConfig,
    rng: &mut SmallRng,
) -> Vec<(usize, Vec<bool>, Vec<bool>)> {
    let enc = circuit.encoding();
    let mut all = Vec::with_capacity(NUM_CLASSES * config.traces_per_class);
    for class in 0..NUM_CLASSES {
        let final_masks = balanced_mask_words(enc, config.traces_per_class, rng);
        // Initial masks are the final masks XOR a *balanced difference*:
        // the mask-transition statistics (which drive switching energy)
        // are then identical across classes, so mask-pairing sampling
        // noise cannot masquerade as class leakage.
        let diffs = balanced_mask_words(enc, config.traces_per_class, rng);
        for (fm, d) in final_masks.into_iter().zip(diffs) {
            let initial = enc.encode_masked(0, fm ^ d);
            let final_inputs = enc.encode_masked(class as u8, fm);
            all.push((class, initial, final_inputs));
        }
    }
    all.shuffle(rng);
    all
}

/// Mask words whose independent subfields are each exactly balanced over
/// their value space (up to remainder when `count` is not a multiple),
/// shuffled so subfields pair randomly.
fn balanced_mask_words(
    enc: &sbox_circuits::InputEncoding,
    count: usize,
    rng: &mut SmallRng,
) -> Vec<u32> {
    let fields = enc.mask_fields();
    let mut words = vec![0u32; count];
    let mut shift = 0usize;
    for &width in fields {
        let size = 1usize << width;
        let mut vals: Vec<u32> = (0..count).map(|i| (i % size) as u32).collect();
        vals.shuffle(rng);
        for (word, v) in words.iter_mut().zip(vals) {
            *word |= v << shift;
        }
        shift += width;
    }
    words
}

/// Traces labelled with known plaintexts for a CPA experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CpaAcquisition {
    /// The secret key nibble the traces were captured under.
    pub key: u8,
    /// Plaintext nibble of each trace.
    pub plaintexts: Vec<u8>,
    /// Power trace of each acquisition.
    pub traces: Vec<Vec<f64>>,
}

/// Acquire an attack dataset: uniformly random plaintext nibbles, the
/// round-key addition `t = p ⊕ k` applied in the (unmasked) stimulus
/// domain, masks fresh per trace.
///
/// # Panics
///
/// Panics if `key >= 16` or `traces == 0`.
pub fn acquire_cpa(
    circuit: &SboxCircuit,
    config: &ProtocolConfig,
    key: u8,
    traces: usize,
) -> CpaAcquisition {
    assert!(key < 16);
    assert!(traces > 0);
    let sim = Simulator::new(circuit.netlist(), &config.sim);
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xC0FF_EE00);
    let mut plaintexts = Vec::with_capacity(traces);
    let mut out = Vec::with_capacity(traces);
    for _ in 0..traces {
        let p: u8 = rng.gen_range(0..16);
        let t = p ^ key;
        let initial = circuit.encoding().encode(0, &mut rng);
        let final_inputs = circuit.encoding().encode(t, &mut rng);
        let trace = sim.capture_with_rng(&initial, &final_inputs, &config.sampling, &mut rng);
        plaintexts.push(p);
        out.push(trace);
    }
    CpaAcquisition {
        key,
        plaintexts,
        traces: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbox_circuits::Scheme;

    fn small_config() -> ProtocolConfig {
        ProtocolConfig {
            traces_per_class: 4,
            ..ProtocolConfig::default()
        }
    }

    #[test]
    fn classes_are_balanced_and_complete() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let set = acquire(&circuit, &small_config());
        assert_eq!(set.len(), 64);
        assert_eq!(set.class_counts(), vec![4; 16]);
        assert_eq!(set.samples(), 100);
    }

    #[test]
    fn acquisition_is_deterministic_in_the_seed() {
        let circuit = SboxCircuit::build(Scheme::Rsm);
        let a = acquire(&circuit, &small_config());
        let b = acquire(&circuit, &small_config());
        assert_eq!(a, b);
        let other = acquire(
            &circuit,
            &ProtocolConfig {
                seed: 1,
                ..small_config()
            },
        );
        assert_ne!(a, other);
    }

    #[test]
    fn unprotected_traces_differ_by_class() {
        let circuit = SboxCircuit::build(Scheme::Lut);
        let set = acquire(&circuit, &small_config());
        let means = set.class_means();
        let m0: f64 = means[0].iter().sum();
        assert!(
            (1..16).any(|c| (means[c].iter().sum::<f64>() - m0).abs() > 1e-9),
            "all class means identical — no signal at all?"
        );
    }

    #[test]
    fn class_zero_final_values_cause_least_activity() {
        // Initial and final both encode class 0 for unprotected circuits:
        // identical inputs → zero events → an all-zero class-0 mean.
        let circuit = SboxCircuit::build(Scheme::Opt);
        let set = acquire(&circuit, &small_config());
        let means = set.class_means();
        assert!(means[0].iter().all(|&p| p == 0.0));
        assert!(means[5].iter().any(|&p| p > 0.0));
    }

    #[test]
    fn mask_subfields_are_exactly_balanced() {
        let mut rng = SmallRng::seed_from_u64(99);
        for scheme in [Scheme::Glut, Scheme::Rsm, Scheme::Isw, Scheme::Ti] {
            let enc = sbox_circuits::InputEncoding::for_scheme(scheme);
            let words = balanced_mask_words(&enc, 64, &mut rng);
            assert_eq!(words.len(), 64);
            let mut shift = 0usize;
            for &width in enc.mask_fields() {
                let size = 1usize << width;
                let mut counts = vec![0usize; size];
                for &w in &words {
                    counts[((w >> shift) as usize) & (size - 1)] += 1;
                }
                let expect = 64 / size;
                assert!(
                    counts.iter().all(|&c| c == expect),
                    "{scheme} field at {shift}: {counts:?}"
                );
                shift += width;
            }
        }
    }

    #[test]
    fn unprotected_mask_words_are_all_zero() {
        let mut rng = SmallRng::seed_from_u64(100);
        let enc = sbox_circuits::InputEncoding::for_scheme(Scheme::Lut);
        let words = balanced_mask_words(&enc, 16, &mut rng);
        assert!(words.iter().all(|&w| w == 0));
    }

    #[test]
    fn stimuli_are_shuffled_across_classes() {
        // Acquisition order must interleave classes (no block structure
        // that would alias drift into class means).
        let circuit = SboxCircuit::build(Scheme::Opt);
        let set = acquire(&circuit, &small_config());
        let labels: Vec<usize> = set.iter().map(|(c, _)| c).collect();
        let sorted = {
            let mut l = labels.clone();
            l.sort_unstable();
            l
        };
        assert_ne!(labels, sorted, "stimulus order should be shuffled");
    }

    #[test]
    fn cpa_dataset_has_uniformish_plaintexts() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let data = acquire_cpa(&circuit, &small_config(), 0xB, 256);
        assert_eq!(data.traces.len(), 256);
        let mut counts = [0usize; 16];
        for &p in &data.plaintexts {
            counts[usize::from(p)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0));
    }
}
