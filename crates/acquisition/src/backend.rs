//! Capture-backend selection: the event-driven reference engine vs the
//! bit-sliced levelized engine.
//!
//! Every acquisition path in this workspace is defined by the
//! event-driven engine's semantics; the bit-sliced backend is a pure
//! throughput optimisation that must reproduce those semantics
//! bit-for-bit wherever it runs at all. Netlists it cannot handle
//! (sub-resolution effective delays, where commit order — and therefore
//! inertial-absorption order — is not reproducible from levelized
//! evaluation) are rejected statically by
//! [`Simulator::bitsliced_session`], and callers fall back to the
//! event-driven path.
//!
//! [`Simulator::bitsliced_session`]: gatesim::Simulator::bitsliced_session

use gatesim::{BitslicedSession, CaptureStats, Derating, LaneStimulus, SamplingConfig, Simulator};
use leakage_core::ClassifiedTraces;
use sbox_circuits::SboxCircuit;

use crate::protocol::{
    classified_schedule, trace_seed, CaptureError, ProtocolConfig, Stimulus, NUM_CLASSES,
};

/// Which gate-level capture engine executes scheduled stimuli.
///
/// Selected per campaign (env knob `SCA_BACKEND` in the experiment
/// binaries) and recorded in run reports, so a throughput number is
/// never quoted without the engine that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The event-driven engine: one trace per pass, full glitch-order
    /// fidelity on every netlist. The reference semantics.
    #[default]
    Event,
    /// The bit-sliced levelized engine: up to [`gatesim::LANES`] traces
    /// per pass. Requests the fast path; falls back to `Event` (with a
    /// recorded warning) on netlists the static support check rejects.
    Bitsliced,
    /// Probe bit-sliced support per netlist and use it where available,
    /// silently taking the event-driven path otherwise.
    Auto,
}

impl Backend {
    /// The knob spelling of this backend (`event` / `bitsliced` /
    /// `auto`), as written to run reports and `campaign_runs.jsonl`.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Event => "event",
            Backend::Bitsliced => "bitsliced",
            Backend::Auto => "auto",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Backend {
    type Err = ();

    /// Parse the `SCA_BACKEND` knob spellings (case-insensitive).
    fn from_str(s: &str) -> Result<Self, ()> {
        match s.to_ascii_lowercase().as_str() {
            "event" => Ok(Backend::Event),
            "bitsliced" => Ok(Backend::Bitsliced),
            "auto" => Ok(Backend::Auto),
            _ => Err(()),
        }
    }
}

/// Capture a contiguous run of scheduled stimuli on a bit-sliced
/// session, one lane per stimulus.
///
/// Trace `i` of the result is bit-for-bit what the event-driven
/// [`capture_stimulus_session`] produces for the same stimulus with
/// noise seed `trace_seed(base_seed, first_index + i)` — the executor's
/// per-index seed derivation, so a sharded campaign can mix backends
/// (and worker counts) freely without changing a single sample.
///
/// Validates every stimulus against the session's circuit first and
/// returns the first width mismatch as a typed error, like
/// [`try_capture_stimulus_session`] does on the scalar path.
///
/// # Panics
///
/// Panics if `stimuli` is empty or longer than [`gatesim::LANES`]
/// (the session's lane budget).
///
/// [`capture_stimulus_session`]: crate::capture_stimulus_session
/// [`try_capture_stimulus_session`]: crate::try_capture_stimulus_session
pub fn capture_schedule_batch<'a>(
    session: &'a mut BitslicedSession<'_>,
    stimuli: &[Stimulus],
    first_index: u64,
    base_seed: u64,
    sampling: &SamplingConfig,
) -> Result<(&'a [Vec<f64>], &'a [CaptureStats]), CaptureError> {
    let expected = session.simulator().netlist().num_inputs();
    for s in stimuli {
        s.validate(expected)?;
    }
    let lanes: Vec<LaneStimulus<'_>> = stimuli
        .iter()
        .enumerate()
        .map(|(i, s)| LaneStimulus {
            initial: &s.initial,
            final_inputs: &s.final_inputs,
            noise_seed: trace_seed(base_seed, first_index + i as u64),
        })
        .collect();
    Ok(session.capture_batch(&lanes, sampling))
}

/// [`acquire_with_derating`](crate::acquire_with_derating) on the
/// bit-sliced backend: the whole classified schedule captured in
/// [`gatesim::LANES`]-sized batches.
///
/// Bit-identical to the event-driven acquisition on every netlist the
/// backend supports; returns the static support check's rejection
/// otherwise so callers can route to the event-driven path.
pub fn acquire_bitsliced_with_derating(
    circuit: &SboxCircuit,
    config: &ProtocolConfig,
    derating: &Derating,
) -> Result<ClassifiedTraces, gatesim::BitsliceUnsupported> {
    let sim = Simulator::with_derating(circuit.netlist(), &config.sim, derating);
    let mut session = sim.bitsliced_session()?;
    let schedule = classified_schedule(circuit, config);
    let mut set = ClassifiedTraces::new(NUM_CLASSES, config.sampling.samples);
    for (start, batch) in (0..).zip(schedule.chunks(gatesim::LANES)) {
        let first = (start * gatesim::LANES) as u64;
        let (traces, _) =
            capture_schedule_batch(&mut session, batch, first, config.seed, &config.sampling)
                .expect("classified_schedule stimuli always fit their circuit");
        for (s, trace) in batch.iter().zip(traces) {
            set.push(usize::from(s.label), trace.clone());
        }
    }
    Ok(set)
}

/// [`acquire_bitsliced_with_derating`] from a fresh (unaged) device.
pub fn acquire_bitsliced(
    circuit: &SboxCircuit,
    config: &ProtocolConfig,
) -> Result<ClassifiedTraces, gatesim::BitsliceUnsupported> {
    let derating = Derating::fresh(circuit.netlist());
    acquire_bitsliced_with_derating(circuit, config, &derating)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::acquire_with_derating;
    use sbox_circuits::Scheme;

    fn small_config() -> ProtocolConfig {
        ProtocolConfig {
            traces_per_class: 4,
            ..ProtocolConfig::default()
        }
    }

    #[test]
    fn backend_knob_spellings_round_trip() {
        for b in [Backend::Event, Backend::Bitsliced, Backend::Auto] {
            assert_eq!(b.as_str().parse::<Backend>(), Ok(b));
            assert_eq!(b.to_string(), b.as_str());
        }
        assert_eq!("BITSLICED".parse::<Backend>(), Ok(Backend::Bitsliced));
        assert!("fast".parse::<Backend>().is_err());
        assert_eq!(Backend::default(), Backend::Event);
    }

    #[test]
    fn bitsliced_acquisition_is_bit_identical_to_event_driven() {
        for scheme in [Scheme::Lut, Scheme::Isw] {
            let circuit = SboxCircuit::build(scheme);
            let config = small_config();
            let derating = Derating::fresh(circuit.netlist());
            let event = acquire_with_derating(&circuit, &config, &derating);
            let bitsliced = acquire_bitsliced_with_derating(&circuit, &config, &derating)
                .expect("scheme netlists are bitslice-supported");
            assert_eq!(event, bitsliced, "{scheme}: backends diverge");
        }
    }

    #[test]
    fn batch_capture_validates_stimulus_widths() {
        let circuit = SboxCircuit::build(Scheme::Opt);
        let config = small_config();
        let sim = Simulator::new(circuit.netlist(), &config.sim);
        let mut session = sim.bitsliced_session().expect("supported");
        let mut schedule = classified_schedule(&circuit, &config);
        schedule[1].final_inputs.push(false);
        let err = capture_schedule_batch(
            &mut session,
            &schedule[..4],
            0,
            config.seed,
            &config.sampling,
        )
        .expect_err("wrong width must fail before any capture");
        assert!(err.to_string().contains("final vector"));
    }
}
