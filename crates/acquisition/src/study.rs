//! The end-to-end leakage study: build → (age) → acquire → project.

use aging::{AgedDevice, AgingConditions};
use gatesim::{ActivityProfile, SimConfig, Simulator};
use leakage_core::{ClassifiedTraces, LeakageSpectrum};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sbox_circuits::{SboxCircuit, Scheme};

use crate::protocol::{acquire, acquire_with_derating, ProtocolConfig};

/// The result of one fresh-device study.
#[derive(Debug, Clone)]
pub struct StudyOutcome {
    /// The scheme studied.
    pub scheme: Scheme,
    /// The classified trace set (64 × 16 by default).
    pub traces: ClassifiedTraces,
    /// The Walsh–Hadamard projection of the class means.
    pub spectrum: LeakageSpectrum,
}

/// The result of one aged-device study.
#[derive(Debug, Clone)]
pub struct AgedOutcome {
    /// Device age in months.
    pub months: f64,
    /// The study at that age.
    pub outcome: StudyOutcome,
}

/// Orchestrates the paper's experiments over any scheme and device age.
///
/// Construction is cheap; netlists are built per call (they are
/// deterministic), so a single `LeakageStudy` can be shared across
/// experiments.
#[derive(Debug, Clone)]
pub struct LeakageStudy {
    config: ProtocolConfig,
    conditions: AgingConditions,
}

impl LeakageStudy {
    /// A study using the given acquisition parameters and the paper's
    /// default aging conditions.
    pub fn new(config: ProtocolConfig) -> Self {
        Self {
            config,
            conditions: AgingConditions::default(),
        }
    }

    /// Override the aging conditions.
    pub fn with_conditions(mut self, conditions: AgingConditions) -> Self {
        self.conditions = conditions;
        self
    }

    /// The acquisition configuration in use.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Run the fresh-device study for one scheme.
    pub fn run(&self, scheme: Scheme) -> StudyOutcome {
        let circuit = SboxCircuit::build(scheme);
        let traces = acquire(&circuit, &self.config);
        let spectrum = LeakageSpectrum::from_class_means(&traces.class_means());
        StudyOutcome {
            scheme,
            traces,
            spectrum,
        }
    }

    /// Run the study for one scheme at a sequence of device ages
    /// (months). Age 0 uses identity derating.
    ///
    /// The stress workload profiled for the aging model is the same
    /// protocol stimulus the measurement uses — the device under attack is
    /// aged by its own operation, as in the paper.
    pub fn run_aged(&self, scheme: Scheme, ages_months: &[f64]) -> Vec<AgedOutcome> {
        let circuit = SboxCircuit::build(scheme);
        let device = self.aged_device(&circuit);
        ages_months
            .iter()
            .map(|&months| {
                let derating = device.derating_at_months(months);
                let traces = acquire_with_derating(&circuit, &self.config, &derating);
                let spectrum = LeakageSpectrum::from_class_means(&traces.class_means());
                AgedOutcome {
                    months,
                    outcome: StudyOutcome {
                        scheme,
                        traces,
                        spectrum,
                    },
                }
            })
            .collect()
    }

    /// The aging model bound to a circuit's own workload profile.
    pub fn aged_device(&self, circuit: &SboxCircuit) -> AgedDevice {
        let sim_cfg = SimConfig {
            noise_mw: 0.0,
            ..self.config.sim.clone()
        };
        let sim = Simulator::new(circuit.netlist(), &sim_cfg);
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ 0xA61E);
        // A representative workload: the protocol's own stimulus pattern
        // (initial class-0 encodings alternating with random classes).
        let mut vectors = Vec::with_capacity(64);
        for i in 0..32u8 {
            vectors.push(circuit.encoding().encode(0, &mut rng));
            vectors.push(circuit.encoding().encode(i % 16, &mut rng));
        }
        let profile = ActivityProfile::collect(&sim, &vectors);
        AgedDevice::new(circuit.netlist(), profile, self.conditions.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_study() -> LeakageStudy {
        LeakageStudy::new(ProtocolConfig {
            traces_per_class: 4,
            ..ProtocolConfig::default()
        })
    }

    #[test]
    fn fresh_study_produces_a_spectrum() {
        let s = tiny_study().run(Scheme::Opt);
        assert_eq!(s.spectrum.samples(), 100);
        assert!(s.spectrum.total_leakage_power() > 0.0);
    }

    #[test]
    fn aging_reduces_total_leakage() {
        let outcomes = tiny_study().run_aged(Scheme::Opt, &[0.0, 48.0]);
        let fresh = outcomes[0].outcome.spectrum.total_leakage_power();
        let aged = outcomes[1].outcome.spectrum.total_leakage_power();
        assert!(aged < fresh, "aged {aged} !< fresh {fresh}");
        assert!(aged > 0.5 * fresh, "degradation should be gentle");
    }

    #[test]
    fn masked_scheme_leaks_less_than_unprotected() {
        // At the paper's trace budget (64/class) the masked estimate of a
        // small-variance scheme sits well below the unprotected circuits.
        let study = LeakageStudy::new(ProtocolConfig {
            traces_per_class: 64,
            ..ProtocolConfig::default()
        });
        let unprot = study.run(Scheme::Opt).spectrum.total_leakage_power();
        let isw = study.run(Scheme::Isw).spectrum.total_leakage_power();
        let rom = study.run(Scheme::RsmRom).spectrum.total_leakage_power();
        assert!(isw < unprot, "ISW {isw} !< OPT {unprot}");
        assert!(rom < unprot, "RSM-ROM {rom} !< OPT {unprot}");
    }
}
