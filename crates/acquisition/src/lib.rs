//! The paper's trace-acquisition protocol (Fig. 5) and the end-to-end
//! leakage study pipeline.
//!
//! Protocol, per trace:
//!
//! 1. the circuit settles on a **random encoding of class 0** (e.g.
//!    `A ⊕ MI = 0` for GLUT) — the "initial value";
//! 2. at `t = 0` the primary inputs switch to a **random encoding of the
//!    final value** `t ∈ F₂⁴`;
//! 3. 100 power samples are captured over 2 ns (50 GS/s).
//!
//! Final values are drawn such that every one of the 16 classes receives
//! exactly the same number of traces (the paper uses 64 × 16 = 1024), and
//! the per-class mean traces feed the Walsh–Hadamard analysis of
//! [`leakage_core`].
//!
//! # Example
//!
//! ```no_run
//! use acquisition::{LeakageStudy, ProtocolConfig};
//! use sbox_circuits::Scheme;
//!
//! let study = LeakageStudy::new(ProtocolConfig::default());
//! let outcome = study.run(Scheme::Isw);
//! println!("total leakage: {}", outcome.spectrum.total_leakage_power());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod protocol;
mod study;

pub use backend::{
    acquire_bitsliced, acquire_bitsliced_with_derating, capture_schedule_batch, Backend,
};
pub use protocol::{
    acquire, acquire_cpa, acquire_streaming, acquire_streaming_with_derating,
    acquire_with_derating, capture_stimulus, capture_stimulus_session, classified_schedule,
    cpa_schedule, cpa_seed, trace_seed, try_capture_stimulus, try_capture_stimulus_session,
    CaptureError, CpaAcquisition, ProtocolConfig, Stimulus, NUM_CLASSES,
};
pub use study::{AgedOutcome, LeakageStudy, StudyOutcome};
