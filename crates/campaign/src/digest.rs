//! Campaign-facing re-export of the shared FNV-1a/64 checksum helpers.
//!
//! The hasher itself lives in [`leakage_core::checksum`] so the store,
//! checkpoint, and scrub layers share one implementation with the
//! analysis crates; this module preserves the original
//! `sca_campaign::{Digest, fnv1a}` paths.

pub use leakage_core::checksum::{fnv1a, Digest};
