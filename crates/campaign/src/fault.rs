//! Deterministic fault injection for exercising the campaign's
//! degradation paths.
//!
//! A [`FaultPlan`] describes *which* faults fire *where*: capture panics
//! at chosen (or seeded-random) trace indices, store write errors, and
//! torn store files. It is **off by default** — an empty plan injects
//! nothing and costs one branch per trace — and is enabled either
//! programmatically (tests, benches) or through the `SCA_FAULTS`
//! environment variable, which [`crate::CampaignConfig::default`] picks
//! up so the whole test suite can run under injected faults in CI.
//!
//! Everything is deterministic: explicit indices are exact, and
//! rate-based injection derives a per-index coin flip from the plan's
//! seed with the same SplitMix64 finalizer the acquisition protocol uses
//! for per-trace noise seeds. Two runs with the same plan inject the
//! same faults at the same indices regardless of worker count.
//!
//! # `SCA_FAULTS` grammar
//!
//! Comma-separated tokens (whitespace around tokens is ignored):
//!
//! | token | meaning |
//! |---|---|
//! | `seed=N` | seed for rate-based injection (default 0) |
//! | `panic@IDX` | capture of trace `IDX` panics on its **first** attempt (a retry succeeds) |
//! | `panic@IDX!` | capture of trace `IDX` panics on **every** attempt (the index is quarantined) |
//! | `panic%RATE` | each trace's first capture attempt panics with probability `RATE` (seeded, transient) |
//! | `store` | every trace-store write fails with an injected I/O error |
//! | `torn@N` | every written store file is truncated to `N` bytes (a torn write) |
//! | `enospc@N` | store/checkpoint/report writes fail once `N` bytes have been written (a full disk) |
//! | `eio%RATE` | each write operation fails with probability `RATE` (seeded, an injected `EIO`) |
//! | `torn-checkpoint` | the run's checkpoint file loses its last few bytes after the run (a torn tail) |
//! | `slow@IDX:MS` | capture of trace `IDX` stalls `MS` ms on its **first** attempt (watchdog fodder) |
//!
//! `SCA_FAULTS=""` and `SCA_FAULTS=off` mean "no faults".

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::sync::{Once, OnceLock};
use std::time::Duration;

use acquisition::trace_seed;

use crate::iofault::WriteFaults;
use crate::store::StoreError;

/// The panic payload of an injected capture fault. Carried as a typed
/// payload (via [`std::panic::panic_any`]) so the quiet panic hook can
/// recognize injected faults and keep them out of test logs, while real
/// panics still print normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The trace index whose capture was failed.
    pub index: usize,
    /// The capture attempt (0 = first try) that was failed.
    pub attempt: u32,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected capture fault at index {} (attempt {})",
            self.index, self.attempt
        )
    }
}

/// Domain separation between the measurement-noise seed stream and the
/// fault-injection coin flips (both go through [`trace_seed`]).
const FAULT_SALT: u64 = 0xFA17_FA17_FA17_FA17;

/// A deterministic schedule of injected faults. See the
/// [module docs](self) for the `SCA_FAULTS` grammar.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transient_panics: BTreeSet<usize>,
    sticky_panics: BTreeSet<usize>,
    panic_rate: f64,
    store_errors: bool,
    torn_store_bytes: Option<u64>,
    enospc_after: Option<u64>,
    eio_rate: f64,
    torn_checkpoint: bool,
    slow_captures: BTreeMap<usize, u64>,
}

impl FaultPlan {
    /// The empty plan: injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        *self != Self::default()
    }

    /// Add trace indices whose first capture attempt panics (a retry
    /// with the re-derived per-trace seed then succeeds bit-identically).
    pub fn with_transient_panics(mut self, indices: impl IntoIterator<Item = usize>) -> Self {
        self.transient_panics.extend(indices);
        self
    }

    /// Add trace indices whose capture panics on every attempt, so the
    /// executor quarantines them.
    pub fn with_sticky_panics(mut self, indices: impl IntoIterator<Item = usize>) -> Self {
        self.sticky_panics.extend(indices);
        self
    }

    /// Fail each trace's first capture attempt with probability `rate`,
    /// decided per index from `seed` (deterministic across runs and
    /// worker counts).
    pub fn with_panic_rate(mut self, seed: u64, rate: f64) -> Self {
        self.seed = seed;
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fail every trace-store write with an injected I/O error.
    pub fn with_store_errors(mut self) -> Self {
        self.store_errors = true;
        self
    }

    /// Truncate every written store file to `bytes` bytes (a torn
    /// write: the writer reports success but the file is corrupt).
    pub fn with_torn_store(mut self, bytes: u64) -> Self {
        self.torn_store_bytes = Some(bytes);
        self
    }

    /// Fail store/checkpoint/report writes once `bytes` bytes have been
    /// written through any one sink (an injected full disk).
    pub fn with_enospc_after(mut self, bytes: u64) -> Self {
        self.enospc_after = Some(bytes);
        self
    }

    /// Fail each write *operation* with probability `rate`, decided by a
    /// per-operation coin derived from the plan's seed.
    pub fn with_eio_rate(mut self, seed: u64, rate: f64) -> Self {
        self.seed = seed;
        self.eio_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Tear the tail off the run's checkpoint file after the run
    /// finishes writing it (the crash-mid-flush case the salvage scan
    /// must absorb).
    pub fn with_torn_checkpoint(mut self) -> Self {
        self.torn_checkpoint = true;
        self
    }

    /// Stall the capture of trace `index` for `millis` ms on its first
    /// attempt only, so a watchdog-discarded attempt retries at full
    /// speed and stays bit-identical.
    pub fn with_slow_capture(mut self, index: usize, millis: u64) -> Self {
        self.slow_captures.insert(index, millis);
        self
    }

    /// Parse an `SCA_FAULTS` specification.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        let spec = spec.trim();
        if spec.is_empty() || spec == "off" {
            return Ok(plan);
        }
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            if let Some(v) = token.strip_prefix("seed=") {
                plan.seed = v
                    .parse()
                    .map_err(|_| format!("bad seed {v:?} in fault spec"))?;
            } else if let Some(v) = token.strip_prefix("panic@") {
                let (v, sticky) = match v.strip_suffix('!') {
                    Some(v) => (v, true),
                    None => (v, false),
                };
                let index: usize = v
                    .parse()
                    .map_err(|_| format!("bad index {v:?} in fault spec"))?;
                if sticky {
                    plan.sticky_panics.insert(index);
                } else {
                    plan.transient_panics.insert(index);
                }
            } else if let Some(v) = token.strip_prefix("panic%") {
                let rate: f64 = v
                    .parse()
                    .map_err(|_| format!("bad rate {v:?} in fault spec"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("fault rate {rate} outside [0, 1]"));
                }
                plan.panic_rate = rate;
            } else if let Some(v) = token.strip_prefix("torn@") {
                plan.torn_store_bytes = Some(
                    v.parse()
                        .map_err(|_| format!("bad byte count {v:?} in fault spec"))?,
                );
            } else if let Some(v) = token.strip_prefix("enospc@") {
                plan.enospc_after = Some(
                    v.parse()
                        .map_err(|_| format!("bad byte count {v:?} in fault spec"))?,
                );
            } else if let Some(v) = token.strip_prefix("eio%") {
                let rate: f64 = v
                    .parse()
                    .map_err(|_| format!("bad rate {v:?} in fault spec"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("fault rate {rate} outside [0, 1]"));
                }
                plan.eio_rate = rate;
            } else if let Some(v) = token.strip_prefix("slow@") {
                let (index, millis) = v
                    .split_once(':')
                    .ok_or_else(|| format!("slow fault {v:?} needs IDX:MS"))?;
                let index: usize = index
                    .parse()
                    .map_err(|_| format!("bad index {index:?} in fault spec"))?;
                let millis: u64 = millis
                    .parse()
                    .map_err(|_| format!("bad delay {millis:?} in fault spec"))?;
                plan.slow_captures.insert(index, millis);
            } else if token == "torn-checkpoint" {
                plan.torn_checkpoint = true;
            } else if token == "store" {
                plan.store_errors = true;
            } else {
                return Err(format!("unknown fault token {token:?}"));
            }
        }
        Ok(plan)
    }

    /// The plan described by the `SCA_FAULTS` environment variable,
    /// parsed once per process. A malformed spec warns on stderr (naming
    /// the bad value) and degrades to no injection — a typo must never
    /// silently arm or disarm the harness differently than intended.
    pub fn from_env() -> &'static FaultPlan {
        static PLAN: OnceLock<FaultPlan> = OnceLock::new();
        PLAN.get_or_init(|| match Self::try_from_env() {
            Ok(plan) => plan,
            Err((spec, e)) => {
                eprintln!("warning: SCA_FAULTS={spec:?} is invalid ({e}); injecting nothing");
                Self::default()
            }
        })
    }

    /// Like [`FaultPlan::from_env`], but a malformed spec is returned as
    /// `Err((spec, message))` instead of degrading to no injection —
    /// strict mode (`SCA_STRICT=1`) turns this into a hard config error.
    pub fn try_from_env() -> Result<FaultPlan, (String, String)> {
        match std::env::var("SCA_FAULTS") {
            Ok(spec) => Self::parse(&spec).map_err(|e| (spec, e)),
            Err(_) => Ok(Self::default()),
        }
    }

    /// Whether the capture of trace `index` should fail on `attempt`
    /// (0 = first try).
    pub fn capture_fault_due(&self, index: usize, attempt: u32) -> bool {
        if self.sticky_panics.contains(&index) {
            return true;
        }
        if attempt > 0 {
            // Transient faults hit the first attempt only, so a retry
            // (same per-trace seed) reproduces the clean trace.
            return false;
        }
        if self.transient_panics.contains(&index) {
            return true;
        }
        self.panic_rate > 0.0 && {
            let coin = trace_seed(self.seed ^ FAULT_SALT, index as u64);
            (coin as f64 / u64::MAX as f64) < self.panic_rate
        }
    }

    /// Panic (with an [`InjectedFault`] payload) if the plan schedules a
    /// capture fault for `(index, attempt)`. Call inside the executor's
    /// `catch_unwind` region.
    pub fn maybe_inject_capture(&self, index: usize, attempt: u32) {
        if self.capture_fault_due(index, attempt) {
            quiet_injected_panics();
            std::panic::panic_any(InjectedFault { index, attempt });
        }
    }

    /// The injected store-write error, if store faults are armed.
    pub fn store_write_error(&self) -> Option<StoreError> {
        self.store_errors.then(|| {
            StoreError::Io(io::Error::other(
                "injected store write fault (SCA_FAULTS: store)",
            ))
        })
    }

    /// The byte length store files should be torn down to, if torn-write
    /// faults are armed.
    pub fn torn_store_bytes(&self) -> Option<u64> {
        self.torn_store_bytes
    }

    /// The injected *write*-level faults (`enospc@N`, `eio%RATE`) as a
    /// [`WriteFaults`] plan for the fallible-writer layer.
    pub fn write_faults(&self) -> WriteFaults {
        let mut faults = WriteFaults::none();
        if let Some(bytes) = self.enospc_after {
            faults = faults.with_enospc_after(bytes);
        }
        if self.eio_rate > 0.0 {
            faults = faults.with_eio_rate(self.seed, self.eio_rate);
        }
        faults
    }

    /// The injected stall for `(index, attempt)`, if any. Slow faults
    /// hit the first attempt only, mirroring transient panics.
    pub fn capture_delay(&self, index: usize, attempt: u32) -> Option<Duration> {
        if attempt > 0 {
            return None;
        }
        self.slow_captures
            .get(&index)
            .map(|&ms| Duration::from_millis(ms))
    }

    /// Whether the run's checkpoint should lose its tail after the run
    /// (the torn-checkpoint fault).
    pub fn torn_checkpoint(&self) -> bool {
        self.torn_checkpoint
    }
}

/// Install (once) a panic hook that swallows [`InjectedFault`] payloads
/// and delegates everything else to the previous hook, so fault-injection
/// runs don't flood stderr with expected panics while real ones still
/// print.
fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedFault>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        for i in 0..1000 {
            assert!(!plan.capture_fault_due(i, 0));
        }
        assert!(plan.store_write_error().is_none());
        assert!(plan.torn_store_bytes().is_none());
    }

    #[test]
    fn parse_round_trips_every_token() {
        let plan = FaultPlan::parse(
            "seed=42, panic@3, panic@7!, panic%0.25, store, torn@99, \
             enospc@4096, eio%0.1, torn-checkpoint, slow@11:250",
        )
        .expect("parse");
        assert!(plan.is_active());
        assert!(plan.capture_fault_due(3, 0), "transient fires on attempt 0");
        assert!(!plan.capture_fault_due(3, 1), "transient clears on retry");
        assert!(plan.capture_fault_due(7, 0) && plan.capture_fault_due(7, 5));
        assert!(plan.store_write_error().is_some());
        assert_eq!(plan.torn_store_bytes(), Some(99));
        assert!(plan.write_faults().is_active());
        assert!(plan.torn_checkpoint());
        assert_eq!(
            plan.capture_delay(11, 0),
            Some(Duration::from_millis(250)),
            "slow fault armed at index 11"
        );
        assert_eq!(plan.capture_delay(11, 1), None, "slow clears on retry");
        assert_eq!(plan.capture_delay(12, 0), None);
        assert_eq!(
            plan,
            FaultPlan::default()
                .with_panic_rate(42, 0.25)
                .with_transient_panics([3])
                .with_sticky_panics([7])
                .with_store_errors()
                .with_torn_store(99)
                .with_enospc_after(4096)
                .with_eio_rate(42, 0.1)
                .with_torn_checkpoint()
                .with_slow_capture(11, 250)
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "panic@x",
            "panic%2.0",
            "panic%nan-ish",
            "torn@lots",
            "seed=banana",
            "explode",
            "enospc@many",
            "eio%1.5",
            "slow@3",
            "slow@x:100",
            "slow@3:soon",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
        assert_eq!(FaultPlan::parse("").expect("empty"), FaultPlan::default());
        assert_eq!(FaultPlan::parse("off").expect("off"), FaultPlan::default());
    }

    #[test]
    fn inert_plan_has_no_write_faults_or_delays() {
        let plan = FaultPlan::none();
        assert!(!plan.write_faults().is_active());
        assert!(!plan.torn_checkpoint());
        assert_eq!(plan.capture_delay(0, 0), None);
    }

    #[test]
    fn rate_injection_is_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::default().with_panic_rate(7, 0.1);
        let hits: Vec<usize> = (0..10_000)
            .filter(|&i| plan.capture_fault_due(i, 0))
            .collect();
        let again: Vec<usize> = (0..10_000)
            .filter(|&i| plan.capture_fault_due(i, 0))
            .collect();
        assert_eq!(hits, again, "same plan, same faults");
        assert!(
            (500..2000).contains(&hits.len()),
            "10% of 10k ~ 1000, got {}",
            hits.len()
        );
        assert!(hits.iter().all(|&i| !plan.capture_fault_due(i, 1)));
        let reseeded = FaultPlan::default().with_panic_rate(8, 0.1);
        let other: Vec<usize> = (0..10_000)
            .filter(|&i| reseeded.capture_fault_due(i, 0))
            .collect();
        assert_ne!(hits, other, "seed must move the fault sites");
    }

    #[test]
    fn injected_capture_panics_carry_a_typed_payload() {
        let plan = FaultPlan::default().with_sticky_panics([4]);
        let caught = std::panic::catch_unwind(|| plan.maybe_inject_capture(4, 2))
            .expect_err("must panic at a scheduled index");
        let fault = caught
            .downcast_ref::<InjectedFault>()
            .expect("typed payload");
        assert_eq!(
            *fault,
            InjectedFault {
                index: 4,
                attempt: 2
            }
        );
        assert!(fault.to_string().contains("index 4"));
        // Unscheduled indices pass through silently.
        plan.maybe_inject_capture(5, 0);
    }
}
